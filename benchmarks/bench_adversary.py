"""Solver-vs-search-vs-analytic agreement and cost.

Three questions, one table each:

* **Exact solver** — how fast is backward induction on Protocol 1 at
  n = 6 with the ablation family (m = 36, p = 37), and does the value
  match ``analysis.py``'s committed optimum for both the swaps pool and
  the exhaustive non-identity permutations?  (The permutation game is
  the sup over the search adversary's entire move space.)
* **Search adversary** — what does coordinate ascent find on the same
  instances, scored *exactly* (no Monte-Carlo noise), and does it stay
  under the game value?
* **Certification** — throughput of the Clopper–Pearson battery on the
  sym-dmam section, serial vs fork-pool workers.

``BENCH_QUICK=1`` shrinks pools and trial counts for CI smoke runs.
"""

import os
import random
import time

from conftest import report_table

from repro import Instance
from repro.adversary import (LocalSearchProver, certify_protocol,
                             solve_protocol_game)
from repro.graphs import rigid_family_exhaustive
from repro.hashing import LinearHashFamily
from repro.protocols import (SymDMAMProtocol, exact_commit_acceptance,
                             optimal_committed_cheater)
from repro.lab.quick import pick, quick_mode
from repro.protocols.batteries import sym_battery

QUICK = quick_mode()
SEED = 2018
WORKERS = min(4, os.cpu_count() or 1)
FAMILY = LinearHashFamily(m=36, p=37)
GRAPHS = rigid_family_exhaustive(6)[:pick(2, 1)]


def test_exact_solver_agreement(benchmark):
    protocol = SymDMAMProtocol(6, family=FAMILY)
    pools = pick(["swaps", "permutations"], ["swaps"])
    rows = []

    def solve_all():
        solved = []
        for graph in GRAPHS:
            for pool in pools:
                start = time.perf_counter()
                solution = solve_protocol_game(
                    protocol, Instance(graph), candidates=pool)
                solved.append((graph, pool, solution,
                               time.perf_counter() - start))
        return solved

    solved = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    for index, (graph, pool, solution, seconds) in enumerate(solved):
        if pool == "swaps":
            from repro.protocols.analysis import all_swaps
            _, reference = optimal_committed_cheater(
                graph, FAMILY, candidates=all_swaps(graph.n))
        else:
            _, reference = optimal_committed_cheater(graph, FAMILY)
        assert solution.value == reference, (
            f"game {solution.value} != analysis {reference} "
            f"({pool}, graph {index})")
        rows.append((f"rigid6[{index // len(pools)}]", pool,
                     str(solution.value), str(reference),
                     solution.leaves, f"{seconds:.3f}"))
    report_table(benchmark,
                 "adversary: exact game value vs analysis.py (p=37)",
                 ("instance", "pool", "game value", "analysis value",
                  "leaves", "seconds"),
                 rows)


def test_search_vs_exact(benchmark):
    protocol = SymDMAMProtocol(6, family=FAMILY)
    rows = []

    def search_all():
        found = []
        for graph in GRAPHS:
            prover = LocalSearchProver(
                protocol, trials=pick(48, 24), seed=SEED,
                restarts=pick(2, 1))
            found.append((graph, prover.search(Instance(graph))))
        return found

    results = benchmark.pedantic(search_all, rounds=1, iterations=1)
    for index, (graph, result) in enumerate(results):
        game = solve_protocol_game(protocol, Instance(graph),
                                   candidates="permutations").value
        exact = exact_commit_acceptance(graph, result.best_mapping,
                                        FAMILY)
        assert exact <= game, (
            f"search {exact} beat the exact game value {game}")
        rows.append((f"rigid6[{index}]", str(exact), str(game),
                     result.evaluations, result.improvements))
    report_table(benchmark,
                 "adversary: coordinate-ascent search vs exact sup",
                 ("instance", "search value (exact)", "game value",
                  "oracle calls", "improvements"),
                 rows)


def test_certification_throughput(benchmark):
    battery = sym_battery(6, random.Random(10))
    protocol = SymDMAMProtocol(battery[0].instance.n)
    trials = pick(40, 12)

    report = benchmark.pedantic(
        lambda: certify_protocol(protocol, battery, trials=trials,
                                 seed=SEED),
        rounds=1, iterations=1)
    assert report.all_certified

    start = time.perf_counter()
    parallel = certify_protocol(protocol, battery, trials=trials,
                                seed=SEED, workers=WORKERS)
    parallel_seconds = time.perf_counter() - start
    assert parallel.all_certified
    # Certificates must agree bit-for-bit across worker counts (the
    # PR-1 determinism contract extends to the certification layer).
    assert ([o.estimate.accepted for c in report.instances
             for o in c.outcomes]
            == [o.estimate.accepted for c in parallel.instances
                for o in c.outcomes])

    rows = [
        ("serial", trials, len(report.instances),
         "yes" if report.all_certified else "no", "-"),
        (f"{WORKERS}-worker", trials, len(parallel.instances),
         "yes" if parallel.all_certified else "no",
         f"{parallel_seconds:.3f}s"),
    ]
    report_table(benchmark,
                 "adversary: certification battery (sym-dmam section)",
                 ("engine", "trials", "instances", "certified",
                  "seconds"),
                 rows)
