"""Shared benchmark fixtures and table-reporting helpers.

Every benchmark here reproduces one experiment from EXPERIMENTS.md.
Alongside the timing (pytest-benchmark's business), each records the
experiment's *result rows* — communication costs, acceptance rates,
implied bounds — in ``benchmark.extra_info`` and prints them, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the tables.

Every table reported during a session is additionally written to
``benchmarks/BENCH_runner.json`` at session end — a machine-readable
mirror of the printed tables for CI checks and regression tracking.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.graphs import rigid_family_exhaustive

#: Tables reported this session, in order; flushed to BENCH_runner.json.
_TABLES = []

_JSON_PATH = Path(__file__).resolve().parent / "BENCH_runner.json"


@pytest.fixture(scope="session")
def rigid6():
    return rigid_family_exhaustive(6)


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


def report_table(benchmark, title, header, rows):
    """Attach a result table to the benchmark and print it.

    ``benchmark`` may be None for plain (non-pytest-benchmark) tests;
    the table still lands in BENCH_runner.json.
    """
    table = {"title": title, "header": list(header),
             "rows": [list(row) for row in rows]}
    _TABLES.append(table)
    if benchmark is not None:
        benchmark.extra_info["table"] = {"title": title, "header": header,
                                         "rows": rows}
    width = max(len(str(c)) for row in rows + [header] for c in row) + 2
    print(f"\n=== {title} ===")
    print("".join(str(c).ljust(width) for c in header))
    for row in rows:
        print("".join(str(c).ljust(width) for c in row))


def pytest_sessionfinish(session, exitstatus):
    if not _TABLES:
        return
    payload = {"source": "benchmarks/conftest.py", "tables": _TABLES}
    _JSON_PATH.write_text(json.dumps(payload, indent=2, default=str) + "\n")
