"""Shared benchmark fixtures and table-reporting helpers.

Every benchmark here reproduces one experiment from EXPERIMENTS.md.
Alongside the timing (pytest-benchmark's business), each records the
experiment's *result rows* — communication costs, acceptance rates,
implied bounds — in ``benchmark.extra_info`` and prints them, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the tables.

The recording machinery lives in :class:`repro.lab.TableRecorder`; this
conftest is a thin session wrapper around it.  At session end every
reported table is flushed to two machine-readable mirrors:

* ``benchmarks/BENCH_runner.json`` — the legacy CI artifact;
* ``benchmarks/lab_store/bench_tables.jsonl`` — the same payload in
  the lab result store, one record per table.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.graphs import rigid_family_exhaustive
from repro.lab import TableRecorder

_JSON_PATH = Path(__file__).resolve().parent / "BENCH_runner.json"

#: The session's recorder; ``report_table`` delegates to it and
#: ``pytest_sessionfinish`` flushes it.
_RECORDER = TableRecorder(json_path=_JSON_PATH)


@pytest.fixture(scope="session")
def rigid6():
    return rigid_family_exhaustive(6)


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


def report_table(benchmark, title, header, rows):
    """Attach a result table to the benchmark and print it.

    ``benchmark`` may be None for plain (non-pytest-benchmark) tests;
    the table still lands in the session mirrors.
    """
    print(_RECORDER.report(benchmark, title, header, rows))


def pytest_sessionfinish(session, exitstatus):
    _RECORDER.flush()
