"""Shared benchmark fixtures and table-reporting helpers.

Every benchmark here reproduces one experiment from EXPERIMENTS.md.
Alongside the timing (pytest-benchmark's business), each records the
experiment's *result rows* — communication costs, acceptance rates,
implied bounds — in ``benchmark.extra_info`` and prints them, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the tables.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import rigid_family_exhaustive


@pytest.fixture(scope="session")
def rigid6():
    return rigid_family_exhaustive(6)


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


def report_table(benchmark, title, header, rows):
    """Attach a result table to the benchmark and print it."""
    benchmark.extra_info["table"] = {"title": title, "header": header,
                                     "rows": rows}
    width = max(len(str(c)) for row in rows + [header] for c in row) + 2
    print(f"\n=== {title} ===")
    print("".join(str(c).ljust(width) for c in header))
    for row in rows:
        print("".join(str(c).ljust(width) for c in row))
