"""Shared benchmark fixtures and table-reporting helpers.

Every benchmark here reproduces one experiment from EXPERIMENTS.md.
Alongside the timing (pytest-benchmark's business), each records the
experiment's *result rows* — communication costs, acceptance rates,
implied bounds — in ``benchmark.extra_info`` and prints them, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the tables.

The recording machinery is :class:`repro.obs.BenchRecorder`: every
table is attributed to the bench module that reported it (inferred
from the caller's frame), and at session end one ``BENCH_<name>.json``
summary is flushed per module — ``bench_runner.py`` produces
``BENCH_runner.json``, which is also the legacy CI artifact, so no
separate aggregate is written.  The lab result store keeps its
``bench_tables.jsonl`` mirror exactly as before.

The whole pytest session runs inside a metrics-only observability
session (no span capture — benchmarks loop too hot for that), so each
summary carries the engines' deterministic counters for the work the
module actually did.
"""

from __future__ import annotations

import random
import sys
from contextlib import ExitStack
from pathlib import Path

import pytest

from repro.graphs import rigid_family_exhaustive
from repro.obs import BenchRecorder
from repro.obs import session as obs_session

_BENCH_DIR = Path(__file__).resolve().parent

#: The session's recorder; ``report_table`` delegates to it and
#: ``pytest_sessionfinish`` flushes it — including one normalized
#: trajectory record per module into ``bench_history.jsonl`` (keyed
#: bench id + git sha + quick/full mode), the input to
#: ``python -m repro obs regress``.
_RECORDER = BenchRecorder(
    _BENCH_DIR, history=_BENCH_DIR / "bench_history.jsonl")

#: Holds the session-scoped ambient obs session open between the
#: pytest session hooks.
_OBS = ExitStack()


@pytest.fixture(scope="session")
def rigid6():
    return rigid_family_exhaustive(6)


@pytest.fixture
def rng():
    return random.Random(0xBEEF)


def report_table(benchmark, title, header, rows):
    """Attach a result table to the benchmark and print it.

    ``benchmark`` may be None for plain (non-pytest-benchmark) tests;
    the table still lands in the session mirrors.  The reporting bench
    module is inferred from the caller so the table is filed into the
    right ``BENCH_<name>.json``.
    """
    module = sys._getframe(1).f_globals.get("__name__", "benchmarks")
    print(_RECORDER.report(module, benchmark, title, header, rows))


def _item_module(nodeid):
    return Path(nodeid.split("::", 1)[0]).stem


def pytest_sessionstart(session):
    _OBS.enter_context(obs_session(trace=False))


def pytest_runtest_setup(item):
    # Module-entry mark: the recorder diffs consecutive marks so each
    # history record carries only its own deterministic-counter deltas.
    _RECORDER.enter_module(_item_module(item.nodeid))


def pytest_runtest_logreport(report):
    if report.when == "call":
        _RECORDER.note_duration(_item_module(report.nodeid),
                                report.duration)


def pytest_sessionfinish(session, exitstatus):
    # Flush first: the recorder snapshots the still-active obs session's
    # metrics into each summary.
    _RECORDER.flush()
    _OBS.close()
