"""E1 — Theorem 1.1: Protocol 1 (dMAM for Sym) at O(log n) per node.

Regenerates: per-node communication versus network size (with the
log₂ n budget ratio), completeness on symmetric graphs, and the
adversarial acceptance rate against the analytic m/p bound.
"""

import math
import random

from conftest import report_table

from repro import Instance, run_protocol
from repro.graphs import cycle_graph, lower_bound_dumbbell
from repro.lab.quick import pick
from repro.protocols import CommittedMappingProver, SymDMAMProtocol

SIZES = pick((8, 16, 32, 64, 128, 256), (8, 16, 32))


def test_cost_scaling(benchmark):
    rng = random.Random(1)

    def run_all():
        costs = {}
        for n in SIZES:
            protocol = SymDMAMProtocol(n)
            result = run_protocol(protocol, Instance(cycle_graph(n)),
                                  protocol.honest_prover(), rng)
            assert result.accepted
            costs[n] = result.max_cost_bits
        return costs

    costs = benchmark(run_all)
    rows = [(n, costs[n], f"{costs[n] / math.log2(n):.1f}",
             n * n)
            for n in SIZES]
    report_table(benchmark, "E1: Protocol 1 per-node cost (vs Θ(n²) LCP)",
                 ("n", "bits", "bits/log2(n)", "LCP bits (n²)"), rows)
    ratios = [costs[n] / math.log2(n) for n in SIZES]
    assert max(ratios) <= 3 * min(ratios)  # O(log n) shape


def test_completeness(benchmark, rigid6):
    graph = lower_bound_dumbbell(rigid6[0], rigid6[0])
    protocol = SymDMAMProtocol(graph.n)
    instance = Instance(graph)

    def run_once():
        return run_protocol(protocol, instance, protocol.honest_prover(),
                            random.Random(7)).accepted

    accepted = benchmark(run_once)
    assert accepted
    report_table(benchmark, "E1: completeness on G(F,F) dumbbell",
                 ("instance", "accepted"), [("G(F0,F0), n=14", accepted)])


def test_soundness_vs_bound(benchmark, rigid6):
    graph = lower_bound_dumbbell(rigid6[0], rigid6[1])
    protocol = SymDMAMProtocol(graph.n)
    instance = Instance(graph)
    adversary = CommittedMappingProver(protocol)
    trials = pick(200, 30)

    def attack():
        return sum(
            run_protocol(protocol, instance, adversary,
                         random.Random(i)).accepted
            for i in range(trials)) / trials

    rate = benchmark.pedantic(attack, rounds=1, iterations=1)
    bound = protocol.family.collision_bound
    report_table(benchmark, "E1: adversarial acceptance (NO instance)",
                 ("measured", "analytic bound m/p", "definition cap"),
                 [(f"{rate:.4f}", f"{bound:.6f}", "1/3")])
    assert rate <= max(bound * 3, 0.02)
