"""E13 — netsim substrate: overhead vs the abstract runner, and the
fault-injection matrix.

The substrate runs the same protocol objects as the abstract runner
but pays for real work — encoding every frame, scheduling every
delivery, relaying every cross-check.  The overhead table quantifies
that price at growing sizes (wall-clock ratio plus the substrate's
extra bits); the fault sweep records acceptance/detection across the
canonical fault configurations.
"""

import random

from conftest import report_table

from repro import Instance, run_protocol
from repro.graphs import cycle_graph
from repro.lab.quick import pick, quick_mode
from repro.netsim import run_netsim
from repro.netsim.harness import fault_matrix
from repro.protocols import SymDMAMProtocol

QUICK = quick_mode()
SEED = 2018


def _once(fn, *args, **kwargs):
    import time
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_netsim_overhead(benchmark):
    """Wall-clock and bit overhead of the substrate vs the abstract
    runner at n ∈ {16, 32, 64} (quick: {16})."""
    sizes = pick((16, 32, 64), (16,))
    rows = []
    for n in sizes:
        protocol = SymDMAMProtocol(n)
        instance = Instance(cycle_graph(n))
        abstract, abs_wall = _once(
            run_protocol, protocol, instance, protocol.honest_prover(),
            random.Random(SEED))
        net, net_wall = _once(
            run_netsim, protocol, instance, protocol.honest_prover(),
            random.Random(SEED), net_seed=SEED, trace=False)
        assert net.accepted == abstract.accepted
        assert net.node_cost_bits == abstract.node_cost_bits
        rows.append((n, abstract.max_cost_bits, net.overhead_bits,
                     net.crosscheck_bits,
                     round(net_wall / max(abs_wall, 1e-9), 2)))

    n = sizes[-1]
    protocol = SymDMAMProtocol(n)
    instance = Instance(cycle_graph(n))

    def run():
        return run_netsim(protocol, instance, protocol.honest_prover(),
                          random.Random(SEED), net_seed=SEED,
                          trace=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.accepted
    report_table(benchmark,
                 "E13: netsim overhead vs abstract runner (Protocol 1)",
                 ("n", "proof bits/node", "framing bits",
                  "crosscheck bits", "wall ratio"),
                 rows)


def test_netsim_fault_sweep(benchmark):
    """The fault matrix as a recorded table: acceptance per fault
    configuration plus the hashed-equality detection row."""
    trials = pick(20, 6)

    def run():
        return fault_matrix(SEED, trials=trials, n=8)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    assert matrix["all_ok"]
    rows = []
    for row in matrix["rows"]:
        rows.append((row["fault"], row["crosscheck"],
                     round(row["accept_rate"], 3), row["lost_frames"],
                     round(row.get("detection_rate", -1.0), 3),
                     round(row.get("analytic_bound", -1.0), 4)))
    report_table(benchmark,
                 f"E13: netsim fault sweep (n=8, {trials} trials)",
                 ("fault", "mode", "accept", "lost", "detect", "bound"),
                 rows)
    detection = matrix["rows"][-1]
    assert detection["detection_rate"] >= detection["analytic_bound"]
