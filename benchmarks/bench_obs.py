"""The observability overhead gate: tracing must be free when off.

Every instrumentation site in :mod:`repro.core.runner` collapses to a
single module-global read when no obs session is installed.  This
benchmark pins that claim with numbers, on Protocol 1 (Sym/dMAM):

* **baseline** — a literal replica of the pre-obs trial loop:
  `run_protocol` per trial with a warm shared context and first-reject
  short-circuiting, no obs call sites at all;
* **disabled** — today's `run_trials` with observability force-disabled
  (`use_session(None)`, guarding against any ambient session the
  conftest installed), *plus* the serve exposition hook
  (:meth:`MetricsRing.maybe_push` with no session — the live
  ``/v1/metrics`` path) invoked as on the request hot path.  Gate: at
  most **3%** slower than baseline, measured as the min-of-7 of
  interleaved timings (min, not mean — the noise is all one-sided);
* **enabled** — `run_trials` under a full tracing session, reported for
  context (spans per trial are allowed to cost real time) and checked
  for *correctness*: the session's ``runner/proof_bits`` counter must
  equal the independently recomputed declared cost, and the traced
  accepted count must match the untraced one.

``BENCH_QUICK=1`` shrinks the workload and skips the ratio assertion
(tiny batches are all setup noise); CI runs this module *without*
BENCH_QUICK so the 3% gate is enforced there.
"""

import random
import time

from conftest import report_table

from repro import Instance, run_protocol, run_trials
from repro.core.context import InstanceContext
from repro.graphs import cycle_graph
from repro.lab.quick import pick, quick_mode
from repro.obs import MetricsRing, active, flatten_spans
from repro.obs import session as obs_session
from repro.obs import use_session
from repro.protocols import SymDMAMProtocol

QUICK = quick_mode()
N = pick(64, 16)
TRIALS = pick(200, 20)
SEED = 0x0B5
ROUNDS = 7
OVERHEAD_LIMIT = 1.03


def baseline_loop(protocol, instance, prover, context, trials, seed):
    """The pre-obs `_trial_batch` body: warm context, per-trial seed
    streams, first-reject short-circuiting — and zero obs call sites."""
    accepted = 0
    for t in range(trials):
        accepted += run_protocol(
            protocol, instance, prover, random.Random(seed + t),
            context=context, stop_on_first_reject=True).accepted
    return accepted


def test_disabled_overhead(benchmark):
    protocol = SymDMAMProtocol(N)
    instance = Instance(cycle_graph(N))
    prover = protocol.honest_prover()
    context = InstanceContext(instance, protocol)
    context.ensure_validated(protocol)

    # Interleave the two loops so drift (cache state, CPU frequency)
    # hits both sides equally; keep the per-side minimum.  The
    # disabled side also runs the serve exposition hook the way the
    # request path does — with no session it must collapse to one
    # None check, inside the same 3% budget.
    ring = MetricsRing()
    baseline_best = disabled_best = float("inf")
    with use_session(None):
        baseline_accepted = baseline_loop(protocol, instance, prover,
                                          context, TRIALS, SEED)
        for _ in range(ROUNDS):
            tick = time.perf_counter()
            accepted = baseline_loop(protocol, instance, prover,
                                     context, TRIALS, SEED)
            baseline_best = min(baseline_best,
                                time.perf_counter() - tick)
            assert accepted == baseline_accepted

            tick = time.perf_counter()
            estimate = run_trials(protocol, instance, prover, TRIALS,
                                  SEED, context=context)
            pushed = ring.maybe_push(active())
            disabled_best = min(disabled_best,
                                time.perf_counter() - tick)
            assert estimate.accepted == baseline_accepted
            assert not pushed and not len(ring)

        benchmark.pedantic(
            lambda: run_trials(protocol, instance, prover, TRIALS, SEED,
                               context=context),
            rounds=1, iterations=1)

    ratio = disabled_best / baseline_best
    report_table(benchmark,
                 f"obs: disabled-tracer overhead (n={N}, "
                 f"trials={TRIALS}, min of {ROUNDS})",
                 ("engine", "seconds", "vs baseline"),
                 [("baseline loop (no obs sites)",
                   f"{baseline_best:.4f}", "1.000x"),
                  ("run_trials + exposition hook, obs disabled",
                   f"{disabled_best:.4f}", f"{ratio:.3f}x")])
    if not QUICK:
        assert ratio <= OVERHEAD_LIMIT, (
            f"disabled-tracer path is {(ratio - 1) * 100:.1f}% over "
            f"baseline (limit {(OVERHEAD_LIMIT - 1) * 100:.0f}%)")


def test_enabled_tracing_correctness(benchmark):
    protocol = SymDMAMProtocol(N)
    instance = Instance(cycle_graph(N))
    prover = protocol.honest_prover()
    context = InstanceContext(instance, protocol)
    context.ensure_validated(protocol)

    with use_session(None):
        untraced = run_trials(protocol, instance, prover, TRIALS, SEED,
                              context=context)

    def traced_run():
        with obs_session() as sess:
            estimate = run_trials(protocol, instance, prover, TRIALS,
                                  SEED, context=context)
        return sess, estimate

    sess, traced = benchmark.pedantic(traced_run, rounds=1, iterations=1)
    assert traced == untraced  # bit-identical estimates

    declared = sum(
        sum(run_protocol(protocol, instance, prover,
                         random.Random(SEED + t), context=context,
                         stop_on_first_reject=True)
            .node_cost_bits.values())
        for t in range(TRIALS))
    metric_bits = sess.metrics.counter("runner/proof_bits").value
    assert metric_bits == declared
    assert sess.metrics.counter("runner/trials").value == TRIALS
    trial_spans = sum(
        row["name"] == "runner.trial"
        for row in flatten_spans(sess.tracer.export()))
    assert trial_spans == TRIALS

    ratio = (traced.elapsed_seconds / untraced.elapsed_seconds
             if untraced.elapsed_seconds else float("nan"))
    report_table(benchmark,
                 f"obs: enabled-tracing cost and bit consistency "
                 f"(n={N}, trials={TRIALS})",
                 ("mode", "seconds", "proof bits", "spans"),
                 [("untraced", f"{untraced.elapsed_seconds:.4f}", "-",
                   0),
                  ("traced", f"{traced.elapsed_seconds:.4f}",
                   metric_bits, trial_spans)])
    assert ratio == ratio  # timed estimates on both sides
