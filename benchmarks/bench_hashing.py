"""E7 — Ablation: the Theorem-3.2 collision law and hash throughput.

Regenerates: exact collision-seed counts against the m/p cap across
prime sizes, ε-API axiom measurements, and raw hashing throughput
(the substrate cost every protocol pays).
"""

import random

from conftest import report_table

from repro.graphs import gnp_random_graph
from repro.hashing import (DistributedAPIHash, LinearHashFamily,
                           collision_seed_count, graph_matrix_sum,
                           mapped_matrix_sum, next_prime)
from repro.lab.quick import pick


def test_collision_law_exact(benchmark):
    """Exact #colliding seeds (brute force over all p seeds) stays
    under m for random vector pairs, across prime sizes."""
    m = 8
    primes = [next_prime(p0)
              for p0 in pick((101, 401, 1601, 6373), (101, 401, 1601))]
    rng = random.Random(12)

    def sweep():
        rows = []
        for p in primes:
            family = LinearHashFamily(m=m, p=p)
            worst = 0
            for _ in range(10):
                a = [rng.randrange(p) for _ in range(m)]
                b = [rng.randrange(p) for _ in range(m)]
                if a == b:
                    continue
                worst = max(worst, collision_seed_count(family, a, b))
            rows.append((p, worst, m, f"{worst / p:.5f}", f"{m / p:.5f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_table(benchmark,
                 "E7: exact collision counts vs Theorem 3.2 cap",
                 ("p", "worst #collisions", "cap m", "worst prob",
                  "cap m/p"), rows)
    for p, worst, cap, *_ in rows:
        assert worst <= cap


def test_soundness_error_tracks_prime(benchmark, rigid6):
    """Protocol-level view: the committed cheater's acceptance tracks
    the collision probability of its chosen pair as p grows."""
    from repro import Instance, run_protocol
    from repro.protocols import CommittedMappingProver, SymDMAMProtocol

    graph = rigid6[0]
    mapping = (1, 0, 2, 3, 4, 5)
    primes = [next_prime(p0) for p0 in (101, 1009, 10007, 100003)]

    def sweep():
        rows = []
        for p in primes:
            family = LinearHashFamily(m=36, p=p)
            protocol = SymDMAMProtocol(6, family=family)
            adversary = CommittedMappingProver(protocol, mapping=mapping)
            trials = pick(150, 50)
            rate = sum(
                run_protocol(protocol, Instance(graph), adversary,
                             random.Random(i)).accepted
                for i in range(trials)) / trials
            a = graph_matrix_sum(graph, p)
            b = mapped_matrix_sum(graph, mapping, p)
            exact = sum(family.hash_matrix_sum(s, a)
                        == family.hash_matrix_sum(s, b)
                        for s in range(p)) if p <= 1009 else None
            rows.append((p, f"{rate:.4f}",
                         f"{exact / p:.4f}" if exact is not None else "-",
                         f"{36 / p:.5f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_table(benchmark,
                 "E7: cheater acceptance vs prime size (Protocol 1)",
                 ("p", "measured", "exact collision prob", "cap m/p"),
                 rows)
    rates = [float(r[1]) for r in rows]
    assert rates[-1] <= rates[0] + 0.01  # decays with p


def test_api_axiom_measurement(benchmark):
    h = DistributedAPIHash(m=6, q=11)
    rng = random.Random(13)
    x1, x2 = 0b101010, 0b010101
    trials = pick(4000, 1500)

    def measure():
        single = pair = 0
        for _ in range(trials):
            c = h.sample_challenge(3, rng)
            v1 = h.hash_encoding(c, x1)
            v2 = h.hash_encoding(c, x2)
            single += (v1 == 3)
            pair += (v1 == 3 and v2 == 7)
        return single / trials, pair / trials

    single_rate, pair_rate = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    report_table(benchmark, "E7: ε-API axioms, measured",
                 ("quantity", "measured", "bound"),
                 [("Pr[h(x)=y]", f"{single_rate:.4f}",
                   f"(1±{h.delta:.4f})/11 = {1 / 11:.4f}"),
                  ("Pr[h(x1)=y1, h(x2)=y2]", f"{pair_rate:.4f}",
                   f"(1+{h.epsilon:.3f})/121 = {(1 + h.epsilon) / 121:.4f}")])
    assert abs(single_rate - 1 / 11) < 0.02
    assert pair_rate < (1 + h.epsilon) / 121 + 0.01


def test_row_hash_throughput(benchmark):
    """Raw substrate speed: hashing one node's row (the inner loop of
    every tree-aggregation protocol)."""
    n = 64
    family = LinearHashFamily(m=n * n,
                              p=next_prime(10 * n ** 3))
    rng = random.Random(14)
    graph = gnp_random_graph(n, 0.3, rng)
    seed = family.sample_seed(rng)

    def hash_all_rows():
        return sum(family.hash_row_matrix(seed, n, v, graph.closed_row(v))
                   for v in graph.vertices) % family.p

    total = benchmark(hash_all_rows)
    report_table(benchmark, "E7: row-hash throughput (n=64)",
                 ("rows hashed per call", "total hash"), [(n, total)])


def test_and_amplification_decay(benchmark, rigid6):
    """Soundness error of AND-amplified Protocol 1 versus copy count,
    with a deliberately small prime so the base error is visible."""
    from repro import Instance, run_protocol
    from repro.core import AndAmplifiedProtocol
    from repro.protocols import CommittedMappingProver, SymDMAMProtocol

    graph = rigid6[0]
    mapping = (1, 0, 2, 3, 4, 5)
    family = LinearHashFamily(m=36, p=next_prime(101))
    trials = pick(250, 100)

    def sweep():
        rows = []
        base = SymDMAMProtocol(6, family=family)
        base_rate = sum(
            run_protocol(base, Instance(graph),
                         CommittedMappingProver(base, mapping=mapping),
                         random.Random(i)).accepted
            for i in range(trials)) / trials
        rows.append((1, f"{base_rate:.3f}", f"{base_rate:.3f}"))
        for copies in (2, 3):
            amplified = AndAmplifiedProtocol(base, copies)
            adversary = amplified.amplified_prover(
                [CommittedMappingProver(base, mapping=mapping)
                 for _ in range(copies)])
            rate = sum(
                run_protocol(amplified, Instance(graph), adversary,
                             random.Random(i)).accepted
                for i in range(trials)) / trials
            rows.append((copies, f"{rate:.3f}",
                         f"{base_rate ** copies:.3f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_table(benchmark,
                 "E7b: AND-amplification — soundness error vs copies "
                 "(p=101, committed swap)",
                 ("copies", "measured error", "base^k prediction"), rows)
    rates = [float(r[1]) for r in rows]
    assert rates[0] > rates[-1]  # error decays with copies


def test_pi_vs_api_seed_lengths(benchmark):
    """E7c — Section 4's seed-length argument, quantified: the
    pairwise-independent (Toeplitz) seed is Θ(n²) bits and cannot be
    split; the ε-API budget is Θ(n log n) split across nodes."""
    import math
    from repro.hashing import gs_output_modulus
    from repro.hashing.toeplitz import ToeplitzHash

    def sweep():
        rows = []
        for n in (8, 16, 32, 64):
            k = min(n, 10)
            q = gs_output_modulus(2 * math.factorial(k))
            out_bits = max(1, math.ceil(math.log2(q)))
            toeplitz = ToeplitzHash(input_bits=n * n,
                                    output_bits=out_bits)
            api = DistributedAPIHash(m=n * n, q=q)
            rows.append((n, toeplitz.seed_bits,
                         api.node_seed_bits + api.root_seed_bits,
                         api.node_seed_bits))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_table(benchmark,
                 "E7c: PI (Toeplitz) vs ε-API seed lengths",
                 ("n", "PI seed bits (unsplittable)",
                  "API root+node bits", "API per-node part"), rows)
    for n, pi_bits, api_bits, _node in rows[1:]:
        assert pi_bits > api_bits  # PI loses from n=16 on
