"""E2 — Theorem 1.3: Protocol 2 (dAM for Sym) at O(n log n) per node.

Regenerates: cost versus size normalized by n·log n, completeness, and
the adaptive adversary's failure against the union-bound-sized prime.
"""

import math
import random

from conftest import report_table

from repro import Instance, run_protocol
from repro.graphs import cycle_graph, lower_bound_dumbbell
from repro.lab.quick import pick
from repro.protocols import AdaptiveCollisionProver, SymDAMProtocol

SIZES = pick((6, 8, 12, 16, 24), (6, 8, 12))


def test_cost_scaling(benchmark):
    rng = random.Random(2)

    def run_all():
        costs = {}
        for n in SIZES:
            protocol = SymDAMProtocol(n)
            result = run_protocol(protocol, Instance(cycle_graph(n)),
                                  protocol.honest_prover(), rng)
            assert result.accepted
            costs[n] = result.max_cost_bits
        return costs

    costs = benchmark(run_all)
    rows = [(n, costs[n], f"{costs[n] / (n * math.log2(n)):.1f}")
            for n in SIZES]
    report_table(benchmark, "E2: Protocol 2 per-node cost",
                 ("n", "bits", "bits/(n*log2 n)"), rows)
    ratios = [costs[n] / (n * math.log2(n)) for n in SIZES]
    assert max(ratios) <= 3 * min(ratios)  # O(n log n) shape


def test_adaptive_adversary_defeated(benchmark, rigid6):
    graph = lower_bound_dumbbell(rigid6[0], rigid6[1])
    protocol = SymDAMProtocol(graph.n)
    instance = Instance(graph)
    adversary = AdaptiveCollisionProver(protocol, search="swaps")
    trials = pick(25, 9)

    def attack():
        return sum(
            run_protocol(protocol, instance, adversary,
                         random.Random(i)).accepted
            for i in range(trials)) / trials

    rate = benchmark.pedantic(attack, rounds=1, iterations=1)
    union_bound = (graph.n ** graph.n) * protocol.family.collision_bound
    report_table(benchmark,
                 "E2: adaptive collision search vs the paper's prime",
                 ("measured acceptance", "union bound", "definition cap"),
                 [(f"{rate:.3f}", f"{union_bound:.4f}", "1/3")])
    assert rate <= 1 / 3
