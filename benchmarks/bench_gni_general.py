"""E9 — Extension: GNI on *general* graphs via automorphism
compensation (the Goldwasser–Sipser fix the paper's Section 4 defers
to its full version).

Regenerates two tables:

1. the collapse of the *base* protocol's set-size gap on symmetric
   inputs, next to the compensated protocol's restored 2n!-vs-n! gap;
2. end-to-end correctness of the compensated protocol on symmetric
   inputs, with the constant-factor cost overhead.
"""

import math
import random

from conftest import report_table

from repro import run_protocol
from repro.graphs import cycle_graph, star_graph
from repro.lab.quick import pick
from repro.protocols import (GeneralGNIProtocol, GNIGoldwasserSipserProtocol,
                             gni_instance, isomorphism_closure_encodings,
                             pair_catalog, pair_rate,
                             per_repetition_success_rate)

RATE_TRIALS = pick(100, 40)
RUNS = pick(6, 4)


def test_gap_collapse_and_restoration(benchmark):
    g0, g1 = star_graph(6), cycle_graph(6)       # both symmetric
    g1_iso = g0.relabel([2, 0, 1, 4, 3, 5])

    def measure():
        rng = random.Random(20)
        base = GNIGoldwasserSipserProtocol(6, repetitions=8)
        general = GeneralGNIProtocol(6, repetitions=8)
        return (
            len(isomorphism_closure_encodings(g0, g1)),
            len(isomorphism_closure_encodings(g0, g1_iso)),
            len(pair_catalog(g0, g1)),
            len(pair_catalog(g0, g1_iso)),
            per_repetition_success_rate(g0, g1, base, RATE_TRIALS, rng),
            per_repetition_success_rate(g0, g1_iso, base, RATE_TRIALS,
                                        rng),
            pair_rate(g0, g1, general, RATE_TRIALS, rng),
            pair_rate(g0, g1_iso, general, RATE_TRIALS, rng),
        )

    (base_s_yes, base_s_no, gen_s_yes, gen_s_no,
     base_yes, base_no, gen_yes, gen_no) = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    report_table(
        benchmark,
        "E9: symmetric inputs (star vs cycle) — base vs compensated GNI",
        ("protocol", "|S| YES", "|S| NO", "rate YES", "rate NO", "gap"),
        [("base (Section 4, restricted)", base_s_yes, base_s_no,
          f"{base_yes:.3f}", f"{base_no:.3f}",
          f"{base_yes - base_no:+.3f}"),
         ("compensated (this extension)", gen_s_yes, gen_s_no,
          f"{gen_yes:.3f}", f"{gen_no:.3f}",
          f"{gen_yes - gen_no:+.3f}")])
    assert gen_s_yes == 2 * math.factorial(6)
    assert gen_s_no == math.factorial(6)
    assert abs(base_yes - base_no) < 0.07      # collapsed
    assert gen_yes - gen_no > 0.08             # restored


def test_general_protocol_end_to_end(benchmark):
    protocol = GeneralGNIProtocol(6, repetitions=40)
    yes = gni_instance(star_graph(6), cycle_graph(6))
    no = gni_instance(star_graph(6),
                      star_graph(6).relabel([3, 1, 2, 0, 4, 5]))

    def run_both():
        yes_acc = sum(
            run_protocol(protocol, yes, protocol.honest_prover(),
                         random.Random(i)).accepted for i in range(RUNS))
        no_acc = sum(
            run_protocol(protocol, no, protocol.honest_prover(),
                         random.Random(i)).accepted for i in range(RUNS))
        cost = run_protocol(protocol, yes, protocol.honest_prover(),
                            random.Random(99)).max_cost_bits
        return yes_acc, no_acc, cost

    yes_acc, no_acc, cost = benchmark.pedantic(run_both, rounds=1,
                                               iterations=1)
    guarantee = protocol.guarantees()
    report_table(
        benchmark, "E9: compensated GNI end-to-end (symmetric inputs)",
        ("quantity", "value", "analytic"),
        [("YES runs accepted", f"{yes_acc}/{RUNS}",
          f"completeness {guarantee.completeness:.3f}"),
         ("NO runs accepted", f"{no_acc}/{RUNS}",
          f"soundness err {guarantee.soundness_error:.3f}"),
         ("per-node bits", cost, "Θ(n log n) per repetition")])
    assert yes_acc >= RUNS - 2
    assert no_acc <= 2
