"""The batched execution engine versus the seed serial path.

Measures, on Protocol 1 (Sym/dMAM) at n = 64 with 200 trials:

* **seed-style** — `run_protocol` in a loop, fresh context per trial
  (every trial re-runs the automorphism search, the BFS tree, and the
  full n-node decision loop): the engine this repo shipped with;
* **cached** — `run_trials` with a shared `InstanceContext` and
  first-reject short-circuiting, single worker.  The acceptance
  criterion: ≥ 3× over seed-style *before* any parallelism;
* **parallel** — the same batch fanned over a fork worker pool.

All three produce the identical accepted count (deterministic
`seed + trial_index` streams), so this is a pure throughput comparison.
The soundness benchmark additionally shows the short-circuit effect:
a committed cheating mapping is rejected at the root, so the decision
loop touches ~1 node instead of 64.

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs (the ratio
assertion is skipped there — tiny batches are all setup noise).
"""

import os
import random
import time

from conftest import report_table

from repro import Instance, run_protocol, run_trials
from repro.graphs import cycle_graph, random_connected_graph
from repro.lab.quick import pick, quick_mode
from repro.protocols import CommittedMappingProver, SymDMAMProtocol

QUICK = quick_mode()
N = pick(64, 16)
TRIALS = pick(200, 20)
SEED = 0x5EED
WORKERS = min(8, os.cpu_count() or 1)


def seed_style_accepts(protocol, instance, prover, trials, seed):
    """The pre-batching execution path: per-trial `run_protocol` with a
    cold context each time and no short-circuiting — but the same
    per-trial seed streams as `run_trials`, so the counts must agree."""
    return sum(
        run_protocol(protocol, instance, prover,
                     random.Random(seed + t)).accepted
        for t in range(trials))


def test_batched_speedup(benchmark):
    protocol = SymDMAMProtocol(N)
    instance = Instance(cycle_graph(N))
    prover = protocol.honest_prover()

    start = time.perf_counter()
    baseline_accepted = seed_style_accepts(protocol, instance, prover,
                                           TRIALS, SEED)
    baseline_seconds = time.perf_counter() - start

    cached = benchmark.pedantic(
        lambda: run_trials(protocol, instance, prover, TRIALS, SEED,
                           workers=1),
        rounds=1, iterations=1)
    parallel = run_trials(protocol, instance, prover, TRIALS, SEED,
                          workers=WORKERS)

    assert cached.accepted == baseline_accepted == parallel.accepted
    assert cached == parallel  # bit-identical estimates

    ratio = baseline_seconds / cached.elapsed_seconds
    parallel_ratio = baseline_seconds / parallel.elapsed_seconds
    rows = [
        ("seed-style serial", f"{baseline_seconds:.3f}",
         f"{TRIALS / baseline_seconds:.1f}", "1.0x", baseline_accepted),
        ("cached 1-worker", f"{cached.elapsed_seconds:.3f}",
         f"{cached.trials_per_second:.1f}", f"{ratio:.1f}x",
         cached.accepted),
        (f"cached {parallel.workers}-worker",
         f"{parallel.elapsed_seconds:.3f}",
         f"{parallel.trials_per_second:.1f}", f"{parallel_ratio:.1f}x",
         parallel.accepted),
    ]
    report_table(benchmark,
                 f"runner: Sym/dMAM n={N}, trials={TRIALS} throughput",
                 ("engine", "seconds", "trials/s", "speedup", "accepted"),
                 rows)
    if not QUICK:
        assert ratio >= 3.0, (
            f"cached single-worker engine only {ratio:.2f}x over seed path")


def test_short_circuit_soundness(benchmark):
    graph = random_connected_graph(N, 0.2, random.Random(5))
    protocol = SymDMAMProtocol(N)
    instance = Instance(graph)
    adversary = CommittedMappingProver(protocol)

    estimate = benchmark.pedantic(
        lambda: run_trials(protocol, instance, adversary, TRIALS, SEED),
        rounds=1, iterations=1)

    assert estimate.probability < 1.0 / 3.0
    mean_decides = estimate.decide_calls / estimate.trials
    rows = [(N, TRIALS, f"{estimate.probability:.4f}",
             f"{mean_decides:.2f}", estimate.short_circuits)]
    report_table(benchmark,
                 "runner: short-circuit on NO instances (committed swap)",
                 ("n", "trials", "accept rate", "mean decide calls/trial",
                  "short-circuited trials"),
                 rows)
    # Rejections concentrate at the root check, so the decision loop
    # should touch far fewer than n nodes per rejecting trial.
    assert mean_decides < N / 2
