"""The batched execution engine versus the seed serial path.

Measures, on Protocol 1 (Sym/dMAM) at n = 64 with 200 trials:

* **seed-style** — `run_protocol` in a loop, fresh context per trial
  (every trial re-runs the automorphism search, the BFS tree, and the
  full n-node decision loop): the engine this repo shipped with;
* **cached** — `run_trials` with a shared `InstanceContext` and
  first-reject short-circuiting, single worker.  The acceptance
  criterion: ≥ 3× over seed-style *before* any parallelism;
* **parallel** — the same batch fanned over a fork worker pool;
* **numpy kernel** — `run_trials(engine="numpy")`, the vectorized
  trial kernels of `repro.core.kernels`.  The acceptance criterion:
  ≥ 10× over the cached single-worker engine once the kernel tables
  are warm, plus an n = 1024 headroom point the reference engine
  cannot reasonably reach (skipped when numpy is not installed).

All three produce the identical accepted count (deterministic
`seed + trial_index` streams), so this is a pure throughput comparison.
The soundness benchmark additionally shows the short-circuit effect:
a committed cheating mapping is rejected at the root, so the decision
loop touches ~1 node instead of 64.

``BENCH_QUICK=1`` shrinks the workload for CI smoke runs (the ratio
assertion is skipped there — tiny batches are all setup noise).
"""

import os
import random
import time

import pytest
from conftest import report_table

from repro import Instance, InstanceContext, run_protocol, run_trials
from repro.core.kernels import numpy_available
from repro.graphs import cycle_graph, random_connected_graph
from repro.lab.quick import pick, quick_mode
from repro.protocols import CommittedMappingProver, SymDMAMProtocol

QUICK = quick_mode()
N = pick(64, 16)
TRIALS = pick(200, 20)
SEED = 0x5EED
WORKERS = min(8, os.cpu_count() or 1)
#: The vectorized-engine headroom point: far beyond what the python
#: engine can sweep, well within one kernel call.
N_LARGE = pick(1024, 64)


def seed_style_accepts(protocol, instance, prover, trials, seed):
    """The pre-batching execution path: per-trial `run_protocol` with a
    cold context each time and no short-circuiting — but the same
    per-trial seed streams as `run_trials`, so the counts must agree."""
    return sum(
        run_protocol(protocol, instance, prover,
                     random.Random(seed + t)).accepted
        for t in range(trials))


def test_batched_speedup(benchmark):
    protocol = SymDMAMProtocol(N)
    instance = Instance(cycle_graph(N))
    prover = protocol.honest_prover()

    start = time.perf_counter()
    baseline_accepted = seed_style_accepts(protocol, instance, prover,
                                           TRIALS, SEED)
    baseline_seconds = time.perf_counter() - start

    cached = benchmark.pedantic(
        lambda: run_trials(protocol, instance, prover, TRIALS, SEED,
                           workers=1),
        rounds=1, iterations=1)
    parallel = run_trials(protocol, instance, prover, TRIALS, SEED,
                          workers=WORKERS)

    assert cached.accepted == baseline_accepted == parallel.accepted
    assert cached == parallel  # bit-identical estimates

    ratio = baseline_seconds / cached.elapsed_seconds
    parallel_ratio = baseline_seconds / parallel.elapsed_seconds
    rows = [
        ("seed-style serial", f"{baseline_seconds:.3f}",
         f"{TRIALS / baseline_seconds:.1f}", "1.0x", baseline_accepted),
        ("cached 1-worker", f"{cached.elapsed_seconds:.3f}",
         f"{cached.trials_per_second:.1f}", f"{ratio:.1f}x",
         cached.accepted),
        (f"cached {parallel.workers}-worker",
         f"{parallel.elapsed_seconds:.3f}",
         f"{parallel.trials_per_second:.1f}", f"{parallel_ratio:.1f}x",
         parallel.accepted),
    ]
    report_table(benchmark,
                 f"runner: Sym/dMAM n={N}, trials={TRIALS} throughput",
                 ("engine", "seconds", "trials/s", "speedup", "accepted"),
                 rows)
    if not QUICK:
        assert ratio >= 3.0, (
            f"cached single-worker engine only {ratio:.2f}x over seed path")


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_kernel_speedup(benchmark):
    protocol = SymDMAMProtocol(N)
    instance = Instance(cycle_graph(N))
    prover = protocol.honest_prover()
    context = InstanceContext(instance, protocol)

    cached = run_trials(protocol, instance, prover, TRIALS, SEED,
                        context=context, engine="python")
    # First kernel call: builds the adjacency/permutation tables and
    # pays the trial-0 cross-check against the reference engine.
    cold = run_trials(protocol, instance, prover, TRIALS, SEED,
                      context=context, engine="numpy")
    warm = benchmark.pedantic(
        lambda: run_trials(protocol, instance, prover, TRIALS, SEED,
                           context=context, engine="numpy"),
        rounds=1, iterations=1)

    assert warm.engine == cold.engine == "numpy"
    assert warm == cold == cached  # bit-identical estimates
    assert warm.decide_calls == cached.decide_calls

    # The headroom point: one warm kernel sweep at n = 1024 (table
    # build + cross-check paid by a 1-trial call first).  The
    # automorphism witness search recurses one frame per vertex, so
    # the default stack is too small at this size on either engine.
    import sys
    big_protocol = SymDMAMProtocol(N_LARGE)
    big_instance = Instance(cycle_graph(N_LARGE))
    big_prover = big_protocol.honest_prover()
    big_context = InstanceContext(big_instance, big_protocol)
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 20 * N_LARGE))
    try:
        run_trials(big_protocol, big_instance, big_prover, 1, SEED,
                   context=big_context, engine="numpy")
        big = run_trials(big_protocol, big_instance, big_prover, TRIALS,
                         SEED, context=big_context, engine="numpy")
    finally:
        sys.setrecursionlimit(limit)
    assert big.engine == "numpy"
    assert big.accepted == TRIALS  # honest prover on a symmetric graph

    cold_ratio = cached.elapsed_seconds / cold.elapsed_seconds
    warm_ratio = cached.elapsed_seconds / warm.elapsed_seconds
    rows = [
        (f"python cached (n={N})", f"{cached.elapsed_seconds:.3f}",
         f"{cached.trials_per_second:.1f}", "1.0x", cached.accepted),
        (f"numpy cold (n={N})", f"{cold.elapsed_seconds:.3f}",
         f"{cold.trials_per_second:.1f}", f"{cold_ratio:.1f}x",
         cold.accepted),
        (f"numpy warm (n={N})", f"{warm.elapsed_seconds:.3f}",
         f"{warm.trials_per_second:.1f}", f"{warm_ratio:.1f}x",
         warm.accepted),
        (f"numpy warm (n={N_LARGE})", f"{big.elapsed_seconds:.3f}",
         f"{big.trials_per_second:.1f}", "-", big.accepted),
    ]
    report_table(benchmark,
                 f"runner: numpy kernel vs cached engine, "
                 f"trials={TRIALS}",
                 ("engine", "seconds", "trials/s", "speedup", "accepted"),
                 rows)
    if not QUICK:
        assert warm_ratio >= 10.0, (
            f"numpy kernel only {warm_ratio:.2f}x over the cached "
            f"python engine")


def test_short_circuit_soundness(benchmark):
    graph = random_connected_graph(N, 0.2, random.Random(5))
    protocol = SymDMAMProtocol(N)
    instance = Instance(graph)
    adversary = CommittedMappingProver(protocol)

    estimate = benchmark.pedantic(
        lambda: run_trials(protocol, instance, adversary, TRIALS, SEED),
        rounds=1, iterations=1)

    assert estimate.probability < 1.0 / 3.0
    mean_decides = estimate.decide_calls / estimate.trials
    rows = [(N, TRIALS, f"{estimate.probability:.4f}",
             f"{mean_decides:.2f}", estimate.short_circuits)]
    report_table(benchmark,
                 "runner: short-circuit on NO instances (committed swap)",
                 ("n", "trials", "accept rate", "mean decide calls/trial",
                  "short-circuited trials"),
                 rows)
    # Rejections concentrate at the root check, so the decision loop
    # should touch far fewer than n nodes per rejecting trial.
    assert mean_decides < N / 2
