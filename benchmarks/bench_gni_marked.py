"""E11 — The paper's alternative GNI definition (Section 2.3):
marked-subgraph non-isomorphism over a single network graph.

Regenerates: end-to-end correctness on marked dumbbells (including the
free unequal-sizes case), and the four-round structure's cost split.
"""

import math
import random

from conftest import report_table

from repro import run_protocol
from repro.graphs import Graph
from repro.lab.quick import pick
from repro.protocols import (MARK_NONE, MARK_ONE, MARK_ZERO,
                             MarkedGNIProtocol, marked_instance)


def build_instance(f_a, f_b, drop_vertex=False):
    edges = list(f_a.edges)
    edges += [(u + 6, v + 6) for u, v in f_b.edges]
    edges += [(0, 12), (12, 6)]
    graph = Graph(13, edges)
    marks = {v: MARK_ZERO for v in range(6)}
    marks.update({v: MARK_ONE for v in range(6, 12)})
    marks[12] = MARK_NONE
    if drop_vertex:
        marks[5] = MARK_NONE
    return marked_instance(graph, marks)


def test_marked_gni_correctness(benchmark, rigid6):
    protocol = MarkedGNIProtocol(13, k=6, repetitions=40)
    yes = build_instance(rigid6[0], rigid6[1])
    no = build_instance(rigid6[0], rigid6[0].relabel([2, 0, 1, 4, 3, 5]))
    unequal = build_instance(rigid6[0], rigid6[1], drop_vertex=True)

    def run_all():
        runs = pick(6, 4)
        yes_acc = sum(run_protocol(protocol, yes, protocol.honest_prover(),
                                   random.Random(i)).accepted
                      for i in range(runs))
        no_acc = sum(run_protocol(protocol, no, protocol.honest_prover(),
                                  random.Random(i)).accepted
                     for i in range(runs))
        unequal_acc = run_protocol(protocol, unequal,
                                   protocol.honest_prover(),
                                   random.Random(0)).accepted
        return yes_acc, no_acc, unequal_acc, runs

    yes_acc, no_acc, unequal_acc, runs = benchmark.pedantic(
        run_all, rounds=1, iterations=1)
    guarantee = protocol.guarantees()
    report_table(
        benchmark, "E11: marked-subgraph GNI (n=13, two marked 6-sets)",
        ("instance", "accepted", "analytic"),
        [("YES (rigid F0 vs F1)", f"{yes_acc}/{runs}",
          f"completeness {guarantee.completeness:.3f}"),
         ("NO (F0 vs relabeled F0)", f"{no_acc}/{runs}",
          f"soundness err {guarantee.soundness_error:.3f}"),
         ("unequal sizes (5 vs 6)", unequal_acc,
          "deterministic accept")])
    assert yes_acc >= runs - 2
    assert no_acc <= 2
    assert unequal_acc


def test_marked_gni_cost(benchmark, rigid6):
    protocol = MarkedGNIProtocol(13, k=6, repetitions=8)
    instance = build_instance(rigid6[0], rigid6[1])

    def run_once():
        return run_protocol(protocol, instance, protocol.honest_prover(),
                            random.Random(1))

    result = benchmark(run_once)
    n = 13
    report_table(benchmark, "E11: cost (8 repetitions)",
                 ("per-node bits", "per-rep bits/(n*log2 n)"),
                 [(result.max_cost_bits,
                   f"{result.max_cost_bits / 8 / (n * math.log2(n)):.1f}")])
