"""E3 — Theorem 1.2: the exponential separation, DSym in dAM[O(log n)]
versus the Ω(n²) LCP baseline.

Regenerates the separation curve: per-node bits for both models across
network sizes, plus DSym correctness on both sides.
"""

import math
import random

from conftest import report_table

from repro import Instance, run_protocol
from repro.graphs import DSymLayout, cycle_graph, dsym_graph, \
    dsym_no_instance
from repro.lab.quick import pick
from repro.protocols import DSymDAMProtocol, DSymLCP

INNER_SIZES = pick((6, 12, 24, 48), (6, 12, 24))


def test_separation_curve(benchmark):
    rng = random.Random(3)

    def run_all():
        rows = []
        for inner in INNER_SIZES:
            layout = DSymLayout(inner, 2)
            graph = dsym_graph(cycle_graph(inner), 2)
            instance = Instance(graph)
            dam = DSymDAMProtocol(layout)
            lcp = DSymLCP(layout)
            dam_cost = run_protocol(dam, instance, dam.honest_prover(),
                                    rng).max_cost_bits
            lcp_cost = run_protocol(lcp, instance, lcp.honest_prover(),
                                    rng).max_cost_bits
            rows.append((layout.total_n, dam_cost, lcp_cost,
                         f"{lcp_cost / dam_cost:.1f}x"))
        return rows

    rows = benchmark(run_all)
    report_table(benchmark, "E3: DSym — dAM vs LCP per-node bits",
                 ("N", "dAM bits", "LCP bits", "gap"), rows)
    gaps = [float(str(r[3]).rstrip("x")) for r in rows]
    assert gaps == sorted(gaps)       # the gap widens with N
    assert gaps[-1] >= 2 * gaps[0]    # substantially


def test_dsym_two_sided_correctness(benchmark, rigid6):
    layout = DSymLayout(6, 2)
    protocol = DSymDAMProtocol(layout)
    yes = Instance(dsym_graph(rigid6[0], 2))
    no = Instance(dsym_no_instance(rigid6[0], rigid6[1], 2))
    trials = pick(60, 15)

    def run_both():
        yes_rate = sum(
            run_protocol(protocol, yes, protocol.honest_prover(),
                         random.Random(i)).accepted
            for i in range(trials)) / trials
        no_rate = sum(
            run_protocol(protocol, no, protocol.honest_prover(),
                         random.Random(i)).accepted
            for i in range(trials)) / trials
        return yes_rate, no_rate

    yes_rate, no_rate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report_table(benchmark, "E3: DSym dAM acceptance",
                 ("side", "rate", "definition"),
                 [("YES (two equal halves)", f"{yes_rate:.3f}", "> 2/3"),
                  ("NO (different halves)", f"{no_rate:.3f}", "< 1/3")])
    assert yes_rate > 2 / 3
    assert no_rate < 1 / 3
