"""E10 — Related-work baseline: randomized node-to-node verification
(the RPLS phenomenon of [4], which the paper's model deliberately does
not inherit because it charges the prover).

Regenerates: the deterministic-vs-hashed cost table across value
widths, with the measured detection probability of a planted
inconsistency.
"""

import math
import random

from conftest import report_table

from repro.graphs import cycle_graph
from repro.lab.quick import pick
from repro.network import (DeterministicEquality, HashedEquality,
                           detection_probability, run_edge_verification)

WIDTHS = pick((64, 256, 1024, 4096), (64, 256, 1024))
HASH_TRIALS = pick(150, 60)


def test_cost_gap_and_detection(benchmark):
    graph = cycle_graph(10)

    def sweep():
        rows = []
        for k in WIDTHS:
            det = DeterministicEquality(k)
            hashed = HashedEquality(k)
            values = {v: (1 << (k - 1)) | 3 for v in graph.vertices}
            values[4] ^= 1  # plant one deviation
            det_rate = detection_probability(graph, values, det, 10,
                                             random.Random(k))
            hash_rate = detection_probability(graph, values, hashed,
                                              HASH_TRIALS,
                                              random.Random(k))
            rows.append((k, det.message_bits, hashed.message_bits,
                         f"{det.message_bits / hashed.message_bits:.0f}x",
                         f"{det_rate:.2f}", f"{hash_rate:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_table(benchmark,
                 "E10: edge-equality verification, deterministic vs hashed",
                 ("value bits", "det bits/edge", "hash bits/edge", "gap",
                  "det detection", "hash detection"), rows)
    for k, det_bits, hash_bits, _gap, det_rate, hash_rate in rows:
        assert det_bits == k
        assert hash_bits <= 8 * math.log2(k) + 16
        assert float(det_rate) == 1.0
        assert float(hash_rate) >= 0.95


def test_verification_round_throughput(benchmark):
    graph = cycle_graph(64)
    scheme = HashedEquality(256)
    values = {v: 777 for v in graph.vertices}
    rng = random.Random(5)

    result = benchmark(
        lambda: run_edge_verification(graph, values, scheme, rng))
    assert result.accepted
    report_table(benchmark, "E10: one verification round (n=64, k=256)",
                 ("nodes", "bits/edge-message"),
                 [(graph.n, scheme.message_bits)])
