"""E5 — Theorem 1.5: the distributed Goldwasser–Sipser GNI protocol.

Regenerates: per-repetition success rates versus the analytic sandwich
(the 3/8 vs 1/4 GS gap), the amplified acceptance probabilities
(exact binomials on the measured rates), end-to-end executions, and
the O(n log n) cost accounting.
"""

import math
import random

from conftest import report_table

from repro import gni_instance, run_protocol
from repro.core import binomial_tail
from repro.lab.quick import pick
from repro.protocols import (GNIGoldwasserSipserProtocol,
                             per_repetition_success_rate)

RATE_TRIALS = pick(120, 40)
AMP_TRIALS = pick(100, 40)


def test_gs_gap(benchmark, rigid6):
    protocol = GNIGoldwasserSipserProtocol(6, repetitions=40)
    g0, g1 = rigid6[0], rigid6[1]
    g1_iso = g0.relabel([2, 0, 1, 4, 3, 5])

    def measure():
        rng = random.Random(6)
        rate_yes = per_repetition_success_rate(g0, g1, protocol,
                                               RATE_TRIALS, rng)
        rate_no = per_repetition_success_rate(g0, g1_iso, protocol,
                                              RATE_TRIALS, rng)
        return rate_yes, rate_no

    rate_yes, rate_no = benchmark.pedantic(measure, rounds=1, iterations=1)
    p_yes_lb, p_no_ub = protocol.repetition_bounds()
    report_table(benchmark, "E5: per-repetition GS success probability",
                 ("side", "measured", "analytic bound"),
                 [("YES (|S| = 2*6!)", f"{rate_yes:.3f}",
                   f">= {p_yes_lb:.3f}"),
                  ("NO  (|S| = 6!)", f"{rate_no:.3f}",
                   f"<= {p_no_ub:.3f}")])
    sigma = math.sqrt(0.25 / RATE_TRIALS)
    assert rate_yes >= p_yes_lb - 4 * sigma
    assert rate_no <= p_no_ub + 4 * sigma


def test_amplified_guarantees(benchmark, rigid6):
    protocol = GNIGoldwasserSipserProtocol(6, repetitions=40)
    g0, g1 = rigid6[0], rigid6[1]
    g1_iso = g0.relabel([2, 0, 1, 4, 3, 5])

    def compute():
        rng = random.Random(8)
        rate_yes = per_repetition_success_rate(g0, g1, protocol,
                                               AMP_TRIALS, rng)
        rate_no = per_repetition_success_rate(g0, g1_iso, protocol,
                                              AMP_TRIALS, rng)
        t, k = protocol.repetitions, protocol.threshold
        return (binomial_tail(t, rate_yes, k), binomial_tail(t, rate_no, k))

    acc_yes, acc_no = benchmark.pedantic(compute, rounds=1, iterations=1)
    guarantees = protocol.guarantees()
    report_table(
        benchmark,
        "E5: amplified acceptance (exact binomial on measured rates)",
        ("side", "probability", "analytic", "definition"),
        [("YES", f"{acc_yes:.3f}", f"{guarantees.completeness:.3f}",
          "> 2/3"),
         ("NO", f"{acc_no:.3f}", f"{guarantees.soundness_error:.3f}",
          "< 1/3")])
    assert acc_yes > 2 / 3
    assert acc_no < 1 / 3


def test_end_to_end_execution(benchmark, rigid6):
    protocol = GNIGoldwasserSipserProtocol(6, repetitions=40)
    instance = gni_instance(rigid6[0], rigid6[1])

    def run_once():
        return run_protocol(protocol, instance, protocol.honest_prover(),
                            random.Random(9))

    result = benchmark(run_once)
    report_table(benchmark, "E5: one full dAMAM execution (n=6, t=40)",
                 ("accepted", "per-node bits", "bits/(t*n*log2 n)"),
                 [(result.accepted, result.max_cost_bits,
                   f"{result.max_cost_bits / (40 * 6 * math.log2(6)):.1f}")])


def test_cost_scaling(benchmark, rigid6):
    from repro.graphs import path_graph

    def run_sizes():
        rows = []
        for n in (6, 7):
            if n == 6:
                g0, g1 = rigid6[0], rigid6[1]
            else:
                g0 = rigid6[0].disjoint_union(path_graph(1)) \
                    .with_edges([(5, 6)])
                g1 = rigid6[1].disjoint_union(path_graph(1)) \
                    .with_edges([(4, 6)])
            protocol = GNIGoldwasserSipserProtocol(n, repetitions=8)
            instance = gni_instance(g0, g1)
            result = run_protocol(protocol, instance,
                                  protocol.honest_prover(),
                                  random.Random(10))
            per_rep = result.max_cost_bits / 8
            rows.append((n, result.max_cost_bits,
                         f"{per_rep / (n * math.log2(n)):.1f}"))
        return rows

    rows = benchmark.pedantic(run_sizes, rounds=1, iterations=1)
    report_table(benchmark, "E5: GNI cost scaling (8 repetitions)",
                 ("n", "bits", "per-rep bits/(n*log2 n)"), rows)
