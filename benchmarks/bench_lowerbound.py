"""E4 — Theorem 1.4: the Ω(log log n) lower-bound pipeline.

Regenerates: (i) the Lemma 3.11 distribution distances measured on
executable simple protocols over the rigid-6 family; (ii) the packing
table |F(n)| → implied minimum protocol length, tracking log log n.
"""

import math
import random

from conftest import report_table

from repro.lab.quick import pick
from repro.lowerbound import (EncodingProtocol, LocalHashProtocol,
                              l1_distance, lemma39_acceptance,
                              lower_bound_table, mu_a, packing_bound)

FAMILY_SIZE = pick(4, 3)


def test_lemma311_distances(benchmark, rigid6):
    rng = random.Random(4)
    correct = EncodingProtocol(6)
    broken = LocalHashProtocol(1)

    def measure():
        mus_correct = [mu_a(correct, f, 4, rng)
                       for f in rigid6[:FAMILY_SIZE]]
        mus_broken = [mu_a(broken, f, 8, rng)
                      for f in rigid6[:FAMILY_SIZE]]
        def min_pair(mus):
            return min(l1_distance(mus[i], mus[j])
                       for i in range(len(mus))
                       for j in range(i + 1, len(mus)))
        return min_pair(mus_correct), min_pair(mus_broken)

    d_correct, d_broken = benchmark.pedantic(measure, rounds=1, iterations=1)
    report_table(benchmark,
                 "E4: Lemma 3.11 — min pairwise L1 distance of mu_A(F)",
                 ("protocol", "min distance", "Lemma 3.11 demands"),
                 [("encoding (correct)", f"{d_correct:.2f}", ">= 2/3"),
                  ("local-hash (broken)", f"{d_broken:.2f}",
                   "n/a (not correct)")])
    assert d_correct >= 2 / 3
    assert d_broken < 2 / 3


def test_broken_protocol_fails_on_family(benchmark, rigid6):
    protocol = LocalHashProtocol(1)
    rng = random.Random(5)

    def accept_no_instance():
        return lemma39_acceptance(protocol, rigid6[0], rigid6[1],
                                  pick(10, 6), rng)

    rate = benchmark.pedantic(accept_no_instance, rounds=1, iterations=1)
    report_table(benchmark,
                 "E4: the broken protocol accepts asymmetric dumbbells",
                 ("instance", "best-prover acceptance", "correctness cap"),
                 [("G(F0,F1) (NO)", f"{rate:.2f}", "< 1/3")])
    assert rate > 1 / 3  # it really is broken, as Lemma 3.11 predicted


def test_packing_table(benchmark):
    sizes = [6, 10, 100, 10 ** 4, 10 ** 6, 10 ** 9]

    def build():
        return lower_bound_table(sizes)

    rows = benchmark(build)
    table = [(r.inner_n, f"{r.log2_family_size:.1f}",
              r.min_simple_length, f"{r.loglog_n:.2f}")
             for r in rows]
    report_table(benchmark,
                 "E4: packing bound — implied min protocol length",
                 ("inner n", "log2|F|", "min L (simple)", "log2 log2 N"),
                 table)
    bounds = [r.min_simple_length for r in rows]
    assert bounds == sorted(bounds)
    assert bounds[-1] > bounds[0]
    # Lemma 3.12 cross-check at small dimensions.
    assert abs(packing_bound(2) - 25.0) < 1e-9
