"""Load generation against the verification service.

An in-process asyncio load generator drives :class:`VerifyService`
through the same ``handle()`` entry point both transports use: a fleet
of concurrent clients submits small Sym/dMAM jobs (the service's
throughput floor in ISSUE/acceptance terms: ≥ 1000 verifications/sec
sustained, where one verification = one protocol trial), and the
benchmark records sustained throughput plus p50/p99 request latency
per engine into ``BENCH_serve.json``.

Two properties are *asserted*, not just reported:

* **byte-identity** — every success response's ``result`` object must
  equal ``result_payload`` over a direct ``run_trials`` call with the
  same job (same seeds, warm context).  Batching and caching may never
  change a result.
* **throughput floor** — in full mode the python engine must sustain
  ≥ 1000 verifications/sec on n=8 Sym/dMAM jobs.  Skipped under
  ``BENCH_QUICK=1`` (tiny workloads are all setup noise).
"""

import asyncio
import json
import time

import pytest
from conftest import report_table

from repro.core.kernels import numpy_available
from repro.core.runner import run_trials
from repro.lab.quick import pick, quick_mode
from repro.lab.spec import PROVERS
from repro.serve import (ServeConfig, VerifyService, parse_request,
                         resolve_instance, result_payload)

QUICK = quick_mode()
#: total requests per engine scenario.
JOBS = pick(200, 24)
#: protocol trials per request — one trial is one verification.
TRIALS_PER_JOB = pick(25, 5)
CONCURRENCY = pick(32, 8)
SEED = 0xC0FFEE

#: The job mix: four content addresses so batching groups and the
#: sharded cache both see traffic (all small Sym instances).
COMBOS = (
    ("sym-dmam", "cycle", 8),
    ("sym-dmam", "cycle", 12),
    ("sym-dam", "cycle", 8),
    ("sym-lcp", "cycle", 10),
)


def _payloads(engine):
    lines = []
    for index in range(JOBS):
        protocol, graph, n = COMBOS[index % len(COMBOS)]
        lines.append(json.dumps({
            "v": 1, "id": f"load-{engine}-{index}",
            "job": {"protocol": protocol, "graph": graph, "n": n,
                    "trials": TRIALS_PER_JOB, "seed": SEED + index,
                    "engine": engine},
        }))
    return lines


async def _drive(engine):
    """One load run: all payloads through ``CONCURRENCY`` clients.

    Returns ``(responses, latencies_ms, wall_seconds, stats)``.
    """
    service = VerifyService(ServeConfig(
        queue_limit=max(JOBS, 64), batch_max=32, pool_threads=2,
        default_engine=engine))
    await service.start()
    payloads = _payloads(engine)
    queue = asyncio.Queue()
    for payload in payloads:
        queue.put_nowait(payload)
    responses = []
    latencies = []

    async def _client():
        while True:
            try:
                payload = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            tick = time.monotonic()
            response = await service.handle(payload)
            latencies.append((time.monotonic() - tick) * 1000.0)
            responses.append(response)

    started = time.monotonic()
    await asyncio.gather(*(_client() for _ in range(CONCURRENCY)))
    wall = time.monotonic() - started
    drained = await service.drain()
    stats = service.stats()
    await service.close()
    assert drained, "service failed to drain after the load run"
    return responses, latencies, wall, stats


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _assert_byte_identity(responses):
    """Every served result must equal the direct library call."""
    # Resolve each distinct instance once; run_trials per response.
    contexts = {}
    for response in responses:
        assert response["ok"], response
        job = parse_request(_reconstruct(response)).job
        key = job.identity_key
        if key not in contexts:
            contexts[key] = resolve_instance(job)
        resolved = contexts[key]
        prover = PROVERS[job.prover](resolved.protocol)
        estimate = run_trials(resolved.protocol, resolved.instance,
                              prover, job.trials, job.seed,
                              context=resolved.context,
                              engine=job.engine)
        direct = json.dumps(result_payload(job, estimate),
                            sort_keys=True)
        served = json.dumps(response["result"], sort_keys=True)
        assert direct == served, (
            f"byte-identity violated for {response['id']}: "
            f"direct={direct} served={served}")


#: request id -> original payload, rebuilt for the identity check.
_SENT = {}


def _reconstruct(response):
    return _SENT[response["id"]]


def _scenario(engine):
    for payload in _payloads(engine):
        _SENT[json.loads(payload)["id"]] = payload
    responses, latencies, wall, stats = asyncio.run(_drive(engine))
    assert len(responses) == JOBS
    rejected = [r for r in responses if not r.get("ok")]
    assert not rejected, f"load run rejected requests: {rejected[:3]}"
    _assert_byte_identity(responses)
    latencies.sort()
    verifications = JOBS * TRIALS_PER_JOB
    return {
        "engine": engine,
        "requests": JOBS,
        "verifications": verifications,
        "throughput": verifications / wall,
        "requests_per_s": JOBS / wall,
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "max_ms": latencies[-1],
        "cache_hits": stats["cache"]["hits"],
        "batches": stats["counts"]["batches"],
        "batched_jobs": stats["counts"]["batched_jobs"],
    }


@pytest.mark.parametrize("engine", [
    "python",
    pytest.param("numpy", marks=pytest.mark.skipif(
        not numpy_available(), reason="numpy not installed")),
])
def test_serve_load(benchmark, engine):
    summary = benchmark.pedantic(_scenario, args=(engine,),
                                 rounds=1, iterations=1)
    benchmark.extra_info.update(summary)
    report_table(
        benchmark,
        f"serve sustained load — engine={engine} "
        f"({JOBS} requests x {TRIALS_PER_JOB} trials, "
        f"{CONCURRENCY} clients)",
        ["metric", "value"],
        [["verifications/sec", f"{summary['throughput']:,.0f}"],
         ["requests/sec", f"{summary['requests_per_s']:,.1f}"],
         ["p50 latency (ms)", f"{summary['p50_ms']:.2f}"],
         ["p99 latency (ms)", f"{summary['p99_ms']:.2f}"],
         ["max latency (ms)", f"{summary['max_ms']:.2f}"],
         ["batches dispatched", summary["batches"]],
         ["jobs batched", summary["batched_jobs"]],
         ["cache hits", summary["cache_hits"]]])
    if not QUICK and engine == "python":
        # The acceptance floor: small Sym/dMAM jobs must sustain
        # >= 1000 verifications/sec through the full service path.
        assert summary["throughput"] >= 1000, (
            f"sustained only {summary['throughput']:.0f} "
            f"verifications/sec (floor: 1000)")
