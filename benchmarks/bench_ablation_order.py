"""E6 — Ablation: why interaction *order* matters.

The same verification machinery, the same small prime
(p ∈ [10n³, 100n³]): committed before the challenge (dMAM order) it is
sound; revealed after the challenge (dAM order) the adaptive prover
collision-hunts and breaks it.  Regenerates the break-rate table across
prime sizes.
"""

import random

from conftest import report_table

from repro import Instance, run_protocol
from repro.hashing import LinearHashFamily, next_prime
from repro.lab.quick import pick
from repro.protocols import (AdaptiveCollisionProver, CommittedMappingProver,
                             SymDAMProtocol, SymDMAMProtocol,
                             protocol1_hash_family)

TRIALS = pick(25, 10)


def test_order_ablation(benchmark, rigid6):
    graph = rigid6[0]  # rigid: a NO instance for Sym
    instance = Instance(graph)
    small_family = protocol1_hash_family(6)

    def attack_both_orders():
        dmam = SymDMAMProtocol(6, family=small_family)
        committed = CommittedMappingProver(dmam)
        dmam_rate = sum(
            run_protocol(dmam, instance, committed,
                         random.Random(i)).accepted
            for i in range(TRIALS)) / TRIALS

        dam = SymDAMProtocol(6, family=small_family)
        adaptive = AdaptiveCollisionProver(dam, search="permutations")
        dam_rate = sum(
            run_protocol(dam, instance, adaptive,
                         random.Random(i)).accepted
            for i in range(TRIALS)) / TRIALS
        return dmam_rate, dam_rate

    dmam_rate, dam_rate = benchmark.pedantic(attack_both_orders,
                                             rounds=1, iterations=1)
    report_table(
        benchmark,
        "E6: same small prime, different interaction order",
        ("order", "adversarial acceptance", "sound?"),
        [("dMAM (commit, then challenge)", f"{dmam_rate:.3f}",
          dmam_rate < 1 / 3),
         ("dAM (challenge, then respond)", f"{dam_rate:.3f}",
          dam_rate < 1 / 3)])
    assert dmam_rate < 1 / 3        # sound
    assert dam_rate > dmam_rate     # order flip strictly helps the cheat
    assert dam_rate >= 0.15         # and actually breaks soundness margin


def test_break_rate_vs_prime_size(benchmark, rigid6):
    """The dAM break rate as the prime grows: the adaptive prover's
    collision search dies out once p dwarfs the n^n candidate space."""
    graph = rigid6[0]
    instance = Instance(graph)
    primes = [next_prime(p0)
              for p0 in pick((401, 6007, 100003, 10 ** 7, 10 ** 10),
                             (401, 6007, 10 ** 7))]

    def sweep():
        rows = []
        for p in primes:
            family = LinearHashFamily(m=36, p=p)
            dam = SymDAMProtocol(6, family=family)
            adaptive = AdaptiveCollisionProver(dam, search="permutations")
            rate = sum(
                run_protocol(dam, instance, adaptive,
                             random.Random(i)).accepted
                for i in range(12)) / 12
            rows.append((p, f"{rate:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_table(benchmark, "E6: dAM adaptive break rate vs prime size",
                 ("prime p", "break rate"), rows)
    rates = [float(r[1]) for r in rows]
    assert rates[0] >= rates[-1]
    assert rates[-1] <= 1 / 3
