"""Shard-count scaling of the fleet sweep executor.

Runs the same synthetic lab spec through ``run_fleet`` at increasing
shard counts (real forked workers) and records wall time, per-shard
cell counts, and merge statistics into ``BENCH_fleet.json``.  Every
scenario *asserts* the byte-identity contract before reporting a
number: the merged fleet store must match a serial ``run_specs``
baseline on all deterministic fields.

A second scenario measures the recovery path — one shard killed
mid-cell on its first attempt — so the retry/steal overhead is a
tracked number rather than folklore.
"""

import tempfile
import time

import pytest
from conftest import report_table

from repro.fleet import diff_stores, run_fleet
from repro.lab import ResultStore
from repro.lab.quick import pick, quick_mode
from repro.lab.runner import run_specs
from repro.lab.spec import ExperimentSpec

QUICK = quick_mode()
#: Shard counts for the scaling table.
SHARD_COUNTS = (1, 2, 4)

#: One synthetic sweep spec sized so there is real work to spread:
#: enough cells that a 4-way split still has >1 cell per shard, sizes
#: small enough that quick CI stays under a few seconds.
SPEC = ExperimentSpec(
    name="bench-fleet",
    experiment="BENCH",
    title="fleet shard-scaling workload",
    protocol="sym-dmam",
    graph="cycle",
    grid=tuple(pick((16, 24, 32, 48, 64, 96), (8, 12, 16, 20))),
    quick_grid=(8,),
    provers=("honest",),
    trials=pick(4, 2),
    quick_trials=1,
    seed=2018,
)

#: Serial baseline store, built once per session (lazy).
_BASELINE = {}


def _serial_baseline():
    if "store" not in _BASELINE:
        tmp = tempfile.TemporaryDirectory(prefix="bench-fleet-serial-")
        _BASELINE["dir"] = tmp  # keep alive for the session
        store = ResultStore(tmp.name)
        started = time.perf_counter()
        run_specs([SPEC], store, quick=False)
        _BASELINE["wall"] = time.perf_counter() - started
        _BASELINE["store"] = store
    return _BASELINE["store"], _BASELINE["wall"]


def _assert_identical(fleet_store):
    serial, _ = _serial_baseline()
    report = diff_stores([SPEC], serial, fleet_store)
    assert report["ok"], report


def _scenario(shards, kill_shard=None):
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        store = ResultStore(tmp)
        summary = run_fleet([SPEC], store, shards,
                            kill_shard=kill_shard, backoff=0.05)
        assert summary["ok"], summary
        _assert_identical(store)
        return summary


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_fleet_shard_scaling(benchmark, shards):
    serial_store, serial_wall = _serial_baseline()
    summary = benchmark.pedantic(_scenario, args=(shards,),
                                 rounds=1, iterations=1)
    cells = summary["planned"]
    summary = dict(summary, serial_wall=serial_wall,
                   speedup=serial_wall / summary["wall"]
                   if summary["wall"] else 0.0)
    benchmark.extra_info.update(
        {k: v for k, v in summary.items() if k != "store"})
    report_table(
        benchmark,
        f"fleet shard scaling — {shards} shard(s), "
        f"{cells} cells (grid {SPEC.grid}, trials {SPEC.trials})",
        ["metric", "value"],
        [["cells planned", cells],
         ["fleet wall (s)", f"{summary['wall']:.2f}"],
         ["serial wall (s)", f"{serial_wall:.2f}"],
         ["speedup vs serial", f"{summary['speedup']:.2f}x"],
         ["cells/sec", f"{cells / summary['wall']:.2f}"
          if summary["wall"] else "inf"],
         ["waves", len(summary["waves"])],
         ["cells stolen", summary["stolen"]],
         ["cells merged", summary["merged"]["appended"]],
         ["deterministic match", "yes"]])


def test_fleet_recovery_overhead(benchmark):
    """Kill shard 1 after one cell; recovery must stay byte-identical
    and its cost shows up as extra waves, not lost cells."""
    serial_store, serial_wall = _serial_baseline()
    summary = benchmark.pedantic(_scenario, args=(2,),
                                 kwargs={"kill_shard": 1},
                                 rounds=1, iterations=1)
    assert len(summary["waves"]) >= 2, summary["waves"]
    benchmark.extra_info.update(
        {k: v for k, v in summary.items() if k != "store"})
    report_table(
        benchmark,
        "fleet crash recovery — 2 shards, shard 1 killed mid-cell",
        ["metric", "value"],
        [["cells planned", summary["planned"]],
         ["wall (s)", f"{summary['wall']:.2f}"],
         ["serial wall (s)", f"{serial_wall:.2f}"],
         ["waves to converge", len(summary["waves"])],
         ["shards died (wave 0)", len(summary["waves"][0]["failed"])],
         ["cells stolen", summary["stolen"]],
         ["deterministic match", "yes"]])
