"""E8 — Substrate scaling: simulator, spanning-tree PLS, automorphism
and isomorphism search, rigid-family construction.

These are the costs a *user* of the library pays; none appear in the
paper (its nodes are mathematical), but they bound the experiment
sizes every other benchmark can afford.
"""

import random

from conftest import report_table

from repro import Instance, run_protocol
from repro.graphs import (canonical_form, cycle_graph,
                          find_nontrivial_automorphism, gnp_random_graph,
                          rigid_family_sampled, symmetric_doubled_graph)
from repro.lab.quick import pick
from repro.protocols import ConnectivityLCP, SymDMAMProtocol


def test_simulator_throughput(benchmark):
    """Full executions per second of Protocol 1 at n = 64."""
    n = pick(64, 32)
    protocol = SymDMAMProtocol(n)
    instance = Instance(cycle_graph(n))
    prover = protocol.honest_prover()
    rng = random.Random(15)

    result = benchmark(lambda: run_protocol(protocol, instance, prover, rng))
    assert result.accepted
    report_table(benchmark,
                 f"E8: simulator throughput (Protocol 1, n={n})",
                 ("nodes", "rounds", "accepted"),
                 [(n, protocol.num_rounds, result.accepted)])


def test_spanning_tree_pls(benchmark):
    n = pick(512, 128)
    protocol = ConnectivityLCP(n)
    instance = Instance(cycle_graph(n))
    prover = protocol.honest_prover()
    rng = random.Random(16)

    result = benchmark(lambda: run_protocol(protocol, instance, prover, rng))
    assert result.accepted
    report_table(benchmark, f"E8: spanning-tree PLS at n={n}",
                 ("nodes", "per-node bits"), [(n, result.max_cost_bits)])


def test_automorphism_search(benchmark):
    """The honest Sym prover's core query on a symmetric 42-vertex graph."""
    rng = random.Random(17)
    base = gnp_random_graph(pick(20, 12), 0.3, rng)
    graph = symmetric_doubled_graph(base, bridge_length=2)

    rho = benchmark(lambda: find_nontrivial_automorphism(graph))
    assert rho is not None
    report_table(benchmark, "E8: automorphism search",
                 ("n", "found"), [(graph.n, rho is not None)])


def test_canonical_form(benchmark):
    rng = random.Random(18)
    graph = gnp_random_graph(9, 0.5, rng)

    cf = benchmark(lambda: canonical_form(graph))
    report_table(benchmark, "E8: canonical labeling (n=9)",
                 ("n", "edges"), [(graph.n, cf.num_edges)])


def test_rigid_family_sampling(benchmark):
    size = pick(8, 4)

    def build():
        return rigid_family_sampled(10, size, random.Random(19))

    family = benchmark.pedantic(build, rounds=1, iterations=1)
    report_table(benchmark,
                 f"E8: rigid family sampling (n=10, size {size})",
                 ("graphs", "all rigid"), [(len(family), True)])
    assert len(family) == size
