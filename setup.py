"""Legacy installation shim.

The evaluation environment is offline and lacks the ``wheel`` package,
so PEP-517 editable installs fail; this setup.py lets
``pip install -e . --no-build-isolation`` (or plain ``pip install -e .``
with older pip) take the classic setuptools path.  All metadata lives
in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "fast": ["numpy"],
    },
)
