"""The interactive distributed proof model (Section 2.2 of the paper).

A protocol is a sequence of rounds drawn from ``{A, M}``:

* **A (Arthur) rounds** — every node independently sends the prover a
  random challenge.  Definition 1 makes challenges uniformly random
  bitstrings; per the paper's footnote 1 this is WLOG, so our API lets
  a protocol sample any value it likes (e.g. a hash index in ``[p]``)
  and charges its exact bit cost.
* **M (Merlin) rounds** — the prover, who sees the whole graph, every
  input and every challenge sent so far, answers each node with a
  message made of named fields.  Fields a protocol declares as
  *broadcast* are automatically cross-checked: a node rejects if any
  neighbor received a different value (the paper's implicit
  broadcast-verification convention).  Unicast fields are per-node.

After the last round every node applies a *local* decision function.
Locality is enforced structurally: the decision function receives a
:class:`LocalView`, which exposes only the node's closed neighborhood —
its own input, the randomness and prover messages of itself and its
neighbors — and nothing else.  The protocol accepts iff all nodes
accept.

Correctness (Definition 2): YES instances must have a prover achieving
acceptance probability > 2/3; on NO instances no prover may exceed 1/3.
:mod:`repro.core.runner` estimates both sides; the concrete protocols'
honest provers achieve probability exactly 1 except for GNI.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..graphs.graph import Graph

ROUND_ARTHUR = "A"
ROUND_MERLIN = "M"

#: Round patterns of the classes studied in the paper.
PATTERN_DAM = "AM"
PATTERN_DMAM = "MAM"
PATTERN_DAMAM = "AMAM"
#: Distributed NP (proof labeling scheme / locally checkable proof):
#: a single Merlin message and no randomness.
PATTERN_DNP = "M"

NodeMessage = Dict[str, Any]


@dataclass(frozen=True)
class Instance:
    """A problem instance: the network graph plus optional node inputs.

    ``inputs`` maps each vertex to its private input (``None`` for pure
    graph properties like Sym).  For GNI, node ``v``'s input is its
    neighborhood in the second graph ``G₁``.
    """

    graph: Graph
    inputs: Optional[Mapping[int, Any]] = None

    def input_of(self, v: int) -> Any:
        if self.inputs is None:
            return None
        return self.inputs.get(v)

    @property
    def n(self) -> int:
        return self.graph.n


@dataclass
class LocalView:
    """Everything node ``v`` may legally base its decision on.

    Mirrors Definition 1's ``out_v``: the node's neighborhood, its
    input, the challenges of itself and its neighbors, and the prover's
    responses to itself and its neighbors.  ``n`` is known to all nodes
    (the paper fixes a public vertex set ``V``).

    ``randomness[r]`` / ``messages[r]`` map a round index to per-node
    dictionaries whose keys are exactly the *closed* neighborhood of
    ``v`` — nothing outside it is present, so a decision function
    cannot cheat on locality even by accident.
    """

    node: int
    n: int
    closed_neighborhood: Tuple[int, ...]
    node_input: Any
    #: round index -> {u: challenge value} for u in closed neighborhood.
    randomness: Dict[int, Dict[int, Any]]
    #: round index -> {u: {field: value}} for u in closed neighborhood.
    messages: Dict[int, Dict[int, NodeMessage]]

    @property
    def neighbors(self) -> Tuple[int, ...]:
        """Open neighborhood (closed neighborhood minus the node)."""
        return tuple(u for u in self.closed_neighborhood if u != self.node)

    def own_randomness(self, round_idx: int) -> Any:
        return self.randomness[round_idx][self.node]

    def own_message(self, round_idx: int) -> NodeMessage:
        return self.messages[round_idx][self.node]

    def message_of(self, round_idx: int, u: int) -> NodeMessage:
        """Prover message to neighbor ``u`` (or the node itself)."""
        return self.messages[round_idx][u]

    def has_edge(self, u: int) -> bool:
        return u != self.node and u in self.closed_neighborhood


class ProtocolViolation(Exception):
    """Raised (and caught by the runner, yielding a local reject) when a
    prover response is structurally malformed for the protocol."""


class Prover(ABC):
    """A prover strategy.  Sees everything: the instance, all
    challenges sent so far, and its own previous responses."""

    #: The :class:`~repro.core.context.InstanceContext` of the batch this
    #: prover is running in, bound by the runner before each execution.
    context = None

    @abstractmethod
    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Any]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        """Produce this Merlin round's response.

        ``randomness[r][v]`` is node v's challenge from Arthur round r
        (only rounds before ``round_idx`` are present);
        ``own_messages[r][v]`` are this prover's earlier responses.
        Must return a message dict for *every* vertex.
        """

    def reset(self) -> None:
        """Hook for stateful provers; called once per execution."""

    def batch_plan(self, context) -> Optional[Mapping[str, Any]]:
        """Opt-in hook for the numpy batch engine (``engine="numpy"``).

        A prover whose whole strategy is a deterministic function of the
        instance may describe it here — e.g. the Sym provers return
        ``{"rho": ..., "root": ...}`` — so a trial kernel
        (:mod:`repro.core.kernels`) can replay thousands of trials
        without calling :meth:`respond`.  The default ``None`` means
        "no batchable description": the runner silently falls back to
        the per-trial reference engine, which is always correct.
        Challenge-adaptive or randomized provers must not override this.
        """
        return None

    def bind_context(self, context) -> None:
        """Attach the batch's per-instance cache (called by the runner).

        The context is structural and randomness-free, so binding the
        same one across trials — or rebinding a different one — cannot
        carry execution state between runs.
        """
        self.context = context

    def acquire_context(self, instance: Instance):
        """The bound context for ``instance``, or a fresh private one.

        Provers call this inside ``respond`` so they work identically
        whether the runner batched them (warm shared cache) or they run
        standalone (cold private cache).  A bound context for a
        *different* instance is ignored, never misused.
        """
        ctx = self.context
        if ctx is not None and ctx.instance is instance:
            return ctx
        from .context import InstanceContext
        ctx = InstanceContext(instance)
        self.context = ctx
        return ctx


class Protocol(ABC):
    """An interactive distributed proof protocol.

    Subclasses define the round pattern, the challenge distribution and
    cost of Arthur rounds, the field structure and cost of Merlin
    rounds, the per-node decision function, and an honest prover.
    """

    #: Human-readable protocol name.
    name: str = "protocol"
    #: Round pattern, e.g. ``"MAM"`` for dMAM.
    pattern: str = PATTERN_DAM

    # -- model requirements ------------------------------------------------

    @property
    def requires_connected(self) -> bool:
        """Spanning-tree-based protocols need a connected network."""
        return True

    def validate_instance(self, instance: Instance) -> None:
        """Raise ``ValueError`` if the instance doesn't fit the protocol."""
        if self.requires_connected and not instance.graph.is_connected():
            raise ValueError(
                f"{self.name} requires a connected network graph")

    # -- Arthur rounds -----------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> Any:
        """Sample node ``v``'s challenge for Arthur round ``round_idx``.

        Default: no challenge content (protocols with Arthur rounds
        override).  The value must not depend on anything but public
        parameters and fresh randomness.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has an Arthur round but does not "
            "implement arthur_value")

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        """Bits each node sends the prover in this Arthur round."""
        raise NotImplementedError(
            f"{type(self).__name__} has an Arthur round but does not "
            "implement arthur_bits")

    # -- Merlin rounds -----------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        """Fields of this Merlin round that are broadcast-checked."""
        return frozenset()

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        """All fields the prover must supply in this Merlin round."""
        return frozenset()

    @abstractmethod
    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        """Size in bits of one node's prover message for this round."""

    # -- verdict -----------------------------------------------------------

    @abstractmethod
    def decide(self, view: LocalView) -> bool:
        """Node-local decision (True = accept).

        May raise :class:`ProtocolViolation` (or ``KeyError`` /
        ``TypeError`` / ``ValueError`` on malformed prover data); the
        runner converts any of those into a local reject, so provers
        cannot gain anything by sending garbage.
        """

    @abstractmethod
    def honest_prover(self) -> Prover:
        """The prover used to establish completeness on YES instances."""

    # -- introspection -----------------------------------------------------

    @property
    def num_rounds(self) -> int:
        return len(self.pattern)

    def merlin_round_indices(self) -> List[int]:
        return [i for i, kind in enumerate(self.pattern)
                if kind == ROUND_MERLIN]

    def arthur_round_indices(self) -> List[int]:
        return [i for i, kind in enumerate(self.pattern)
                if kind == ROUND_ARTHUR]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} pattern={self.pattern}>"


def sequence_field(message: NodeMessage, name: str) -> Tuple[Any, ...]:
    """Read a sequence-valued message field defensively.

    ``merlin_bits`` runs *before* ``decide``, so it sees arbitrary
    prover data without the runner's reject-on-exception shield; a
    malformed field (an int where a tuple belongs) must cost 0 bits,
    not crash the accounting.  ``decide`` still rejects the message.
    """
    value = message.get(name, ())
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return ()


def uint_fits(value: Any, width: int) -> bool:
    """Whether ``value`` is wire-encodable as an unsigned ``width``-bit
    integer.

    This is the single well-formedness rule shared by the cost model
    and the :mod:`repro.netsim` codec: a field (or field element) is
    charged its declared width exactly when it would fit on the wire,
    and costs 0 bits otherwise (the ``sequence_field`` convention,
    applied uniformly).  ``bool`` is excluded even though it is an
    ``int`` subtype: ``True`` must round-trip as ``True``, not ``1``,
    for transcripts to replay bit-identically.
    """
    return (isinstance(value, int) and not isinstance(value, bool)
            and width >= 0 and 0 <= value < (1 << width))


def uint_tuple_fits(value: Any, length: int, width: int) -> bool:
    """Whether ``value`` is a ``length``-tuple of ``width``-bit uints.

    Lists are rejected: ``(1, 2)`` and ``[1, 2]`` are distinct prover
    messages (decision functions ``isinstance``-check tuples), so only
    the tuple form is wire-encodable.
    """
    return (isinstance(value, tuple) and len(value) == length
            and all(uint_fits(item, width) for item in value))


def field_cost(message: NodeMessage, name: str, width: int) -> int:
    """Charge of one fixed-width uint field.

    ``width`` bits if the field is present and wire-encodable
    (:func:`uint_fits`), else 0 — malformed or missing fields ride the
    codec's escape lane and must cost nothing.
    """
    return width if uint_fits(message.get(name), width) else 0


def tuple_field_cost(message: NodeMessage, name: str, length: int,
                     width: int) -> int:
    """Charge of one fixed-shape uint-tuple field (0 if malformed)."""
    if uint_tuple_fits(message.get(name), length, width):
        return length * width
    return 0


def bits_for_identifier(n: int) -> int:
    """Bits to name one of ``n`` values (at least 1)."""
    return max(1, (max(n, 1) - 1).bit_length())


def bits_for_value(p: int) -> int:
    """Bits to transmit an element of ``[0, p)``."""
    return bits_for_identifier(p)
