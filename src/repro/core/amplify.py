"""Amplification for distributed interactive proofs.

Two tools live here:

* **Exact binomial arithmetic** for threshold amplification *inside* a
  protocol (the GNI protocol repeats the Goldwasser–Sipser estimation
  t times and has the root count successes against a threshold; this
  is the only sound way to amplify a two-sided gap in the distributed
  setting — see the GNI module docstring).

* **AND-amplification across independent executions** for protocols
  with *perfect completeness* (both Sym protocols and DSym): running k
  independent copies and accepting iff every copy accepts keeps
  completeness at 1 and drives soundness error from s to s^k.  For
  public-coin protocols the per-copy optimum factorizes across copies
  because a prover's response in copy j only influences copy j, so the
  bound is exact, not just a union bound.

Note the trap this module deliberately avoids: per-node *threshold*
voting across copies ("node v accepts iff it accepted ≥ τk copies")
is NOT sound in the distributed setting — a cheating prover can rotate
which node rejects across copies so every individual node stays above
threshold while no copy is globally accepted.  Threshold amplification
must aggregate globally-verified successes (as GNI's root does), and
AND-amplification is the safe general-purpose tool.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, FrozenSet, List, Mapping, Tuple

from .model import Instance, LocalView, NodeMessage, Protocol, Prover

# ----------------------------------------------------------------------
# Exact binomial arithmetic
# ----------------------------------------------------------------------


def binomial_pmf(t: int, p: float, k: int) -> float:
    """Pr[Binomial(t, p) = k]."""
    if not 0 <= k <= t:
        return 0.0
    if p <= 0.0:
        return 1.0 if k == 0 else 0.0
    if p >= 1.0:
        return 1.0 if k == t else 0.0
    log_pmf = (math.lgamma(t + 1) - math.lgamma(k + 1)
               - math.lgamma(t - k + 1)
               + k * math.log(p) + (t - k) * math.log(1.0 - p))
    return math.exp(log_pmf)


def binomial_tail(t: int, p: float, k: int) -> float:
    """Pr[Binomial(t, p) >= k], computed exactly (summed pmf)."""
    if k <= 0:
        return 1.0
    if k > t:
        return 0.0
    return min(1.0, sum(binomial_pmf(t, p, j) for j in range(k, t + 1)))


def binomial_cdf(t: int, p: float, k: int) -> float:
    """Pr[Binomial(t, p) <= k], computed exactly (summed pmf)."""
    if k < 0:
        return 0.0
    if k >= t:
        return 1.0
    return max(0.0, 1.0 - binomial_tail(t, p, k + 1))


def clopper_pearson_upper(accepted: int, trials: int,
                          alpha: float = 0.01) -> float:
    """Exact one-sided upper confidence bound on a binomial proportion.

    The Clopper–Pearson construction: the smallest acceptance
    probability ``p`` that a one-sided level-``alpha`` test would
    reject given ``accepted`` successes in ``trials`` — i.e. the
    largest ``p`` with ``Pr[Binomial(trials, p) <= accepted] > alpha``,
    located by bisection on the exact binomial CDF.  With probability
    ≥ 1 − ``alpha`` over the trials, the true probability is below the
    returned bound.  Unlike the Wilson interval this is a guaranteed
    (conservative) coverage statement, which is what a soundness
    *certificate* needs.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if trials <= 0:
        return 1.0
    if not 0 <= accepted <= trials:
        raise ValueError("need 0 <= accepted <= trials")
    if accepted >= trials:
        return 1.0
    lo, hi = accepted / trials, 1.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if binomial_cdf(trials, mid, accepted) > alpha:
            lo = mid
        else:
            hi = mid
    return hi


def clopper_pearson_lower(accepted: int, trials: int,
                          alpha: float = 0.01) -> float:
    """Exact one-sided lower confidence bound (Clopper–Pearson).

    The mirror of :func:`clopper_pearson_upper`: the largest ``p``
    with ``Pr[Binomial(trials, p) >= accepted] < alpha``.  Used for
    completeness certificates (honest acceptance provably above the
    bound with confidence 1 − ``alpha``).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if trials <= 0 or accepted <= 0:
        return 0.0
    if accepted > trials:
        raise ValueError("need 0 <= accepted <= trials")
    lo, hi = 0.0, accepted / trials
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if binomial_tail(trials, mid, accepted) < alpha:
            lo = mid
        else:
            hi = mid
    return lo


def threshold_guarantees(t: int, threshold: int, p_yes: float,
                         p_no: float) -> Tuple[float, float]:
    """(completeness, soundness error) of a t-repetition threshold test.

    With per-repetition success probability ≥ ``p_yes`` on YES
    instances and ≤ ``p_no`` on NO instances, accepting iff ≥
    ``threshold`` repetitions succeed yields completeness ≥ the first
    value and soundness error ≤ the second.
    """
    completeness = binomial_tail(t, p_yes, threshold)
    soundness_error = binomial_tail(t, p_no, threshold)
    return completeness, soundness_error


def choose_threshold(t: int, p_yes: float, p_no: float) -> int:
    """The threshold minimizing max(1 - completeness, soundness error)."""
    if p_yes <= p_no:
        raise ValueError("amplification needs p_yes > p_no")
    best_k = 1
    best_err = float("inf")
    for k in range(1, t + 1):
        completeness, soundness = threshold_guarantees(t, k, p_yes, p_no)
        err = max(1.0 - completeness, soundness)
        if err < best_err:
            best_err = err
            best_k = k
    return best_k


def repetitions_for_gap(p_yes: float, p_no: float,
                        target_error: float = 1.0 / 3.0,
                        max_t: int = 100_000) -> Tuple[int, int]:
    """The smallest (t, threshold) achieving the 2/3–1/3 guarantee.

    Returns the number of repetitions and the success threshold such
    that completeness ≥ 1 − target_error and soundness ≤ target_error.
    """
    if p_yes <= p_no:
        raise ValueError("amplification needs p_yes > p_no")
    t = 1
    while t <= max_t:
        k = choose_threshold(t, p_yes, p_no)
        completeness, soundness = threshold_guarantees(t, k, p_yes, p_no)
        if completeness >= 1.0 - target_error and soundness <= target_error:
            return t, k
        t += 1 if t < 64 else max(1, t // 16)
    raise RuntimeError(f"no repetition count up to {max_t} closes the gap "
                       f"({p_yes} vs {p_no})")


# ----------------------------------------------------------------------
# AND-amplification across independent copies
# ----------------------------------------------------------------------


class AndAmplifiedProtocol(Protocol):
    """k independent copies of a base protocol; accept iff all accept.

    Every round of the wrapper carries a tuple of the per-copy values:
    Arthur challenges are sampled independently per copy, and Merlin
    fields become ``field -> (value_copy_0, ..., value_copy_{k-1})``.
    Broadcast fields stay broadcast (a tuple agrees iff all components
    agree, so per-copy broadcast checking is preserved exactly).
    """

    def __init__(self, base: Protocol, copies: int) -> None:
        if copies < 1:
            raise ValueError("need at least one copy")
        self.base = base
        self.copies = copies
        self.name = f"{base.name}-x{copies}"
        self.pattern = base.pattern

    @property
    def requires_connected(self) -> bool:
        return self.base.requires_connected

    def validate_instance(self, instance: Instance) -> None:
        self.base.validate_instance(instance)

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> Tuple[Any, ...]:
        return tuple(self.base.arthur_value(instance, round_idx, v, rng)
                     for _ in range(self.copies))

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        return self.copies * self.base.arthur_bits(instance, round_idx)

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return self.base.broadcast_fields(round_idx)

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        return self.base.merlin_fields(round_idx)

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        total = 0
        for copy in range(self.copies):
            sliced = {name: values[copy] for name, values in message.items()}
            total += self.base.merlin_bits(instance, round_idx, sliced)
        return total

    def decide(self, view: LocalView) -> bool:
        return all(self.base.decide(self._slice_view(view, copy))
                   for copy in range(self.copies))

    def honest_prover(self) -> Prover:
        return _PerCopyProver(self,
                              [self.base.honest_prover()
                               for _ in range(self.copies)])

    def amplified_prover(self, provers: List[Prover]) -> Prover:
        """Wrap one base-protocol prover per copy (e.g. cheaters)."""
        if len(provers) != self.copies:
            raise ValueError("need exactly one prover per copy")
        return _PerCopyProver(self, provers)

    def _slice_view(self, view: LocalView, copy: int) -> LocalView:
        randomness = {
            r: {u: value[copy] for u, value in per_node.items()}
            for r, per_node in view.randomness.items()
        }
        messages = {
            r: {u: {name: values[copy] for name, values in msg.items()}
                for u, msg in per_node.items()}
            for r, per_node in view.messages.items()
        }
        return LocalView(
            node=view.node,
            n=view.n,
            closed_neighborhood=view.closed_neighborhood,
            node_input=view.node_input,
            randomness=randomness,
            messages=messages,
        )


class _PerCopyProver(Prover):
    """Runs an independent base-protocol prover inside each copy."""

    def __init__(self, wrapper: AndAmplifiedProtocol,
                 provers: List[Prover]) -> None:
        self.wrapper = wrapper
        self.provers = provers

    def reset(self) -> None:
        for prover in self.provers:
            prover.reset()

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Any]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        n = instance.n
        per_copy_responses = []
        for copy, prover in enumerate(self.provers):
            sliced_randomness = {
                r: {v: value[copy] for v, value in per_node.items()}
                for r, per_node in randomness.items()
            }
            sliced_messages = {
                r: {v: {name: values[copy]
                        for name, values in msg.items()}
                    for v, msg in per_node.items()}
                for r, per_node in own_messages.items()
            }
            per_copy_responses.append(prover.respond(
                instance, round_idx, sliced_randomness, sliced_messages, rng))
        merged: Dict[int, NodeMessage] = {}
        for v in range(n):
            fields = per_copy_responses[0][v].keys()
            merged[v] = {
                name: tuple(response[v][name]
                            for response in per_copy_responses)
                for name in fields
            }
        return merged
