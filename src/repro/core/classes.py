"""Class-membership verification: is a protocol a dAM[ℓ] protocol?

Definition 2 asks for three things, and this module checks each
empirically against instance families:

* **completeness** — some prover (the protocol's honest one) makes all
  nodes accept with probability > 2/3 on every YES instance;
* **soundness** — no prover exceeds 1/3 on any NO instance.  True
  universal quantification over provers is not testable; we test the
  protocol-specific *optimal* cheaters (whose optimality is argued in
  their docstrings) plus the generic adversaries, and we report the
  analytic bound alongside;
* **cost** — the maximum per-node communication, measured bit-exactly
  by the runner, compared against the theorem's budget function.

The report objects returned here are what EXPERIMENTS.md tabulates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .context import InstanceContext
from .model import Instance, Protocol, Prover
from .runner import AcceptanceEstimate, estimate_acceptance, run_protocol


@dataclass
class InstanceReport:
    """Verdict for one instance."""

    label: str
    is_yes: bool
    estimate: AcceptanceEstimate
    max_cost_bits: int

    @property
    def meets_definition(self) -> bool:
        """> 2/3 acceptance on YES, < 1/3 on NO (point estimates)."""
        if self.is_yes:
            return self.estimate.probability > 2.0 / 3.0
        return self.estimate.probability < 1.0 / 3.0


@dataclass
class ClassMembershipReport:
    """Aggregated empirical check of Definition 2 for one protocol."""

    protocol_name: str
    instances: List[InstanceReport] = field(default_factory=list)

    @property
    def all_pass(self) -> bool:
        return all(r.meets_definition for r in self.instances)

    @property
    def max_cost_bits(self) -> int:
        return max((r.max_cost_bits for r in self.instances), default=0)

    def worst_yes(self) -> Optional[InstanceReport]:
        yes = [r for r in self.instances if r.is_yes]
        return min(yes, key=lambda r: r.estimate.probability, default=None)

    def worst_no(self) -> Optional[InstanceReport]:
        no = [r for r in self.instances if not r.is_yes]
        return max(no, key=lambda r: r.estimate.probability, default=None)

    def summary_lines(self) -> List[str]:
        lines = [f"protocol {self.protocol_name}: "
                 f"max per-node cost {self.max_cost_bits} bits, "
                 f"{'PASS' if self.all_pass else 'FAIL'}"]
        for r in self.instances:
            kind = "YES" if r.is_yes else "NO "
            lines.append(
                f"  [{kind}] {r.label}: accept {r.estimate.probability:.3f} "
                f"(cost {r.max_cost_bits} bits)"
                f"{'' if r.meets_definition else '  <-- VIOLATION'}")
        return lines


def check_completeness(protocol: Protocol, instances: Sequence[Tuple[str, Instance]],
                       trials: int, rng: random.Random,
                       prover: Optional[Prover] = None,
                       workers: int = 1) -> ClassMembershipReport:
    """Estimate acceptance with the honest prover on YES instances.

    One :class:`InstanceContext` is built per instance and shared
    across the trials (and the cost run); ``workers > 1`` parallelizes
    each estimate without changing its value.
    """
    report = ClassMembershipReport(protocol_name=protocol.name)
    for label, instance in instances:
        current = prover or protocol.honest_prover()
        context = InstanceContext(instance, protocol)
        estimate = estimate_acceptance(protocol, instance, current, trials,
                                       rng, workers=workers, context=context)
        cost = run_protocol(protocol, instance, current,
                            random.Random(rng.random()),
                            context=context).max_cost_bits
        report.instances.append(InstanceReport(
            label=label, is_yes=True, estimate=estimate,
            max_cost_bits=cost))
    return report


def check_soundness(protocol: Protocol,
                    instances: Sequence[Tuple[str, Instance]],
                    adversaries: Sequence[Callable[[], Prover]],
                    trials: int, rng: random.Random,
                    workers: int = 1) -> ClassMembershipReport:
    """Estimate the *best observed* adversarial acceptance on NO instances.

    For each instance, every adversary factory is tried and the highest
    acceptance estimate is recorded — the empirical stand-in for the
    ``∀P`` in Definition 2.  As in :func:`check_completeness`, one
    shared context per instance (contexts hold only randomness-free
    instance structure, so sharing across adversaries is sound).
    """
    report = ClassMembershipReport(protocol_name=protocol.name)
    for label, instance in instances:
        best: Optional[AcceptanceEstimate] = None
        worst_cost = 0
        context = InstanceContext(instance, protocol)
        for make_adversary in adversaries:
            adversary = make_adversary()
            estimate = estimate_acceptance(protocol, instance, adversary,
                                           trials, rng, workers=workers,
                                           context=context)
            if best is None or estimate.probability > best.probability:
                best = estimate
            worst_cost = max(worst_cost, run_protocol(
                protocol, instance, make_adversary(),
                random.Random(rng.random()),
                context=context).max_cost_bits)
        assert best is not None, "need at least one adversary"
        report.instances.append(InstanceReport(
            label=label, is_yes=False, estimate=best,
            max_cost_bits=worst_cost))
    return report


@dataclass
class CostScalingRow:
    """Measured per-node cost at one network size."""

    n: int
    max_cost_bits: int

    def normalized(self, budget: Callable[[int], float]) -> float:
        """Cost divided by the theorem's budget function at this n."""
        return self.max_cost_bits / budget(self.n)


def measure_cost_scaling(make_protocol: Callable[[int], Protocol],
                         make_instance: Callable[[int], Instance],
                         sizes: Iterable[int],
                         rng: random.Random) -> List[CostScalingRow]:
    """Per-node cost across network sizes (one honest run per size).

    The returned rows, normalized by the claimed budget (log n,
    n log n, n², ...), should be bounded by a constant — that is the
    empirical content of each theorem's O(·) claim.
    """
    rows = []
    for n in sizes:
        protocol = make_protocol(n)
        instance = make_instance(n)
        result = run_protocol(protocol, instance, protocol.honest_prover(),
                              rng)
        rows.append(CostScalingRow(n=instance.n,
                                   max_cost_bits=result.max_cost_bits))
    return rows
