"""The interactive distributed proof model, execution engine,
amplification and class-membership checking."""

from .amplify import (AndAmplifiedProtocol, binomial_cdf, binomial_pmf,
                      binomial_tail, choose_threshold,
                      clopper_pearson_lower, clopper_pearson_upper,
                      repetitions_for_gap, threshold_guarantees)
from .classes import (ClassMembershipReport, CostScalingRow, InstanceReport,
                      check_completeness, check_soundness,
                      measure_cost_scaling)
from .context import InstanceContext
from .model import (Instance, LocalView, NodeMessage, PATTERN_DAM,
                    PATTERN_DAMAM, PATTERN_DMAM, PATTERN_DNP, Protocol,
                    ProtocolViolation, Prover, ROUND_ARTHUR, ROUND_MERLIN,
                    bits_for_identifier, bits_for_value)
from .provers import (RandomGarbageProver, ReplayProver, TamperingProver,
                      record_responses)
from .report import (cost_breakdown, describe_rounds,
                     execution_to_jsonable, render_certification,
                     render_execution, render_solver_checks)
from .runner import (AcceptanceEstimate, ExecutionResult, Transcript,
                     decide_transcript, estimate_acceptance, measure_cost,
                     run_protocol, run_trials)

__all__ = [name for name in dir() if not name.startswith("_")]
