"""Execution engine: run a protocol against a prover on an instance.

The runner is the *trusted base* of every experiment: it samples
Arthur challenges, relays prover responses, builds each node's
:class:`~repro.core.model.LocalView` (enforcing locality by
construction), applies the automatic broadcast-consistency checks, and
accounts per-node communication bits exactly as the paper counts them
(challenge bits included for upper bounds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .model import (Instance, LocalView, NodeMessage, Protocol,
                    ProtocolViolation, Prover, ROUND_ARTHUR, ROUND_MERLIN)

#: Exception types from a decision function that mean "the prover's
#: response was malformed" and therefore a local reject — never a crash.
_DECISION_ERRORS = (ProtocolViolation, KeyError, TypeError, ValueError,
                    IndexError, AttributeError)


@dataclass
class Transcript:
    """Everything that happened in one execution."""

    #: round index -> {v: challenge value} (Arthur rounds only).
    randomness: Dict[int, Dict[int, Any]] = field(default_factory=dict)
    #: round index -> {v: {field: value}} (Merlin rounds only).
    messages: Dict[int, Dict[int, NodeMessage]] = field(default_factory=dict)


@dataclass
class ExecutionResult:
    """Outcome of one protocol execution."""

    accepted: bool
    decisions: Dict[int, bool]
    transcript: Transcript
    #: per-node communication with the prover, in bits.
    node_cost_bits: Dict[int, int]

    @property
    def max_cost_bits(self) -> int:
        """The paper's complexity measure: the worst node's total bits."""
        return max(self.node_cost_bits.values()) if self.node_cost_bits else 0

    def rejecting_nodes(self) -> List[int]:
        return sorted(v for v, ok in self.decisions.items() if not ok)


def _local_view(protocol: Protocol, instance: Instance, v: int,
                transcript: Transcript) -> LocalView:
    closed = instance.graph.closed_neighborhood(v)
    closed_set = set(closed)
    randomness = {
        r: {u: vals[u] for u in closed_set if u in vals}
        for r, vals in transcript.randomness.items()
    }
    messages = {
        r: {u: msgs[u] for u in closed_set if u in msgs}
        for r, msgs in transcript.messages.items()
    }
    return LocalView(
        node=v,
        n=instance.n,
        closed_neighborhood=closed,
        node_input=instance.input_of(v),
        randomness=randomness,
        messages=messages,
    )


def _broadcast_consistent(protocol: Protocol, view: LocalView) -> bool:
    """The automatic check: every broadcast field must agree across the
    node's closed neighborhood.  A missing message or field counts as a
    mismatch (the prover violated the protocol)."""
    for round_idx in protocol.merlin_round_indices():
        fields = protocol.broadcast_fields(round_idx)
        if not fields:
            continue
        per_node = view.messages.get(round_idx)
        if per_node is None:
            return False
        own = per_node.get(view.node)
        if own is None:
            return False
        for name in fields:
            if name not in own:
                return False
            for u in view.closed_neighborhood:
                other = per_node.get(u)
                if other is None or other.get(name) != own[name]:
                    return False
    return True


def _decide_node(protocol: Protocol, view: LocalView) -> bool:
    if not _broadcast_consistent(protocol, view):
        return False
    try:
        return bool(protocol.decide(view))
    except _DECISION_ERRORS:
        return False


def run_protocol(protocol: Protocol, instance: Instance, prover: Prover,
                 rng: random.Random) -> ExecutionResult:
    """Execute one full run and return the verdict, transcript and cost.

    Raises ``ValueError`` if the instance violates the protocol's model
    requirements (e.g. a disconnected network for a spanning-tree
    protocol) and ``ProtocolViolation`` if the prover fails to answer
    every node (messages with *wrong content* never raise — they lead
    to local rejects — but a prover that breaks the communication
    pattern itself is a harness bug, not a cheating strategy).
    """
    protocol.validate_instance(instance)
    prover.reset()
    graph = instance.graph
    transcript = Transcript()
    node_cost = {v: 0 for v in graph.vertices}

    for round_idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            bits = protocol.arthur_bits(instance, round_idx)
            values = {v: protocol.arthur_value(instance, round_idx, v, rng)
                      for v in graph.vertices}
            transcript.randomness[round_idx] = values
            for v in graph.vertices:
                node_cost[v] += bits
        elif kind == ROUND_MERLIN:
            response = prover.respond(
                instance, round_idx,
                transcript.randomness, transcript.messages, rng)
            missing = [v for v in graph.vertices if v not in response]
            if missing:
                raise ProtocolViolation(
                    f"prover left nodes without a round-{round_idx} "
                    f"message: {missing[:5]}")
            transcript.messages[round_idx] = {
                v: dict(response[v]) for v in graph.vertices}
            for v in graph.vertices:
                node_cost[v] += protocol.merlin_bits(
                    instance, round_idx, transcript.messages[round_idx][v])
        else:  # pragma: no cover - patterns are library-defined
            raise ValueError(f"unknown round kind {kind!r}")

    decisions = {}
    for v in graph.vertices:
        view = _local_view(protocol, instance, v, transcript)
        decisions[v] = _decide_node(protocol, view)

    return ExecutionResult(
        accepted=all(decisions.values()),
        decisions=decisions,
        transcript=transcript,
        node_cost_bits=node_cost,
    )


@dataclass
class AcceptanceEstimate:
    """Monte-Carlo acceptance probability with a confidence interval."""

    accepted: int
    trials: int

    @property
    def probability(self) -> float:
        return self.accepted / self.trials if self.trials else 0.0

    def wilson_interval(self, z: float = 2.576) -> Tuple[float, float]:
        """Wilson score interval (default z: 99% confidence)."""
        if self.trials == 0:
            return (0.0, 1.0)
        n = self.trials
        p = self.probability
        denom = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = z * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5) / denom
        return (max(0.0, center - half), min(1.0, center + half))

    def __repr__(self) -> str:
        lo, hi = self.wilson_interval()
        return (f"AcceptanceEstimate({self.probability:.3f} "
                f"[{lo:.3f}, {hi:.3f}], trials={self.trials})")


def estimate_acceptance(protocol: Protocol, instance: Instance,
                        prover: Prover, trials: int,
                        rng: random.Random) -> AcceptanceEstimate:
    """Estimate Pr[all nodes accept] over ``trials`` independent runs."""
    accepted = sum(
        run_protocol(protocol, instance, prover, rng).accepted
        for _ in range(trials))
    return AcceptanceEstimate(accepted=accepted, trials=trials)


def measure_cost(protocol: Protocol, instance: Instance,
                 prover: Optional[Prover] = None,
                 rng: Optional[random.Random] = None) -> int:
    """Per-node communication (bits) of one honest run — the paper's
    cost measure for upper bounds."""
    prover = prover or protocol.honest_prover()
    rng = rng or random.Random(0)
    return run_protocol(protocol, instance, prover, rng).max_cost_bits
