"""Execution engine: run a protocol against a prover on an instance.

The runner is the *trusted base* of every experiment: it samples
Arthur challenges, relays prover responses, builds each node's
:class:`~repro.core.model.LocalView` (enforcing locality by
construction), applies the automatic broadcast-consistency checks, and
accounts per-node communication bits exactly as the paper counts them
(challenge bits included for upper bounds).

Batched execution
-----------------
Monte-Carlo estimation is the repo's hot path, so the runner offers a
batched engine on top of single executions:

* an :class:`~repro.core.context.InstanceContext` caches the static
  per-instance structure (neighborhoods, spanning trees, automorphism
  witnesses) across the trials of a batch;
* :func:`run_trials` executes ``trials`` independent runs with
  **deterministic per-trial seed streams** — trial ``t`` always runs
  on ``random.Random(seed + t)`` — so serial and parallel execution
  produce bit-identical :class:`AcceptanceEstimate`s;
* acceptance is an AND over nodes, so batch trials short-circuit the
  decision loop on the first rejecting node (the rng stream is not
  touched after the rounds, so short-circuiting cannot perturb later
  trials);
* ``workers > 1`` fans trials out over a fork-based
  ``multiprocessing`` pool (falling back to serial execution where
  ``fork`` is unavailable);
* ``engine="numpy"`` replays whole batches through the vectorized
  trial kernels of :mod:`repro.core.kernels` when one models the
  (protocol, prover) pair — byte-identical outputs (estimates, obs
  spans, metrics) to the reference python engine, cross-checked on
  trial 0 of every batch, with automatic fallback when numpy is absent
  or no kernel matches.

Both :class:`ExecutionResult` and :class:`AcceptanceEstimate` carry
lightweight instrumentation (per-phase wall time and call counters,
excluded from equality) so speedups are measurable, not anecdotal.
When an observability session (:mod:`repro.obs`) is active,
:func:`run_trials` additionally records per-trial spans and publishes
the batch's counters and timers under the ``runner/*`` namespace; with
no session installed the instrumentation collapses to one global read
per batch (the ``bench_obs`` overhead gate pins this under 3%).
"""

from __future__ import annotations

import random
import time
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..obs.session import (Collected, active, collecting,
                           export_collected, merge_collected, use_session)
from .context import InstanceContext
from .model import (Instance, LocalView, NodeMessage, Protocol,
                    ProtocolViolation, Prover, ROUND_ARTHUR, ROUND_MERLIN)

if TYPE_CHECKING:  # pragma: no cover - typing only (lazy at runtime)
    from .kernels.base import TrialKernel

#: Engines :func:`run_trials` accepts.  "python" is the per-trial
#: reference implementation; "numpy" batches trials through the
#: vectorized kernels of :mod:`repro.core.kernels` where one matches
#: the (protocol, prover) pair, falling back to "python" otherwise.
ENGINES = ("python", "numpy")

#: Exception types from a decision function that mean "the prover's
#: response was malformed" and therefore a local reject — never a crash.
_DECISION_ERRORS = (ProtocolViolation, KeyError, TypeError, ValueError,
                    IndexError, AttributeError)


@dataclass
class Transcript:
    """Everything that happened in one execution."""

    #: round index -> {v: challenge value} (Arthur rounds only).
    randomness: Dict[int, Dict[int, Any]] = field(default_factory=dict)
    #: round index -> {v: {field: value}} (Merlin rounds only).
    messages: Dict[int, Dict[int, NodeMessage]] = field(default_factory=dict)


@dataclass
class ExecutionResult:
    """Outcome of one protocol execution."""

    accepted: bool
    decisions: Dict[int, bool]
    transcript: Transcript
    #: per-node communication with the prover, in bits.
    node_cost_bits: Dict[int, int]
    #: wall time per phase ("arthur", "merlin", "decide"), seconds.
    phase_seconds: Dict[str, float] = field(default_factory=dict,
                                            compare=False)
    #: decision functions actually invoked (< n when short-circuited).
    decide_calls: int = field(default=0, compare=False)

    @property
    def max_cost_bits(self) -> int:
        """The paper's complexity measure: the worst node's total bits."""
        return max(self.node_cost_bits.values()) if self.node_cost_bits else 0

    def rejecting_nodes(self) -> List[int]:
        return sorted(v for v, ok in self.decisions.items() if not ok)


def _local_view(protocol: Protocol, instance: Instance, v: int,
                transcript: Transcript) -> LocalView:
    """Single-node view construction (kept for callers outside the
    batched decision loop, e.g. report rendering)."""
    closed = instance.graph.closed_neighborhood(v)
    closed_set = set(closed)
    randomness = {
        r: {u: vals[u] for u in closed_set if u in vals}
        for r, vals in transcript.randomness.items()
    }
    messages = {
        r: {u: msgs[u] for u in closed_set if u in msgs}
        for r, msgs in transcript.messages.items()
    }
    return LocalView(
        node=v,
        n=instance.n,
        closed_neighborhood=closed,
        node_input=instance.input_of(v),
        randomness=randomness,
        messages=messages,
    )


def _broadcast_consistent(view: LocalView,
                          plan: Tuple[Tuple[int, Any], ...]) -> bool:
    """The automatic check: every broadcast field must agree across the
    node's closed neighborhood.  A missing message or field counts as a
    mismatch (the prover violated the protocol).  ``plan`` is the
    context-cached ``(round, broadcast fields)`` layout."""
    for round_idx, fields in plan:
        per_node = view.messages.get(round_idx)
        if per_node is None:
            return False
        own = per_node.get(view.node)
        if own is None:
            return False
        for name in fields:
            if name not in own:
                return False
            for u in view.closed_neighborhood:
                other = per_node.get(u)
                if other is None or other.get(name) != own[name]:
                    return False
    return True


def _decide_node(protocol: Protocol, view: LocalView,
                 plan: Tuple[Tuple[int, Any], ...]) -> bool:
    if not _broadcast_consistent(view, plan):
        return False
    try:
        return bool(protocol.decide(view))
    except _DECISION_ERRORS:
        return False


def _decide_all(protocol: Protocol, instance: Instance,
                transcript: Transcript, context: InstanceContext,
                stop_on_first_reject: bool) -> Tuple[bool, Dict[int, bool]]:
    """The decision phase: every node's verdict on a full transcript.

    Round slices are materialized once per transcript; each node's
    view then indexes them directly by its closed neighborhood (the
    caller filled every vertex, so no membership tests are needed).
    """
    plan = context.broadcast_plan(protocol)
    closed = context.closed_neighborhoods
    rand_rounds = tuple(transcript.randomness.items())
    msg_rounds = tuple(transcript.messages.items())
    n = instance.n

    accepted = True
    decisions: Dict[int, bool] = {}
    for v in instance.graph.vertices:
        closed_v = closed[v]
        view = LocalView(
            node=v,
            n=n,
            closed_neighborhood=closed_v,
            node_input=instance.input_of(v),
            randomness={r: {u: vals[u] for u in closed_v}
                        for r, vals in rand_rounds},
            messages={r: {u: msgs[u] for u in closed_v}
                      for r, msgs in msg_rounds},
        )
        ok = _decide_node(protocol, view, plan)
        decisions[v] = ok
        if not ok:
            accepted = False
            if stop_on_first_reject:
                break
    return accepted, decisions


def decide_transcript(protocol: Protocol, instance: Instance,
                      transcript: Transcript, *,
                      context: Optional[InstanceContext] = None,
                      stop_on_first_reject: bool = True
                      ) -> Tuple[bool, Dict[int, bool]]:
    """Run only the decision phase on a fully-specified transcript.

    The transcript must carry a value for *every* vertex in each of its
    randomness and message rounds (as :func:`run_protocol` produces).
    This is the leaf evaluator of the exact game-tree solver in
    :mod:`repro.adversary`: the solver enumerates prover messages and
    challenge assignments symbolically, then scores each leaf through
    the very same broadcast checks and decision functions a real
    execution uses — so the exact value certifies the *implemented*
    protocol, not a hand-derived model of it.
    """
    if context is None:
        context = InstanceContext(instance, protocol)
    elif context.instance is not instance:
        raise ValueError("context was built for a different instance")
    context.ensure_validated(protocol)
    return _decide_all(protocol, instance, transcript, context,
                       stop_on_first_reject)


def run_protocol(protocol: Protocol, instance: Instance, prover: Prover,
                 rng: random.Random, *,
                 context: Optional[InstanceContext] = None,
                 stop_on_first_reject: bool = False) -> ExecutionResult:
    """Execute one full run and return the verdict, transcript and cost.

    ``context`` is an optional :class:`InstanceContext` for the
    ``(protocol, instance)`` pair; passing one across calls (as
    :func:`run_trials` does) reuses all static per-instance structure.
    A context built for a different instance raises ``ValueError``.

    With ``stop_on_first_reject=True`` the decision loop exits on the
    first rejecting node (acceptance is an AND, and node decisions
    never touch the rng), leaving ``decisions`` partial; the default
    decides every node, as the seed engine did.

    Raises ``ValueError`` if the instance violates the protocol's model
    requirements (e.g. a disconnected network for a spanning-tree
    protocol) and ``ProtocolViolation`` if the prover fails to answer
    every node (messages with *wrong content* never raise — they lead
    to local rejects — but a prover that breaks the communication
    pattern itself is a harness bug, not a cheating strategy).
    """
    if context is None:
        context = InstanceContext(instance, protocol)
    elif context.instance is not instance:
        raise ValueError("context was built for a different instance")
    context.ensure_validated(protocol)
    prover.reset()
    prover.bind_context(context)
    graph = instance.graph
    transcript = Transcript()
    node_cost = dict.fromkeys(graph.vertices, 0)
    phase = {"arthur": 0.0, "merlin": 0.0, "decide": 0.0}

    for round_idx, kind in enumerate(protocol.pattern):
        tick = time.perf_counter()
        if kind == ROUND_ARTHUR:
            bits = protocol.arthur_bits(instance, round_idx)
            values = {v: protocol.arthur_value(instance, round_idx, v, rng)
                      for v in graph.vertices}
            transcript.randomness[round_idx] = values
            for v in graph.vertices:
                node_cost[v] += bits
            phase["arthur"] += time.perf_counter() - tick
        elif kind == ROUND_MERLIN:
            response = prover.respond(
                instance, round_idx,
                transcript.randomness, transcript.messages, rng)
            missing = [v for v in graph.vertices if v not in response]
            if missing:
                raise ProtocolViolation(
                    f"prover left nodes without a round-{round_idx} "
                    f"message: {missing[:5]}")
            transcript.messages[round_idx] = {
                v: dict(response[v]) for v in graph.vertices}
            for v in graph.vertices:
                node_cost[v] += protocol.merlin_bits(
                    instance, round_idx, transcript.messages[round_idx][v])
            phase["merlin"] += time.perf_counter() - tick
        else:  # pragma: no cover - patterns are library-defined
            raise ValueError(f"unknown round kind {kind!r}")

    tick = time.perf_counter()
    accepted, decisions = _decide_all(protocol, instance, transcript,
                                      context, stop_on_first_reject)
    phase["decide"] = time.perf_counter() - tick

    return ExecutionResult(
        accepted=accepted,
        decisions=decisions,
        transcript=transcript,
        node_cost_bits=node_cost,
        phase_seconds=phase,
        decide_calls=len(decisions),
    )


@dataclass
class AcceptanceEstimate:
    """Monte-Carlo acceptance probability with a confidence interval.

    The instrumentation fields (everything after ``trials``) describe
    how the estimate was produced; they are excluded from equality so
    that bit-identical estimates compare equal regardless of wall time
    or worker count.
    """

    accepted: int
    trials: int
    #: wall time of the whole batch, seconds.
    elapsed_seconds: float = field(default=0.0, compare=False)
    #: per-phase wall time summed over trials (and workers).
    phase_seconds: Dict[str, float] = field(default_factory=dict,
                                            compare=False)
    #: decision functions invoked across the batch.
    decide_calls: int = field(default=0, compare=False)
    #: trials whose decision loop exited early on a reject.
    short_circuits: int = field(default=0, compare=False)
    #: worker processes used (1 = serial).
    workers: int = field(default=1, compare=False)
    #: engine that executed the batch ("python", or "numpy" when a
    #: vectorized kernel actually ran — a numpy request that fell back
    #: reports "python").  Excluded from equality like the rest of the
    #: provenance fields: engines are byte-equivalent by contract.
    engine: str = field(default="python", compare=False)
    #: whether ``elapsed_seconds``/``phase_seconds`` were measured.
    #: Hand-built estimates (tests, analytic tooling) leave this False,
    #: so a zero rate means "untimed", never "instantaneous".
    timed: bool = field(default=False, compare=False)

    @property
    def probability(self) -> float:
        return self.accepted / self.trials if self.trials else 0.0

    @property
    def trials_per_second(self) -> float:
        """Batch throughput (0.0 when the estimate was not timed)."""
        if not self.timed or self.elapsed_seconds <= 0.0:
            return 0.0
        return self.trials / self.elapsed_seconds

    def wilson_interval(self, z: float = 2.576) -> Tuple[float, float]:
        """Wilson score interval (default z: 99% confidence)."""
        if self.trials == 0:
            return (0.0, 1.0)
        n = self.trials
        p = self.probability
        denom = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = z * ((p * (1 - p) / n + z * z / (4 * n * n)) ** 0.5) / denom
        return (max(0.0, center - half), min(1.0, center + half))

    def clopper_pearson_upper(self, alpha: float = 0.01) -> float:
        """Exact one-sided upper bound on the acceptance probability
        (confidence 1 − ``alpha``).  Unlike the Wilson interval, the
        Clopper–Pearson bound has guaranteed coverage, so it is the
        one soundness certificates use."""
        from .amplify import clopper_pearson_upper
        return clopper_pearson_upper(self.accepted, self.trials, alpha)

    def clopper_pearson_lower(self, alpha: float = 0.01) -> float:
        """Exact one-sided lower bound on the acceptance probability
        (confidence 1 − ``alpha``) — the completeness-side mirror."""
        from .amplify import clopper_pearson_lower
        return clopper_pearson_lower(self.accepted, self.trials, alpha)

    def __repr__(self) -> str:
        lo, hi = self.wilson_interval()
        return (f"AcceptanceEstimate({self.probability:.3f} "
                f"[{lo:.3f}, {hi:.3f}], trials={self.trials})")


def _trial_batch(protocol: Protocol, instance: Instance, prover: Prover,
                 context: InstanceContext, seed: int, start: int,
                 count: int, stop_on_first_reject: bool
                 ) -> Tuple[int, int, int, Dict[str, float], Collected]:
    """Run trials ``start .. start+count-1`` of the stream; returns
    ``(accepted, decide_calls, short_circuits, phase_seconds,
    collected)``.

    When an observability session is active, every trial records a
    ``runner.trial`` span and the batch accumulates ``runner/*``
    metrics into a buffer session (:func:`repro.obs.session.collecting`)
    whose export is the ``collected`` element — the caller merges
    buffers in trial order, which makes parallel and serial traces
    byte-identical on the deterministic projection.  With observability
    off the buffer is None and the whole block below reduces to the
    bare trial loop.
    """
    n = instance.n
    accepted = 0
    decide_calls = 0
    short_circuits = 0
    proof_bits = 0
    phase = {"arthur": 0.0, "merlin": 0.0, "decide": 0.0}
    with collecting() as buf:
        for t in range(start, start + count):
            if buf is None:
                result = run_protocol(
                    protocol, instance, prover, random.Random(seed + t),
                    context=context,
                    stop_on_first_reject=stop_on_first_reject)
            else:
                with buf.span("runner.trial", trial=t) as span:
                    result = run_protocol(
                        protocol, instance, prover,
                        random.Random(seed + t), context=context,
                        stop_on_first_reject=stop_on_first_reject)
                    bits = sum(result.node_cost_bits.values())
                    proof_bits += bits
                    if span is not None:
                        span.set(accepted=result.accepted,
                                 decide_calls=result.decide_calls,
                                 max_cost_bits=result.max_cost_bits)
                        span.add("proof_bits", bits)
            accepted += result.accepted
            decide_calls += result.decide_calls
            short_circuits += (not result.accepted
                               and result.decide_calls < n)
            for key, value in result.phase_seconds.items():
                phase[key] += value
        if buf is not None and buf.metrics_enabled:
            metrics = buf.metrics
            metrics.counter("runner/trials").inc(count)
            metrics.counter("runner/accepted").inc(accepted)
            metrics.counter("runner/decide_calls").inc(decide_calls)
            metrics.counter("runner/short_circuits").inc(short_circuits)
            metrics.counter("runner/proof_bits").inc(proof_bits)
            for key, value in phase.items():
                metrics.timer(f"runner/seconds/{key}").inc(value)
        collected = export_collected(buf)
    return accepted, decide_calls, short_circuits, phase, collected


def _kernel_batch(kernel: "TrialKernel", seed: int, start: int, count: int,
                  stop_on_first_reject: bool
                  ) -> Tuple[int, int, int, Dict[str, float], Collected]:
    """The numpy engine's counterpart of :func:`_trial_batch`: one
    vectorized kernel call, then the *same* per-trial spans and batch
    metrics the reference loop records (all values converted to plain
    python ints/bools so the serialized traces stay byte-identical
    across engines)."""
    n = kernel.instance.n
    batch = kernel.run_batch(seed, start, count, stop_on_first_reject)
    accepted = int(batch.accepted.sum())
    decide_calls = int(batch.decide_calls.sum())
    short_circuits = int((~batch.accepted
                          & (batch.decide_calls < n)).sum())
    proof_bits = int(batch.proof_bits.sum())
    with collecting() as buf:
        if buf is not None:
            for i in range(count):
                with buf.span("runner.trial", trial=start + i) as span:
                    if span is not None:
                        bits = int(batch.proof_bits[i])
                        span.set(accepted=bool(batch.accepted[i]),
                                 decide_calls=int(batch.decide_calls[i]),
                                 max_cost_bits=int(batch.max_cost_bits[i]))
                        span.add("proof_bits", bits)
            if buf.metrics_enabled:
                metrics = buf.metrics
                metrics.counter("runner/trials").inc(count)
                metrics.counter("runner/accepted").inc(accepted)
                metrics.counter("runner/decide_calls").inc(decide_calls)
                metrics.counter("runner/short_circuits").inc(short_circuits)
                metrics.counter("runner/proof_bits").inc(proof_bits)
                for key, value in batch.phase_seconds.items():
                    metrics.timer(f"runner/seconds/{key}").inc(value)
        collected = export_collected(buf)
    return (accepted, decide_calls, short_circuits,
            dict(batch.phase_seconds), collected)


def _resolve_kernel(protocol: Protocol, instance: Instance, prover: Prover,
                    context: InstanceContext
                    ) -> Optional["TrialKernel"]:
    """The vectorized kernel for this triple, or None → reference
    engine.  A missing numpy is a one-warning automatic fallback, never
    an error: ``engine="numpy"`` is a request, not a requirement."""
    from .kernels import find_kernel, numpy_available
    if not numpy_available():
        warnings.warn(
            'run_trials(engine="numpy") requested but numpy is not '
            "installed; falling back to the python reference engine "
            "(pip install repro[fast] enables the batch kernels)",
            RuntimeWarning, stacklevel=3)
        return None
    prover.reset()
    prover.bind_context(context)
    return find_kernel(protocol, instance, prover, context)


def _verify_kernel(kernel: "TrialKernel", protocol: Protocol,
                   instance: Instance, prover: Prover,
                   context: InstanceContext, seed: int,
                   stop_on_first_reject: bool) -> None:
    """Cross-check trial 0 of the batch on both engines.

    Runs the reference engine with observability force-disabled (the
    kernel emits the batch's spans itself) and compares the complete
    ``ExecutionResult`` — verdict, per-node decisions, transcript and
    bit accounting.  Every ``run_trials(engine="numpy")`` call pays one
    reference trial for this; a disagreement raises
    :class:`~repro.core.kernels.base.KernelMismatch` instead of ever
    returning silently wrong estimates.
    """
    from .kernels.base import KernelMismatch
    with use_session(None):
        reference = run_protocol(
            protocol, instance, prover, random.Random(seed),
            context=context, stop_on_first_reject=stop_on_first_reject)
    candidate = kernel.execution_result(seed, 0, stop_on_first_reject)
    if candidate != reference or (candidate.decide_calls
                                  != reference.decide_calls):
        raise KernelMismatch(
            f"{type(kernel).__name__} disagrees with the reference "
            f"engine on trial 0 (seed {seed}): kernel accepted="
            f"{candidate.accepted} decide_calls={candidate.decide_calls}, "
            f"reference accepted={reference.accepted} "
            f"decide_calls={reference.decide_calls}")


#: Fork-inherited state for pool workers — set by :func:`run_trials`
#: immediately before forking so children receive the warm context and
#: the prover without any pickling (closures inside protocols, e.g.
#: DSym's structure check, are not picklable).  The final element is
#: the resolved kernel (None = reference engine).
_WORKER_STATE: Optional[Tuple[Protocol, Instance, Prover, InstanceContext,
                              int, bool, Optional["TrialKernel"]]] = None


def _worker_batch(span: Tuple[int, int]
                  ) -> Tuple[int, int, int, Dict[str, float], Collected]:
    assert _WORKER_STATE is not None
    protocol, instance, prover, context, seed, stop, kernel = _WORKER_STATE
    start, count = span
    if kernel is not None:
        return _kernel_batch(kernel, seed, start, count, stop)
    return _trial_batch(protocol, instance, prover, context, seed,
                        start, count, stop)


def _fork_pool_context():
    """The fork multiprocessing context, or None where unsupported."""
    import multiprocessing
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _spans(total: int, parts: int, offset: int) -> List[Tuple[int, int]]:
    """Split ``total`` trials starting at ``offset`` into ``parts``
    contiguous spans (some may be one longer than others)."""
    base, extra = divmod(total, parts)
    spans = []
    start = offset
    for i in range(parts):
        count = base + (1 if i < extra else 0)
        if count:
            spans.append((start, count))
        start += count
    return spans


def run_trials(protocol: Protocol, instance: Instance, prover: Prover,
               trials: int, seed: int, *, workers: int = 1,
               context: Optional[InstanceContext] = None,
               stop_on_first_reject: bool = True,
               engine: str = "python") -> AcceptanceEstimate:
    """Estimate Pr[all nodes accept] over ``trials`` independent runs.

    Trial ``t`` always executes on ``random.Random(seed + t)``, so the
    estimate is a pure function of ``(protocol, instance, prover,
    trials, seed)`` — independent of ``workers``, of how the batch is
    chunked, *and of the engine*.  The accepted count is a sum over
    trials, which is order-independent, so parallel and serial runs
    are bit-identical.

    ``workers > 1`` distributes trials over a fork-based process pool.
    Trial 0 runs in the parent first so that the (shared) context is
    warm at fork time and every child inherits the cached structure.

    ``engine="numpy"`` routes the batch through a vectorized trial
    kernel (:mod:`repro.core.kernels`) when one models this (protocol,
    prover) pair, with two safety nets: triples without a kernel — and
    environments without numpy, after a ``RuntimeWarning`` — fall back
    to the reference engine, and every kernel run cross-checks trial 0
    against the reference engine before its results are trusted
    (raising ``KernelMismatch`` on any disagreement).  The observable
    outputs (estimates, spans, metrics) are byte-identical across
    engines; ``AcceptanceEstimate.engine`` reports which one actually
    ran.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from "
                         f"{ENGINES}")
    if context is None:
        context = InstanceContext(instance, protocol)
    elif context.instance is not instance:
        raise ValueError("context was built for a different instance")
    context.ensure_validated(protocol)

    start_time = time.perf_counter()
    kernel = None
    if engine == "numpy" and trials > 0:
        kernel = _resolve_kernel(protocol, instance, prover, context)
        if kernel is not None:
            _verify_kernel(kernel, protocol, instance, prover, context,
                           seed, stop_on_first_reject)
    used_engine = "python" if kernel is None else "numpy"

    def batch(start: int, count: int):
        if kernel is not None:
            return _kernel_batch(kernel, seed, start, count,
                                 stop_on_first_reject)
        return _trial_batch(protocol, instance, prover, context, seed,
                            start, count, stop_on_first_reject)

    workers = min(workers, max(trials, 1))
    pool_ctx = _fork_pool_context() if workers > 1 and trials > 1 else None

    sess = active()
    outer = nullcontext() if sess is None else sess.span(
        "runner.run_trials", protocol=protocol.name, n=instance.n,
        trials=trials, seed=seed)
    with outer as span:
        if pool_ctx is None:
            (accepted, decide_calls, short_circuits, phase,
             collected) = batch(0, trials)
            merge_collected(sess, collected)
            used_workers = 1
        else:
            # Warm the context in-parent on trial 0, then fork.  The
            # children inherit the active session and buffer their own
            # spans/metrics; merging the parts in trial order below is
            # what keeps parallel traces identical to serial ones.
            (accepted, decide_calls, short_circuits, phase,
             collected) = batch(0, 1)
            merge_collected(sess, collected)
            global _WORKER_STATE
            _WORKER_STATE = (protocol, instance, prover, context, seed,
                             stop_on_first_reject, kernel)
            try:
                with pool_ctx.Pool(processes=workers) as pool:
                    parts = pool.map(_worker_batch,
                                     _spans(trials - 1, workers, 1))
            finally:
                _WORKER_STATE = None
            for (part_accepted, part_calls, part_short, part_phase,
                 part_collected) in parts:
                accepted += part_accepted
                decide_calls += part_calls
                short_circuits += part_short
                for key, value in part_phase.items():
                    phase[key] += value
                merge_collected(sess, part_collected)
            used_workers = workers

        elapsed = time.perf_counter() - start_time
        if span is not None:
            span.set(accepted=accepted)
            span.note(workers=used_workers, engine=used_engine)
        if sess is not None and sess.metrics_enabled:
            sess.metrics.timer("runner/seconds/batch").inc(elapsed)

    return AcceptanceEstimate(
        accepted=accepted,
        trials=trials,
        elapsed_seconds=elapsed,
        phase_seconds=phase,
        decide_calls=decide_calls,
        short_circuits=short_circuits,
        workers=used_workers,
        engine=used_engine,
        timed=True,
    )


def estimate_acceptance(protocol: Protocol, instance: Instance,
                        prover: Prover, trials: int,
                        rng: random.Random, *, workers: int = 1,
                        context: Optional[InstanceContext] = None,
                        engine: str = "python") -> AcceptanceEstimate:
    """Estimate Pr[all nodes accept] over ``trials`` independent runs.

    A convenience wrapper over :func:`run_trials`: the per-trial seed
    stream is derived from ``rng`` (one 64-bit draw), preserving the
    historical rng-based interface while gaining context reuse,
    short-circuiting, optional parallelism and engine selection.
    """
    return run_trials(protocol, instance, prover, trials,
                      rng.getrandbits(64), workers=workers,
                      context=context, engine=engine)


def measure_cost(protocol: Protocol, instance: Instance,
                 prover: Optional[Prover] = None,
                 rng: Optional[random.Random] = None) -> int:
    """Per-node communication (bits) of one honest run — the paper's
    cost measure for upper bounds."""
    prover = prover or protocol.honest_prover()
    rng = rng or random.Random(0)
    return run_protocol(protocol, instance, prover, rng).max_cost_bits
