"""Generic prover strategies for robustness and soundness testing.

Protocol-specific *optimal* cheaters live next to their protocols
(e.g. ``CommittedMappingProver``, ``AdaptiveCollisionProver``); this
module supplies protocol-agnostic adversaries that every protocol must
shrug off:

* :class:`RandomGarbageProver` — replies with random values of roughly
  the right shape; exercises the defensive paths of every decision
  function (the runner turns malformed-message exceptions into local
  rejects, and these tests confirm no garbage is ever *accepted*).
* :class:`TamperingProver` — runs an honest prover but corrupts chosen
  fields at chosen nodes; used to verify that every check in a
  verification procedure is actually load-bearing (mutation testing of
  the protocol, in effect).
* :class:`ReplayProver` — replays the responses recorded from a
  previous execution, ignoring fresh challenges; defeated by any
  protocol whose soundness leans on the challenge (all of ours).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .model import Instance, NodeMessage, Protocol, Prover


class RandomGarbageProver(Prover):
    """Sends structurally plausible random fields every Merlin round.

    Field values are random integers (or small tuples of them), which
    stresses type/range validation everywhere.
    """

    def __init__(self, protocol: Protocol, value_range: int = 1 << 20,
                 tuple_fields: Optional[Mapping[str, int]] = None) -> None:
        self.protocol = protocol
        self.value_range = value_range
        self.tuple_fields = dict(tuple_fields or {})

    def batch_plan(self, context):
        """Never batched: responses are drawn fresh from the trial rng,
        so only the reference engine reproduces the per-trial streams."""
        return None

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Any]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        fields = self.protocol.merlin_fields(round_idx)
        response: Dict[int, NodeMessage] = {}
        for v in instance.graph.vertices:
            msg: NodeMessage = {}
            for name in fields:
                if name in self.tuple_fields:
                    width = self.tuple_fields[name]
                    msg[name] = tuple(rng.randrange(self.value_range)
                                      for _ in range(width))
                else:
                    msg[name] = rng.randrange(self.value_range)
            response[v] = msg
        return response


class TamperingProver(Prover):
    """An honest prover with targeted corruption.

    ``corruptions`` maps ``(round_idx, node, field)`` to a mutation
    function applied to the honest value.  Everything else is honest —
    so a protocol accepts against this prover iff the corrupted field
    is either not checked (a protocol bug the tests would expose) or
    the mutation happens to be a fixed point.
    """

    def __init__(self, base: Prover,
                 corruptions: Mapping[Tuple[int, int, str],
                                      Callable[[Any], Any]]) -> None:
        self.base = base
        self.corruptions = dict(corruptions)

    def reset(self) -> None:
        self.base.reset()

    def batch_plan(self, context):
        """Never batched: corruptions apply to the base prover's live
        responses, which no kernel models (mutation tests must exercise
        the real decision functions anyway)."""
        return None

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Any]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        response = self.base.respond(instance, round_idx, randomness,
                                     own_messages, rng)
        for (r, v, field), mutate in self.corruptions.items():
            if r == round_idx and v in response and field in response[v]:
                response[v] = dict(response[v])
                response[v][field] = mutate(response[v][field])
        return response


class ReplayProver(Prover):
    """Replays recorded responses, oblivious to the fresh challenges.

    Record with :func:`record_responses`; a replayed transcript should
    be rejected with high probability by any protocol that ties a
    Merlin round to a preceding Arthur round (e.g. the root's
    ``i = i_r`` check in Protocols 1 and 2).
    """

    def __init__(self, recorded: Mapping[int, Dict[int, NodeMessage]]) -> None:
        self.recorded = {r: {v: dict(m) for v, m in msgs.items()}
                         for r, msgs in recorded.items()}

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Any]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        if round_idx not in self.recorded:
            raise KeyError(f"no recorded response for round {round_idx}")
        return {v: dict(m) for v, m in self.recorded[round_idx].items()}


def record_responses(protocol: Protocol, instance: Instance, prover: Prover,
                     rng: random.Random) -> Dict[int, Dict[int, NodeMessage]]:
    """One honest execution's Merlin responses, for :class:`ReplayProver`."""
    from .runner import run_protocol
    result = run_protocol(protocol, instance, prover, rng)
    return {r: {v: dict(m) for v, m in msgs.items()}
            for r, msgs in result.transcript.messages.items()}
