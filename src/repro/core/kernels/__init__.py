"""Vectorized trial kernels — the numpy batch engine's kernel registry.

``run_trials(..., engine="numpy")`` asks this package for a kernel
matching its ``(protocol, prover, instance)`` triple.  A kernel replays
whole trial batches as int64 array programs with byte-identical results
(transcripts, per-node bits, per-trial randomness streams) to the
reference python engine — see :mod:`repro.core.kernels.base` for the
contract and :mod:`repro.core.kernels.sym` for the Protocol 1/2
kernels.  Triples without a kernel (GNI, adaptive/randomized provers,
paper-sized Protocol-2 primes) fall back to the reference engine
inside the same call, so ``engine="numpy"`` is always safe to request.

numpy itself is optional (``pip install repro[fast]``); this package
imports without it and reports availability via
:func:`numpy_available`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..context import InstanceContext
from ..model import Instance, Protocol, Prover
from ._np import (MAX_MODULUS_BITS, UnsupportedModulus, mulmod,
                  numpy_available, powmod_column, require_numpy,
                  supported_modulus)
from .base import KernelMismatch, TrialBatch, TrialKernel

#: Registry of kernel builders; each returns a kernel or None.  Order
#: matters only if two builders claim the same triple (none do).
KERNEL_BUILDERS: List[Callable[[Protocol, Instance, Prover,
                                InstanceContext],
                               Optional[TrialKernel]]] = []


def find_kernel(protocol: Protocol, instance: Instance, prover: Prover,
                context: InstanceContext) -> Optional[TrialKernel]:
    """The kernel for this triple, or None → reference engine."""
    if not numpy_available():
        return None
    for build in KERNEL_BUILDERS:
        kernel = build(protocol, instance, prover, context)
        if kernel is not None:
            return kernel
    return None


def _register_builtin_kernels() -> None:
    from .sym import build_sym_kernel
    KERNEL_BUILDERS.append(build_sym_kernel)


_register_builtin_kernels()

__all__ = [
    "KERNEL_BUILDERS",
    "KernelMismatch",
    "MAX_MODULUS_BITS",
    "TrialBatch",
    "UnsupportedModulus",
    "TrialKernel",
    "find_kernel",
    "mulmod",
    "numpy_available",
    "powmod_column",
    "require_numpy",
    "supported_modulus",
]
