"""Batch kernels for the Sym protocols (Protocols 1 and 2).

Both protocols share one algebraic skeleton, which is what makes them
vectorizable: the prover commits to a mapping ρ, a root and a BFS tree
that are **pure functions of the instance** (exposed through
``Prover.batch_plan``), and the only challenge-dependent work is

1. hashing every node's adjacency row and ρ-image row under the root's
   seed — a ``(trials, nodes)`` evaluation of the Theorem-3.2 family
   (:meth:`~repro.hashing.linear.LinearHashFamily.row_hash_batch`,
   one int64 matmul per side),
2. folding the per-node terms up the spanning tree (one ``np.add.at``
   per BFS level), and
3. the root's collision check ``a_r == b_r`` — the accept mask.

Every other verifier check (tree shape, broadcast consistency, range
checks, aggregation equalities) is challenge-independent and passes by
construction for these provers, so the per-trial verdict reduces to
the mask; the runner still cross-checks trial 0 of every batch against
the reference engine (:class:`~repro.core.kernels.base.KernelMismatch`)
so that this reduction can never silently drift from the real decision
functions.

Permutation ρ's ride the sparse path: both hash sides use the CSR
closed adjacency (``InstanceContext.closed_adjacency_csr``), the image
side with its column indices mapped through ρ — O(trials · edges) work
and memory, which is what makes n in the tens of thousands batchable.
Protocol 2's committed provers may carry arbitrary *mappings*, which
go through a dense one-hot matmul instead — Lemma 3.1 never required a
permutation, and neither does the kernel.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from ...protocols import sym_dam, sym_dmam
from ...protocols.sym_dam import (CommittedDAMProver, HonestSymDAMProver,
                                  SymDAMProtocol)
from ...protocols.sym_dmam import (CommittedMappingProver,
                                   HonestSymDMAMProver, SymDMAMProtocol)
from ..context import InstanceContext
from ..model import Instance, Protocol, Prover
from ..runner import ExecutionResult, Transcript
from ._np import require_numpy, supported_modulus
from .base import TrialBatch, TrialKernel


class _SymAggregateKernel(TrialKernel):
    """Shared batch math for the commit-hash-aggregate skeleton."""

    #: round index whose challenges seed the hashes (subclass).
    ARTHUR_ROUND: int = 0

    def __init__(self, protocol: Protocol, instance: Instance,
                 context: InstanceContext, prover: Prover,
                 rho: Tuple[int, ...], root: int) -> None:
        super().__init__(protocol, instance, context, prover)
        np = require_numpy()
        self.family = protocol.family
        self.p = self.family.p
        n = instance.n
        self.n = n
        self.rho = tuple(rho)
        self.root = root

        rho_arr = np.asarray(self.rho, dtype=np.int64)
        if sorted(self.rho) == list(range(n)):
            # Permutation: hash both sides sparsely.  The b-side row of
            # node v is the characteristic vector of ρ(N[v]) — the same
            # CSR layout with every column index mapped through ρ (a
            # permutation never collapses entries), so no dense (n, n)
            # matrix is ever materialized.
            indptr, indices = context.closed_adjacency_csr()
            image_indices = rho_arr[indices]
            image_indices.setflags(write=False)
            self._csr = (indptr, indices)
            self._csr_image = (indptr, image_indices)
            self._adjacency = None
            self._image_rows = None
        else:
            # Arbitrary mapping (Protocol 2 committed cheaters): the
            # image set ρ(N[v]) may collapse vertices, so build it as
            # closed-adjacency × one-hot(ρ), clamped back to 0/1.
            # These provers only appear on small NO instances, where
            # the dense path is fine.
            adjacency = context.closed_adjacency()
            onehot = np.zeros((n, n), dtype=np.int64)
            onehot[np.arange(n), rho_arr] = 1
            image_rows = (adjacency @ onehot > 0).astype(np.int64)
            self._csr = None
            self._csr_image = None
            self._adjacency = adjacency
            self._image_rows = image_rows
        self._a_row_index = np.arange(n, dtype=np.int64)
        self._b_row_index = rho_arr
        self._levels = context.tree_levels(root)
        advice = context.tree_advice(root)
        self.parent = tuple(advice[v].parent for v in range(n))
        self.dist = tuple(advice[v].dist for v in range(n))
        # The only root check that is not satisfied by construction
        # besides the collision itself.
        self._root_static_ok = self.rho[root] != root

        # Per-node bit accounting, via the protocol's own meters on
        # template messages (all transmitted values lie in their
        # declared domains, so the charge is value-independent).
        arthur_bits = sum(protocol.arthur_bits(instance, r)
                          for r in protocol.arthur_round_indices())
        self.node_bits = tuple(
            arthur_bits + sum(
                protocol.merlin_bits(instance, r, message)
                for r, message in self._template_messages(v))
            for v in range(n))
        self._max_bits = max(self.node_bits)
        self._total_bits = sum(self.node_bits)

    # -- subclass layout -------------------------------------------------

    def _template_messages(self, v: int):
        """``(round, message)`` pairs node ``v`` receives, with
        domain-representative placeholder values for the per-trial
        fields (costs are value-independent within the domain)."""
        raise NotImplementedError

    def _materialize_transcript(self, challenges: Sequence[int],
                                a_values: Sequence[int],
                                b_values: Sequence[int]) -> Transcript:
        raise NotImplementedError

    # -- batch math ------------------------------------------------------

    def _compute(self, seed: int, start: int,
                 count: int) -> Dict[str, Any]:
        np = require_numpy()
        p = self.p
        n = self.n

        tick = time.perf_counter()
        # Per-trial challenge streams, byte-compatible with the
        # reference engine: trial t draws n seeds from
        # random.Random(seed + t) in vertex order (the Sym provers
        # never touch the rng, so these are the trial's only draws).
        challenges = np.empty((count, n), dtype=np.int64)
        for i in range(count):
            rng = random.Random(seed + start + i)
            challenges[i] = [rng.randrange(p) for _ in range(n)]
        arthur_seconds = time.perf_counter() - tick

        tick = time.perf_counter()
        seeds = challenges[:, self.root]
        if self._csr is not None:
            a_terms = self.family.row_hash_batch_csr(
                seeds, n, self._a_row_index, *self._csr)
            b_terms = self.family.row_hash_batch_csr(
                seeds, n, self._b_row_index, *self._csr_image)
        else:
            a_terms = self.family.row_hash_batch(
                seeds, n, self._a_row_index, self._adjacency)
            b_terms = self.family.row_hash_batch(
                seeds, n, self._b_row_index, self._image_rows)
        a_values = self._aggregate(a_terms)
        b_values = self._aggregate(b_terms)
        merlin_seconds = time.perf_counter() - tick

        tick = time.perf_counter()
        collide = a_values[:, self.root] == b_values[:, self.root]
        if self._root_static_ok:
            accepted = collide
        else:  # pragma: no cover - provers guarantee a moved root
            accepted = np.zeros(count, dtype=bool)
        decide_seconds = time.perf_counter() - tick

        return {
            "challenges": challenges,
            "a_values": a_values,
            "b_values": b_values,
            "accepted": accepted,
            "phase": {"arthur": arthur_seconds,
                      "merlin": merlin_seconds,
                      "decide": decide_seconds},
        }

    def _aggregate(self, terms):
        """Fold per-node terms into subtree sums, leaf levels first —
        the batched ``honest_aggregates``.  Duplicated parents within a
        level accumulate via the unbuffered ``np.add.at``; sums stay
        exact (< n·p < 2⁶²) between the per-level reductions."""
        np = require_numpy()
        values = terms.copy()
        for nodes, parents in self._levels:
            np.add.at(values, (slice(None), parents), values[:, nodes])
            values[:, np.unique(parents)] %= self.p
        return values

    # -- TrialKernel interface -------------------------------------------

    def run_batch(self, seed: int, start: int, count: int,
                  stop_on_first_reject: bool) -> TrialBatch:
        np = require_numpy()
        computed = self._compute(seed, start, count)
        accepted = computed["accepted"]
        n = self.n
        # The reference engine decides nodes in vertex order; every
        # node before the root accepts by construction, so a rejecting
        # trial short-circuits exactly at the root.
        reject_calls = self.root + 1 if stop_on_first_reject else n
        decide_calls = np.where(accepted, n, reject_calls)
        return TrialBatch(
            start=start,
            count=count,
            accepted=accepted,
            decide_calls=decide_calls,
            max_cost_bits=np.full(count, self._max_bits, dtype=np.int64),
            proof_bits=np.full(count, self._total_bits, dtype=np.int64),
            phase_seconds=computed["phase"],
        )

    def execution_result(self, seed: int, trial: int,
                         stop_on_first_reject: bool) -> ExecutionResult:
        computed = self._compute(seed, trial, 1)
        challenges = [int(x) for x in computed["challenges"][0]]
        a_values = [int(x) for x in computed["a_values"][0]]
        b_values = [int(x) for x in computed["b_values"][0]]
        accepted = bool(computed["accepted"][0])
        transcript = self._materialize_transcript(challenges, a_values,
                                                  b_values)
        if accepted:
            decisions = {v: True for v in range(self.n)}
        elif stop_on_first_reject:
            decisions = {v: v != self.root for v in range(self.root + 1)}
        else:
            decisions = {v: v != self.root for v in range(self.n)}
        return ExecutionResult(
            accepted=accepted,
            decisions=decisions,
            transcript=transcript,
            node_cost_bits={v: self.node_bits[v] for v in range(self.n)},
            phase_seconds=computed["phase"],
            decide_calls=len(decisions),
        )


class SymDMAMKernel(_SymAggregateKernel):
    """Protocol 1 (dMAM): static M₀ commitments, A₁ challenges, M₂
    aggregates seeded by the root's challenge."""

    ARTHUR_ROUND = sym_dmam.ROUND_A1

    def _template_messages(self, v: int):
        m0 = {sym_dmam.FIELD_ROOT: self.root,
              sym_dmam.FIELD_RHO: self.rho[v],
              sym_dmam.FIELD_PARENT: self.parent[v],
              sym_dmam.FIELD_DIST: self.dist[v]}
        m2 = {sym_dmam.FIELD_SEED: 0,
              sym_dmam.FIELD_A: 0,
              sym_dmam.FIELD_B: 0}
        return ((sym_dmam.ROUND_M0, m0), (sym_dmam.ROUND_M2, m2))

    def _materialize_transcript(self, challenges, a_values,
                                b_values) -> Transcript:
        seed = challenges[self.root]
        return Transcript(
            randomness={sym_dmam.ROUND_A1: dict(enumerate(challenges))},
            messages={
                sym_dmam.ROUND_M0: {
                    v: {sym_dmam.FIELD_ROOT: self.root,
                        sym_dmam.FIELD_RHO: self.rho[v],
                        sym_dmam.FIELD_PARENT: self.parent[v],
                        sym_dmam.FIELD_DIST: self.dist[v]}
                    for v in range(self.n)},
                sym_dmam.ROUND_M2: {
                    v: {sym_dmam.FIELD_SEED: seed,
                        sym_dmam.FIELD_A: a_values[v],
                        sym_dmam.FIELD_B: b_values[v]}
                    for v in range(self.n)},
            })


class SymDAMKernel(_SymAggregateKernel):
    """Protocol 2 (dAM): A₀ challenges, one M₁ round carrying the full
    ρ table plus tree advice and aggregates."""

    ARTHUR_ROUND = sym_dam.ROUND_A0

    def _template_messages(self, v: int):
        m1 = {sym_dam.FIELD_RHO_TABLE: self.rho,
              sym_dam.FIELD_SEED: 0,
              sym_dam.FIELD_ROOT: self.root,
              sym_dam.FIELD_PARENT: self.parent[v],
              sym_dam.FIELD_DIST: self.dist[v],
              sym_dam.FIELD_A: 0,
              sym_dam.FIELD_B: 0}
        return ((sym_dam.ROUND_M1, m1),)

    def _materialize_transcript(self, challenges, a_values,
                                b_values) -> Transcript:
        seed = challenges[self.root]
        return Transcript(
            randomness={sym_dam.ROUND_A0: dict(enumerate(challenges))},
            messages={
                sym_dam.ROUND_M1: {
                    v: {sym_dam.FIELD_RHO_TABLE: self.rho,
                        sym_dam.FIELD_SEED: seed,
                        sym_dam.FIELD_ROOT: self.root,
                        sym_dam.FIELD_PARENT: self.parent[v],
                        sym_dam.FIELD_DIST: self.dist[v],
                        sym_dam.FIELD_A: a_values[v],
                        sym_dam.FIELD_B: b_values[v]}
                    for v in range(self.n)},
            })


#: (exact protocol type, exact prover types, kernel) — exact types, not
#: isinstance: a subclass may override anything the kernel models.
_SUPPORTED = (
    (SymDMAMProtocol, (HonestSymDMAMProver, CommittedMappingProver),
     SymDMAMKernel),
    (SymDAMProtocol, (HonestSymDAMProver, CommittedDAMProver),
     SymDAMKernel),
)


def build_sym_kernel(protocol: Protocol, instance: Instance,
                     prover: Prover, context: InstanceContext
                     ) -> Optional[TrialKernel]:
    """The Sym registry entry: a kernel for exactly the (protocol,
    prover) pairs the batch math models, or None (→ reference engine).

    The prover's own ``batch_plan`` supplies ρ and the root — the same
    memoized choices its ``respond`` would make — and may raise the
    same ``ProtocolViolation`` its first response would (e.g. honest
    prover on an asymmetric graph).
    """
    for protocol_type, prover_types, kernel_type in _SUPPORTED:
        if type(protocol) is protocol_type and type(prover) in prover_types:
            break
    else:
        return None
    if not supported_modulus(protocol.family.p):
        # Protocol 2's paper-sized prime (~n^(n+2)) overflows int64;
        # only small-prime families (experiment E6/E7) batch.
        return None
    plan = prover.batch_plan(context)
    if plan is None:  # pragma: no cover - supported provers always plan
        return None
    rho = tuple(plan["rho"])
    root = plan["root"]
    n = instance.n
    if len(rho) != n or not all(
            isinstance(x, int) and 0 <= x < n for x in rho):
        return None
    if not 0 <= root < n:  # pragma: no cover - provers validate roots
        return None
    return kernel_type(protocol, instance, context, prover, rho, root)
