"""The numpy import gate and exact modular array arithmetic.

Everything in :mod:`repro.core.kernels` funnels its numpy access
through this module so the rest of the library never imports numpy at
module scope: the package stays importable (and every engine stays
runnable) on a bare interpreter, with ``engine="numpy"`` degrading to
the reference python path.

Exact arithmetic
----------------
The trial kernels evaluate the Theorem-3.2 linear hashes in int64
arrays, so every product must stay below 2⁶³ *before* reduction.
:func:`mulmod` keeps element-wise modular products exact for any
modulus below ``2^41`` by splitting one factor (classic
high/low-limb trick); :data:`MAX_MODULUS_BITS` is the advertised
ceiling kernels check at build time.  Protocol-1 primes sit in
``[10n³, 100n³]``, so the ceiling covers n ≈ 2800 — far beyond what
the python reference engine can reach at all.
"""

from __future__ import annotations

from typing import Any, Optional

from ...hashing.primes import UnsupportedModulus

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: The numpy module, or None when the environment lacks it.
np: Optional[Any] = _numpy

#: Largest modulus bit-length mulmod keeps exact in int64.
MAX_MODULUS_BITS = 41

_MISSING_MESSAGE = (
    "the numpy batch engine needs numpy, which is not installed; "
    "install it with `pip install repro[fast]` (or `pip install numpy`) "
    "— run_trials(engine=\"python\") is the dependency-free fallback")


def numpy_available() -> bool:
    """Whether the batch kernels can run at all."""
    return np is not None


def require_numpy() -> Any:
    """Return numpy or raise a clean, actionable ImportError."""
    if np is None:
        raise ImportError(_MISSING_MESSAGE)
    return np


def supported_modulus(p: int) -> bool:
    """Whether int64 kernels stay exact for modulus ``p``."""
    return 2 <= p and p.bit_length() <= MAX_MODULUS_BITS


def mulmod(a: Any, b: Any, p: int) -> Any:
    """Element-wise ``a * b mod p`` on int64 arrays, exactly.

    Inputs must already be reduced mod ``p``.  For ``p < 2³¹`` the
    direct product fits int64; above that, split ``a`` into high/low
    limbs of ``k = 62 - bits(p)`` low bits so every intermediate stays
    below 2⁶³ (valid while ``bits(p) ≤ 41``; see module docstring).
    """
    bits = p.bit_length()
    if bits <= 31:
        return a * b % p
    if bits > MAX_MODULUS_BITS:
        raise UnsupportedModulus(
            f"modulus {p} needs {bits} bits; int64 kernels support "
            f"at most {MAX_MODULUS_BITS} — run_trials(engine=\"python\") "
            f"is the exact big-int fallback")
    k = 62 - bits
    hi = a >> k
    lo = a & ((1 << k) - 1)
    return ((hi * b % p << k) + lo * b) % p


def powmod_column(base: Any, exponent: int, p: int) -> Any:
    """Element-wise ``base ** exponent mod p`` by square-and-multiply.

    ``base`` is an int64 array of residues; the exponent is a shared
    python int (the kernels raise a whole trial batch of seeds to one
    structural exponent, e.g. ``s^n``).
    """
    xp = require_numpy()
    result = xp.ones_like(base)
    acc = base % p
    e = exponent
    while e:
        if e & 1:
            result = mulmod(result, acc, p)
        acc = mulmod(acc, acc, p)
        e >>= 1
    return result
