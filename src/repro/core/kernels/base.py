"""Kernel interface of the numpy batch engine.

A **trial kernel** replays a whole batch of Monte-Carlo trials as array
programs: challenges for trials ``start .. start+count-1`` are drawn
from the same per-trial streams the reference engine uses
(``random.Random(seed + t)``, identical draw order), and everything
downstream — hashing, tree aggregation, verifier decisions, bit
accounting — is vectorized over a ``(trials, nodes)`` grid.

The contract is *byte-equality with the reference engine*, not
approximate agreement: a kernel must reproduce the exact
``ExecutionResult`` of :func:`repro.core.runner.run_protocol` for any
trial it claims (:meth:`TrialKernel.execution_result`), which is how
the runner cross-checks every batch (trial 0 of each ``run_trials``
call runs on both engines) and how the parity suite in
``tests/core/test_kernels.py`` pins the rest.

Kernels are built per ``(protocol, prover, instance)`` triple by
:func:`repro.core.kernels.find_kernel`; a triple without a kernel
simply runs on the reference engine, so registering a kernel is purely
an optimization, never a semantics change.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict

from ..context import InstanceContext
from ..model import Instance, Protocol, Prover


class KernelMismatch(RuntimeError):
    """A kernel disagreed with the reference engine on a cross-checked
    trial.  Raised loudly instead of returning silently wrong numbers;
    seeing this means a kernel bug (or a prover/protocol change the
    kernel does not model) — rerun with ``engine="python"``."""


@dataclass
class TrialBatch:
    """Per-trial outcome arrays for trials ``start .. start+count-1``.

    All arrays are int64/bool of length ``count``, indexed by trial
    offset (``arrays[i]`` describes trial ``start + i``); the runner
    turns them into the same counters, spans and metrics the reference
    engine emits trial by trial.
    """

    start: int
    count: int
    #: did all nodes accept?
    accepted: Any
    #: decision functions the reference engine would have invoked.
    decide_calls: Any
    #: the paper's cost measure (worst node's bits) per trial.
    max_cost_bits: Any
    #: total bits over all nodes per trial (the ``proof_bits`` metric).
    proof_bits: Any
    #: bulk wall time per phase ("arthur", "merlin", "decide"), seconds.
    phase_seconds: Dict[str, float]


class TrialKernel(ABC):
    """Vectorized executor for one ``(protocol, prover, instance)``.

    Construction happens once per ``run_trials`` call (arrays are
    memoized on the :class:`InstanceContext`, so repeated calls stay
    cheap) and must fail by *returning no kernel* from the registry —
    never by guessing: anything a kernel cannot model byte-exactly
    belongs to the reference engine.
    """

    def __init__(self, protocol: Protocol, instance: Instance,
                 context: InstanceContext, prover: Prover) -> None:
        self.protocol = protocol
        self.instance = instance
        self.context = context
        self.prover = prover

    @abstractmethod
    def run_batch(self, seed: int, start: int, count: int,
                  stop_on_first_reject: bool) -> TrialBatch:
        """Execute trials ``start .. start+count-1`` of the stream."""

    @abstractmethod
    def execution_result(self, seed: int, trial: int,
                         stop_on_first_reject: bool):
        """Materialize trial ``trial`` as a full
        :class:`~repro.core.runner.ExecutionResult` — equal (dataclass
        equality: verdicts, decisions, transcript, per-node bits) to
        what :func:`~repro.core.runner.run_protocol` produces on
        ``random.Random(seed + trial)``.  All values must be plain
        python ints/bools so transcripts serialize identically.
        """
