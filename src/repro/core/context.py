"""Per-instance structural cache for the batched execution engine.

Every Monte-Carlo trial of ``run_protocol`` used to re-derive the same
*static* structure: closed neighborhoods for every node's
:class:`~repro.core.model.LocalView`, the BFS spanning tree the honest
provers advise, the non-trivial automorphism the Sym provers search
for, and the witness catalogs the GNI provers enumerate.  None of that
depends on the challenge randomness — it is a function of the
``(protocol, instance)`` pair alone — so recomputing it per trial was
pure waste (at n = 64 the automorphism search alone was > 90% of an
honest dMAM trial).

:class:`InstanceContext` computes each piece **once** and memoizes it.
The runner threads a context through every execution of a trial batch
(:func:`~repro.core.runner.run_trials`), and provers reach it through
:meth:`~repro.core.model.Prover.acquire_context`.

Locality discipline
-------------------
The context never widens what a node may see.  The *decision path*
consumes only per-node closed neighborhoods and the protocol's
broadcast-field layout — exactly the structure a node legally holds at
decision time (its own neighborhood and the public protocol
definition).  Prover-side material (spanning-tree advice, automorphism
witnesses, GNI catalogs) lives behind prover-only accessors and is
never passed to ``decide``; the :class:`~repro.core.model.LocalView`
construction remains the single gate through which decision functions
observe the world.

Caches are also **randomness-free**: nothing stored here depends on
challenges or prover messages, so sharing one context across trials —
or across a completeness run and a soundness run with different
provers — cannot leak state between executions (regression-tested in
``tests/core/test_context.py``).
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, FrozenSet, Hashable, Optional,
                    Tuple, TYPE_CHECKING)

from .model import Instance, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..network.spanning_tree import TreeAdvice

#: Sentinel distinguishing "not computed yet" from a computed ``None``.
_UNSET = object()


class InstanceContext:
    """Memoized static structure of one ``(protocol, instance)`` pair.

    Construction is O(1): every field is computed lazily on first use,
    so building a throwaway context inside a single ``run_protocol``
    call costs nothing beyond what that execution needed anyway.

    Parameters
    ----------
    instance:
        The instance this context describes.  All caches are keyed on
        it; the runner rejects a context whose instance is not
        (identically) the one being executed.
    protocol:
        Optional protocol the context is bound to.  When present,
        ``ensure_validated`` runs ``protocol.validate_instance`` only
        once per context instead of once per trial.
    """

    __slots__ = ("instance", "protocol", "graph",
                 "_closed", "_closed_rows", "_tree_advice",
                 "_automorphism", "_memo", "_validated",
                 "_broadcast_plan")

    def __init__(self, instance: Instance,
                 protocol: Optional[Protocol] = None) -> None:
        self.instance = instance
        self.protocol = protocol
        self.graph = instance.graph
        self._closed: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._closed_rows: Optional[Tuple[int, ...]] = None
        self._tree_advice: Dict[int, Dict[int, "TreeAdvice"]] = {}
        self._automorphism: Any = _UNSET
        self._memo: Dict[Hashable, Any] = {}
        self._validated = False
        self._broadcast_plan: Optional[
            Tuple[Protocol, Tuple[Tuple[int, FrozenSet[str]], ...]]] = None

    # -- runner-side structure (decision-time legal) ---------------------

    @property
    def closed_neighborhoods(self) -> Tuple[Tuple[int, ...], ...]:
        """``closed_neighborhoods[v]`` — the tuple every LocalView gets."""
        if self._closed is None:
            graph = self.graph
            self._closed = tuple(graph.closed_neighborhood(v)
                                 for v in graph.vertices)
        return self._closed

    @property
    def closed_rows(self) -> Tuple[int, ...]:
        """``closed_rows[v]`` — the self-looped adjacency row bitmasks."""
        if self._closed_rows is None:
            graph = self.graph
            self._closed_rows = tuple(graph.closed_row(v)
                                      for v in graph.vertices)
        return self._closed_rows

    def broadcast_plan(self, protocol: Protocol
                       ) -> Tuple[Tuple[int, FrozenSet[str]], ...]:
        """The Merlin rounds with broadcast fields, computed once.

        The per-node broadcast-consistency check used to rebuild this
        (``merlin_round_indices`` + ``broadcast_fields``) for every
        node of every trial.  The plan is public protocol structure,
        so caching it cannot widen any node's view.
        """
        plan = self._broadcast_plan
        if plan is None or plan[0] is not protocol:
            rounds = tuple(
                (r, fields) for r in protocol.merlin_round_indices()
                for fields in (protocol.broadcast_fields(r),) if fields)
            plan = (protocol, rounds)
            self._broadcast_plan = plan
        return plan[1]

    def ensure_validated(self, protocol: Protocol) -> None:
        """Run ``protocol.validate_instance`` once per (bound) context.

        Only the protocol the context was built for is cached —
        validating a different protocol falls through to a plain call,
        so correctness never depends on the cache.
        """
        if protocol is self.protocol:
            if not self._validated:
                protocol.validate_instance(self.instance)
                self._validated = True
        else:
            protocol.validate_instance(self.instance)

    # -- prover-side structure (never reaches decide()) ------------------

    def tree_advice(self, root: int) -> Dict[int, "TreeAdvice"]:
        """BFS spanning-tree advice rooted at ``root``, one BFS ever."""
        advice = self._tree_advice.get(root)
        if advice is None:
            from ..network.spanning_tree import honest_tree_advice
            advice = honest_tree_advice(self.graph, root)
            self._tree_advice[root] = advice
        return advice

    def nontrivial_automorphism(self) -> Optional[Tuple[int, ...]]:
        """The honest Sym provers' witness, searched exactly once.

        ``None`` (an asymmetric graph) is cached too.
        """
        if self._automorphism is _UNSET:
            from ..graphs.automorphism import find_nontrivial_automorphism
            self._automorphism = find_nontrivial_automorphism(self.graph)
        return self._automorphism

    # -- batch-kernel structure (numpy engine) ---------------------------
    #
    # ndarray mirrors of the tuple/bitmask caches above, materialized
    # once per context for the vectorized trial kernels.  numpy is
    # imported lazily through the kernels' gate, so a context built on
    # a bare interpreter never touches these.  Everything here is still
    # randomness-free instance structure; the locality discipline is
    # unchanged (the arrays feed the kernels, which reproduce exactly
    # the per-LocalView decisions of the reference engine).

    def closed_adjacency(self):
        """The (n, n) int64 closed adjacency matrix (1s on the diagonal).

        One row per node's ``closed_row`` bitmask; the kernels' matmul
        operand for hashing all n adjacency rows of a trial batch at
        once.
        """
        def build():
            from .kernels._np import require_numpy
            np = require_numpy()
            n = self.graph.n
            arr = np.zeros((n, n), dtype=np.int64)
            for v, row in enumerate(self.closed_rows):
                while row:
                    low = row & -row
                    arr[v, low.bit_length() - 1] = 1
                    row ^= low
            arr.setflags(write=False)
            return arr
        return self.memo("kernels.closed_adjacency", build)

    def closed_adjacency_csr(self):
        """The closed adjacency as CSR ``(indptr, indices)`` arrays.

        ``indices[indptr[v]:indptr[v+1]]`` are the sorted members of
        ``N[v]`` — the sparse operand the kernels hand to
        :meth:`LinearHashFamily.row_hash_batch_csr`, sized O(edges)
        where :meth:`closed_adjacency` is O(n²).
        """
        def build():
            from .kernels._np import require_numpy
            np = require_numpy()
            neighborhoods = self.closed_neighborhoods
            indptr = np.zeros(len(neighborhoods) + 1, dtype=np.int64)
            for v, members in enumerate(neighborhoods):
                indptr[v + 1] = indptr[v] + len(members)
            indices = np.fromiter(
                (u for members in neighborhoods for u in members),
                dtype=np.int64, count=int(indptr[-1]))
            indptr.setflags(write=False)
            indices.setflags(write=False)
            return indptr, indices
        return self.memo("kernels.closed_adjacency_csr", build)

    def permuted_closed_adjacency(self, sigma: Tuple[int, ...]):
        """Closed adjacency of the graph relabeled by permutation σ.

        ``A_σ[a, b] = A[σ⁻¹(a), σ⁻¹(b)]`` — the whole relabeling is one
        ``np.ix_`` fancy-indexing op on :meth:`closed_adjacency`.  Row
        ``σ(v)`` is the characteristic vector of ``σ(N[v])``, which is
        what the Sym kernels hash on the committed-mapping side.
        """
        def build():
            from .kernels._np import require_numpy
            np = require_numpy()
            adj = self.closed_adjacency()
            inverse = np.argsort(np.asarray(sigma, dtype=np.int64))
            arr = adj[np.ix_(inverse, inverse)]
            arr.setflags(write=False)
            return arr
        return self.memo(("kernels.permuted_closed_adjacency", tuple(sigma)),
                         build)

    def tree_levels(self, root: int):
        """Leaf-to-root aggregation schedule of the BFS tree at ``root``.

        A tuple of ``(nodes, parents)`` int64 array pairs, one per
        depth, deepest level first — the order in which the kernels
        fold per-node hash terms up the tree (``np.add.at`` per level,
        duplicates in ``parents`` accumulate).  Prover-side structure,
        like :meth:`tree_advice` it derives from.
        """
        def build():
            from .kernels._np import require_numpy
            np = require_numpy()
            advice = self.tree_advice(root)
            by_depth: Dict[int, list] = {}
            for v, entry in advice.items():
                if v != root:
                    by_depth.setdefault(entry.dist, []).append(v)
            levels = []
            for dist in sorted(by_depth, reverse=True):
                nodes = sorted(by_depth[dist])
                parents = [advice[v].parent for v in nodes]
                levels.append((np.asarray(nodes, dtype=np.int64),
                               np.asarray(parents, dtype=np.int64)))
            return tuple(levels)
        return self.memo(("kernels.tree_levels", root), build)

    def memo(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Generic instance-keyed memo: ``factory()`` runs at most once.

        Used by provers for expensive instance-determined structure
        (GNI witness catalogs, committed cheating mappings, per-mark
        subtree counts).  Keys must encode every non-instance input the
        factory depends on (e.g. a protocol parameter).
        """
        value = self._memo.get(key, _UNSET)
        if value is _UNSET:
            value = factory()
            self._memo[key] = value
        return value

    def __repr__(self) -> str:
        cached = sum((self._closed is not None,
                      self._closed_rows is not None,
                      self._automorphism is not _UNSET,
                      len(self._tree_advice), len(self._memo)))
        return (f"<InstanceContext n={self.graph.n} "
                f"cached_entries={cached}>")
