"""Human-readable rendering of protocol executions.

Turning an :class:`~repro.core.runner.ExecutionResult` into something a
person can read is most of debugging a protocol: which round carried
what, which node rejected, where the bits went.  These helpers render
plain text (no dependencies, safe in any terminal) and are used by the
examples and tests; nothing in the verification path depends on them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .model import Instance, Protocol, Prover, ROUND_ARTHUR
from .runner import ExecutionResult, run_protocol


@dataclass(frozen=True)
class ExecutionCost:
    """The independent per-round / per-node bit accounting of one
    execution, recomputed from its transcript.

    This is the *single* recompute behind every cost gate: the lab's
    per-cell ``round_bits`` provenance, the obs record gate's
    declared-bits cross-check, and the ledger's measured per-phase
    series all call :func:`execution_cost`, so the three gates agree
    by construction — none of them trusts the runner's own
    ``node_cost_bits`` accounting.
    """

    #: Per-round bits at node 0 (nodes are cost-uniform in every
    #: protocol here); one entry per round the execution reached.
    round_bits: Tuple[int, ...]
    #: Recomputed per-node totals over all reached rounds.
    node_bits: Dict[int, int]

    @property
    def total_bits(self) -> int:
        """Node 0's total — the 'bits per node' of a cost cell."""
        return sum(self.round_bits)

    @property
    def network_bits(self) -> int:
        """Whole-network total (the netsim/obs charging unit)."""
        return sum(self.node_bits.values())


def execution_cost(protocol: Protocol, instance: Instance,
                   result: ExecutionResult) -> ExecutionCost:
    """Recompute the bit bill of ``result`` from its transcript.

    Rounds the execution never reached (``stop_on_first_reject``
    truncation) contribute nothing, matching the runner's charging.
    """
    node_bits = {v: 0 for v in range(instance.n)}
    round_bits: List[int] = []
    for round_idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            if round_idx not in result.transcript.randomness:
                break
            bits = protocol.arthur_bits(instance, round_idx)
            round_bits.append(bits)
            for v in node_bits:
                node_bits[v] += bits
        else:
            messages = result.transcript.messages.get(round_idx)
            if messages is None:
                break
            round_bits.append(
                protocol.merlin_bits(instance, round_idx, messages[0]))
            for v in node_bits:
                node_bits[v] += protocol.merlin_bits(
                    instance, round_idx, messages[v])
    return ExecutionCost(tuple(round_bits), node_bits)


def trial_cost_bits(protocol: Protocol, instance: Instance,
                    prover_factory: Callable[[], Prover],
                    trials: int, seed: int, *,
                    stop_on_first_reject: bool = True) -> List[int]:
    """Whole-network declared bits per trial over the deterministic
    ``seed + t`` streams — the obs record gate's ground truth,
    re-executed outside any span bookkeeping."""
    return [
        sum(run_protocol(protocol, instance, prover_factory(),
                         random.Random(seed + t),
                         stop_on_first_reject=stop_on_first_reject)
            .node_cost_bits.values())
        for t in range(trials)]


def _preview(value: Any, limit: int = 32) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def describe_rounds(protocol: Protocol) -> List[str]:
    """One line per round: kind and, for Merlin, the field layout."""
    lines = []
    for idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            lines.append(f"round {idx}: Arthur  (nodes -> prover, random)")
        else:
            fields = sorted(protocol.merlin_fields(idx))
            broadcast = protocol.broadcast_fields(idx)
            rendered = ", ".join(
                f"{name}*" if name in broadcast else name
                for name in fields)
            lines.append(f"round {idx}: Merlin  (prover -> nodes: "
                         f"{rendered})  [* = broadcast-checked]")
    return lines


def render_execution(protocol: Protocol, instance: Instance,
                     result: ExecutionResult,
                     nodes: Optional[Iterable[int]] = None,
                     value_limit: int = 32) -> str:
    """A full text report of one execution.

    ``nodes`` restricts the per-node message dump (default: first 4
    nodes plus any rejecting node — the ones worth reading).
    """
    lines: List[str] = []
    lines.append(f"protocol {protocol.name} (pattern {protocol.pattern}) "
                 f"on n={instance.n}")
    lines.extend(describe_rounds(protocol))
    verdict = "ACCEPTED" if result.accepted else "REJECTED"
    lines.append(f"verdict: {verdict}; per-node cost "
                 f"{result.max_cost_bits} bits")
    rejecting = result.rejecting_nodes()
    if rejecting:
        lines.append(f"rejecting nodes: {rejecting}")

    if nodes is None:
        shown = sorted(set(list(range(min(4, instance.n))) + rejecting))
    else:
        shown = sorted(set(nodes))
    for v in shown:
        flag = "ok " if result.decisions.get(v, False) else "REJ"
        lines.append(f"node {v} [{flag}] "
                     f"({result.node_cost_bits.get(v, 0)} bits)")
        for round_idx, kind in enumerate(protocol.pattern):
            if kind == ROUND_ARTHUR:
                value = result.transcript.randomness[round_idx][v]
                lines.append(f"  r{round_idx} A -> "
                             f"{_preview(value, value_limit)}")
            else:
                message = result.transcript.messages[round_idx][v]
                rendered = ", ".join(
                    f"{name}={_preview(message[name], value_limit)}"
                    for name in sorted(message))
                lines.append(f"  r{round_idx} M <- {rendered}")
    return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    """Recursively convert transcript values to JSON-stable types.

    Tuples become lists; mapping keys become strings (sorted by their
    original integer value where applicable, via the caller's
    ``sort_keys`` dump).  Anything already JSON-native passes through.
    """
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    return repr(value)


def execution_to_jsonable(protocol: Protocol, instance: Instance,
                          result: ExecutionResult) -> Any:
    """A deterministic JSON-friendly dump of one execution.

    This is the golden-transcript format: dumped with
    ``json.dumps(..., sort_keys=True, indent=2)`` it is byte-stable
    across runs for a fixed seed, so regression tests can assert exact
    replay of every round, message field, and verdict.
    """
    return {
        "protocol": protocol.name,
        "pattern": protocol.pattern,
        "n": instance.n,
        "accepted": result.accepted,
        "max_cost_bits": result.max_cost_bits,
        "node_cost_bits": _jsonable(dict(result.node_cost_bits)),
        "decisions": _jsonable(dict(result.decisions)),
        "randomness": _jsonable({r: dict(values) for r, values
                                 in result.transcript.randomness.items()}),
        "messages": _jsonable({r: {v: dict(msg) for v, msg in round_msgs.items()}
                               for r, round_msgs
                               in result.transcript.messages.items()}),
    }


def render_certification(report: Any) -> List[str]:
    """Text rendering of a certification report.

    Duck-typed against :class:`repro.adversary.certify
    .CertificationReport` (core must not import the adversary package).
    """
    lines = [f"certification: {report.protocol_name}  "
             f"alpha={report.alpha} trials={report.trials} "
             f"seed={report.seed} workers={report.workers}"]
    if report.analytic_soundness is not None:
        lines.append(f"  analytic bounds: completeness >= "
                     f"{report.analytic_completeness:.3f}, soundness <= "
                     f"{report.analytic_soundness:.3f}")
    for cert in report.instances:
        flag = "PASS" if cert.passes else "FAIL"
        side = "YES" if cert.is_yes else "NO "
        if cert.is_yes:
            outcome = cert.outcomes[0]
            detail = (f"honest {outcome.estimate.accepted}"
                      f"/{outcome.estimate.trials} "
                      f"CP lower {cert.certified_lower:.3f}")
        else:
            best = cert.best
            detail = (f"best={best.name} {best.estimate.accepted}"
                      f"/{best.estimate.trials} "
                      f"CP upper {cert.certified_upper:.3f}")
            if best.exact_value is not None:
                detail += f" exact={best.exact_value}"
        if cert.game_value is not None:
            detail += f" game={cert.game_value}"
        lines.append(f"  [{flag}] {side} {cert.label}: {detail}")
    lines.append(f"  => {'all certified' if report.all_certified else 'NOT certified'}")
    return lines


def render_solver_checks(checks: Any) -> List[str]:
    """Text rendering of the exact-solver cross-validation rows
    (duck-typed against ``SolverCheck``)."""
    lines = ["solver cross-validation (exact vs analysis vs search):"]
    for check in checks:
        ok = (check.solver_matches_analysis and check.search_within_game
              and check.cp_covers_exact)
        lines.append(
            f"  [{'PASS' if ok else 'FAIL'}] {check.label} "
            f"(n={check.n}, p={check.p}, pool={check.pool}): "
            f"game={check.game_value} analysis={check.analysis_value} "
            f"search={check.search_value} "
            f"CP=[{check.cp_lower:.3f}, {check.cp_upper:.3f}]")
    return lines


def cost_breakdown(protocol: Protocol, instance: Instance,
                   result: ExecutionResult) -> List[str]:
    """Per-round bit accounting for node 0 (all nodes are uniform in
    every protocol in this library)."""
    lines = [f"cost breakdown ({protocol.name}, n={instance.n}):"]
    total = 0
    for round_idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            bits = protocol.arthur_bits(instance, round_idx)
            lines.append(f"  round {round_idx} (A): {bits:>8} bits")
        else:
            message = result.transcript.messages[round_idx][0]
            bits = protocol.merlin_bits(instance, round_idx, message)
            lines.append(f"  round {round_idx} (M): {bits:>8} bits")
        total += bits
    lines.append(f"  total          : {total:>8} bits")
    return lines
