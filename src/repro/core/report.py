"""Human-readable rendering of protocol executions.

Turning an :class:`~repro.core.runner.ExecutionResult` into something a
person can read is most of debugging a protocol: which round carried
what, which node rejected, where the bits went.  These helpers render
plain text (no dependencies, safe in any terminal) and are used by the
examples and tests; nothing in the verification path depends on them.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from .model import Instance, Protocol, ROUND_ARTHUR
from .runner import ExecutionResult


def _preview(value: Any, limit: int = 32) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def describe_rounds(protocol: Protocol) -> List[str]:
    """One line per round: kind and, for Merlin, the field layout."""
    lines = []
    for idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            lines.append(f"round {idx}: Arthur  (nodes -> prover, random)")
        else:
            fields = sorted(protocol.merlin_fields(idx))
            broadcast = protocol.broadcast_fields(idx)
            rendered = ", ".join(
                f"{name}*" if name in broadcast else name
                for name in fields)
            lines.append(f"round {idx}: Merlin  (prover -> nodes: "
                         f"{rendered})  [* = broadcast-checked]")
    return lines


def render_execution(protocol: Protocol, instance: Instance,
                     result: ExecutionResult,
                     nodes: Optional[Iterable[int]] = None,
                     value_limit: int = 32) -> str:
    """A full text report of one execution.

    ``nodes`` restricts the per-node message dump (default: first 4
    nodes plus any rejecting node — the ones worth reading).
    """
    lines: List[str] = []
    lines.append(f"protocol {protocol.name} (pattern {protocol.pattern}) "
                 f"on n={instance.n}")
    lines.extend(describe_rounds(protocol))
    verdict = "ACCEPTED" if result.accepted else "REJECTED"
    lines.append(f"verdict: {verdict}; per-node cost "
                 f"{result.max_cost_bits} bits")
    rejecting = result.rejecting_nodes()
    if rejecting:
        lines.append(f"rejecting nodes: {rejecting}")

    if nodes is None:
        shown = sorted(set(list(range(min(4, instance.n))) + rejecting))
    else:
        shown = sorted(set(nodes))
    for v in shown:
        flag = "ok " if result.decisions.get(v, False) else "REJ"
        lines.append(f"node {v} [{flag}] "
                     f"({result.node_cost_bits.get(v, 0)} bits)")
        for round_idx, kind in enumerate(protocol.pattern):
            if kind == ROUND_ARTHUR:
                value = result.transcript.randomness[round_idx][v]
                lines.append(f"  r{round_idx} A -> "
                             f"{_preview(value, value_limit)}")
            else:
                message = result.transcript.messages[round_idx][v]
                rendered = ", ".join(
                    f"{name}={_preview(message[name], value_limit)}"
                    for name in sorted(message))
                lines.append(f"  r{round_idx} M <- {rendered}")
    return "\n".join(lines)


def cost_breakdown(protocol: Protocol, instance: Instance,
                   result: ExecutionResult) -> List[str]:
    """Per-round bit accounting for node 0 (all nodes are uniform in
    every protocol in this library)."""
    lines = [f"cost breakdown ({protocol.name}, n={instance.n}):"]
    total = 0
    for round_idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            bits = protocol.arthur_bits(instance, round_idx)
            lines.append(f"  round {round_idx} (A): {bits:>8} bits")
        else:
            message = result.transcript.messages[round_idx][0]
            bits = protocol.merlin_bits(instance, round_idx, message)
            lines.append(f"  round {round_idx} (M): {bits:>8} bits")
        total += bits
    lines.append(f"  total          : {total:>8} bits")
    return lines
