"""Command-line demos: ``python -m repro <command>``.

Commands
--------
``sym``        Run Protocol 1 on a symmetric graph and a cheating
               prover on a rigid one (Theorem 1.1 in two runs).
``separation`` Print the DSym dAM-vs-LCP cost table (Theorem 1.2).
``gni``        Run the distributed Goldwasser–Sipser audit
               (Theorem 1.5; add ``--general`` for symmetric inputs).
``certify``    Run the adversarial soundness certification battery
               (exact game values, search adversaries, and
               Clopper-Pearson bounds; ``--json`` for machine output).
``lowerbound`` Print the packing table of Theorem 1.4.
``costs``      Per-node cost of every protocol at a chosen size.
``lab``        Experiment orchestration: ``lab run`` records E1–E14
               cells into the result store, ``lab check`` is the
               regression gate, ``lab report`` regenerates tables.
``netsim``     Message-passing substrate: ``netsim run`` is the
               equivalence gate plus the wire-cost audit, ``netsim
               faults`` the fault-injection matrix with analytic
               detection bounds.
``obs``        Observability: ``obs record`` executes the golden
               battery under tracing (and gates trace bit counters
               against declared costs), ``obs report``/``obs top``
               render a recorded run (``obs report --flame`` the full
               span hierarchy), ``obs diff`` compares two runs.
``ledger``     Symbolic cost ledger: ``ledger check`` asserts every
               declared per-phase/per-channel bound against the
               measured bits in the committed store (the theorem
               gate), ``ledger table`` regenerates docs/COSTS.md,
               ``ledger fit`` prints the fitted leading constants.
``serve``      Long-running verification service: jobs over HTTP or
               ndjson stdin, batched onto the trial engines with
               admission control and a shared instance cache
               (``--smoke N`` runs the in-process self-test).
``fleet``      Sharded scale-out sweeps: ``fleet run`` partitions the
               lab grids over worker shards with lease-logged crash
               recovery and merges the shard stores, ``fleet status``
               shows per-shard progress, ``fleet diff`` asserts two
               stores agree on every deterministic field.
"""

from __future__ import annotations

import argparse
import math
import random
import sys


def cmd_sym(args: argparse.Namespace) -> int:
    from repro import Instance, SymDMAMProtocol, run_protocol
    from repro.core.runner import run_trials
    from repro.graphs import SMALLEST_ASYMMETRIC, cycle_graph
    from repro.protocols import CommittedMappingProver

    rng = random.Random(args.seed)
    graph = cycle_graph(args.n)
    protocol = SymDMAMProtocol(graph.n)
    result = run_protocol(protocol, Instance(graph),
                          protocol.honest_prover(), rng)
    print(f"YES ({args.n}-cycle): accepted={result.accepted} "
          f"cost={result.max_cost_bits} bits/node")

    rigid = SMALLEST_ASYMMETRIC
    protocol6 = SymDMAMProtocol(rigid.n)
    cheater = CommittedMappingProver(protocol6)
    estimate = run_trials(protocol6, Instance(rigid), cheater,
                          args.trials, 0, workers=args.workers)
    print(f"NO (rigid 6-vertex graph): cheater fooled the network "
          f"{estimate.accepted}/{args.trials} times "
          f"(bound m/p = {protocol6.family.collision_bound:.4f})")
    return 0


def cmd_separation(args: argparse.Namespace) -> int:
    from repro import Instance, run_protocol
    from repro.core.runner import run_trials
    from repro.graphs import DSymLayout, cycle_graph, dsym_graph
    from repro.protocols import DSymDAMProtocol, DSymLCP

    rng = random.Random(args.seed)
    print(f"{'N':>6} {'LCP bits':>10} {'dAM bits':>10} {'gap':>8}")
    inner = 6
    last = None
    while 2 * inner + 5 <= args.n:
        layout = DSymLayout(inner, 2)
        graph = dsym_graph(cycle_graph(inner), 2)
        instance = Instance(graph)
        lcp, dam = DSymLCP(layout), DSymDAMProtocol(layout)
        lcp_cost = run_protocol(lcp, instance, lcp.honest_prover(),
                                rng).max_cost_bits
        dam_cost = run_protocol(dam, instance, dam.honest_prover(),
                                rng).max_cost_bits
        print(f"{layout.total_n:>6} {lcp_cost:>10} {dam_cost:>10} "
              f"{lcp_cost / dam_cost:>7.1f}x")
        last = (dam, instance, layout.total_n)
        inner *= 2
    if last is not None and args.trials > 0:
        dam, instance, total_n = last
        estimate = run_trials(dam, instance, dam.honest_prover(),
                              args.trials, args.seed,
                              workers=args.workers)
        print(f"dAM acceptance at N={total_n}: "
              f"{estimate.accepted}/{args.trials} honest runs accepted")
    return 0


def cmd_gni(args: argparse.Namespace) -> int:
    from repro import run_protocol
    from repro.core.runner import run_trials
    from repro.graphs import cycle_graph, rigid_family_exhaustive, star_graph
    from repro.protocols import (GNIGoldwasserSipserProtocol,
                                 GeneralGNIProtocol, gni_instance)

    if args.general:
        protocol = GeneralGNIProtocol(6, repetitions=args.repetitions)
        g0, g1 = star_graph(6), cycle_graph(6)
        kind = "general (symmetric inputs allowed)"
    else:
        family = rigid_family_exhaustive(6, max_size=2)
        protocol = GNIGoldwasserSipserProtocol(
            6, repetitions=args.repetitions)
        g0, g1 = family[0], family[1]
        kind = "base (asymmetric inputs, as in the paper's Section 4)"
    guarantee = protocol.guarantees()
    print(f"protocol: {kind}")
    print(f"  t={guarantee.repetitions} threshold={guarantee.threshold} "
          f"completeness={guarantee.completeness:.3f} "
          f"soundness_error={guarantee.soundness_error:.3f}")

    runs = args.runs
    for label, second in (("YES (non-isomorphic)", g1),
                          ("NO (relabeled copy)",
                           g0.relabel([2, 0, 1, 4, 3, 5]))):
        instance = gni_instance(g0, second)
        # run_trials seeds trial t with Random(seed + t) — the exact
        # per-run streams the serial loop used — so worker count never
        # changes the accept counts.
        estimate = run_trials(protocol, instance,
                              protocol.honest_prover(), runs, args.seed,
                              workers=args.workers)
        cost = run_protocol(instance=instance, protocol=protocol,
                            prover=protocol.honest_prover(),
                            rng=random.Random(args.seed)).max_cost_bits
        print(f"  {label}: accepted {estimate.accepted}/{runs} runs, "
              f"cost={cost} bits/node")
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    from repro.adversary import (certification_jsonable,
                                 standard_certification)
    from repro.core.report import (render_certification,
                                   render_solver_checks)

    payload = standard_certification(
        seed=args.seed, trials=args.trials, alpha=args.alpha,
        workers=args.workers,
        sections=args.sections or None)
    if args.json:
        import json
        print(json.dumps(certification_jsonable(payload), indent=2,
                         sort_keys=True))
    else:
        for report in payload["reports"]:
            print("\n".join(render_certification(report)))
        if payload["solver_checks"] is not None:
            print("\n".join(render_solver_checks(
                payload["solver_checks"])))
        print(f"overall: {'CERTIFIED' if payload['all_certified'] else 'NOT CERTIFIED'}")
    return 0 if payload["all_certified"] else 1


def cmd_lowerbound(args: argparse.Namespace) -> int:
    from repro.lowerbound import lower_bound_table

    sizes = [6, 10, 100, 10 ** 4, 10 ** 6, 10 ** 9]
    print(f"{'inner n':>10} {'log2|F|':>14} {'min L':>6} {'loglog N':>9}")
    for row in lower_bound_table(sizes):
        print(f"{row.inner_n:>10} {row.log2_family_size:>14.1f} "
              f"{row.min_simple_length:>6} {row.loglog_n:>9.2f}")
    return 0


def cmd_costs(args: argparse.Namespace) -> int:
    from repro import Instance, run_protocol
    from repro.graphs import cycle_graph
    from repro.protocols import SymDAMProtocol, SymDMAMProtocol, SymLCP

    rng = random.Random(args.seed)
    n = args.n
    instance = Instance(cycle_graph(n))
    print(f"per-node bits for Sym at n={n}:")
    for protocol in (SymDMAMProtocol(n), SymDAMProtocol(n), SymLCP(n)):
        cost = run_protocol(protocol, instance, protocol.honest_prover(),
                            rng).max_cost_bits
        print(f"  {protocol.name:>10}: {cost:>8} "
              f"({cost / math.log2(n):.1f} per log2 n)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Interactive distributed proofs (PODC 2018) demos")
    parser.add_argument("--seed", type=int, default=2018)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sym", help="Protocol 1 demo (Theorem 1.1)")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the cheater trials")
    p.set_defaults(func=cmd_sym)

    p = sub.add_parser("separation",
                       help="DSym dAM vs LCP cost table (Theorem 1.2)")
    p.add_argument("--n", type=int, default=200,
                   help="largest network size")
    p.add_argument("--trials", type=int, default=8,
                   help="honest acceptance trials at the largest size "
                        "(0 disables)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the acceptance trials")
    p.set_defaults(func=cmd_separation)

    p = sub.add_parser("gni", help="Goldwasser-Sipser GNI (Theorem 1.5)")
    p.add_argument("--repetitions", type=int, default=40)
    p.add_argument("--runs", type=int, default=5,
                   help="independent executions per side")
    p.add_argument("--general", action="store_true",
                   help="automorphism-compensated variant")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the per-side runs")
    p.set_defaults(func=cmd_gni)

    p = sub.add_parser(
        "certify",
        help="adversarial soundness certification (Clopper-Pearson)")
    p.add_argument("--trials", type=int, default=60,
                   help="Monte-Carlo trials per (instance, adversary)")
    p.add_argument("--alpha", type=float, default=0.01,
                   help="per-bound confidence level")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for trial batches")
    p.add_argument("--sections", nargs="*", metavar="SECTION",
                   choices=["sym-dmam", "sym-dam", "dsym", "gni",
                            "solver"],
                   help="battery sections to run (default: all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser("lowerbound",
                       help="packing table (Theorem 1.4)")
    p.set_defaults(func=cmd_lowerbound)

    p = sub.add_parser("costs", help="protocol cost comparison")
    p.add_argument("--n", type=int, default=32)
    p.set_defaults(func=cmd_costs)

    from repro.lab.cli import add_lab_parser
    add_lab_parser(sub)

    from repro.netsim.cli import add_netsim_parser
    add_netsim_parser(sub)

    from repro.obs.cli import add_obs_parser
    add_obs_parser(sub)

    from repro.ledger.cli import add_ledger_parser
    add_ledger_parser(sub)

    from repro.serve.cli import add_serve_parser
    add_serve_parser(sub)

    from repro.fleet.cli import add_fleet_parser
    add_fleet_parser(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
