"""One shard's execution loop, plus the fault-injection hook.

A shard owns a private result store under
``<store>/shards/shard-NNN/`` with the same file naming as the main
store, and works through its task list with exactly the serial
runner's write path: compute the cell, guard it against the declared
absolute bounds, append it.  Before each cell it appends a ``claim``
lease to the shared log, after each an unconditional ``done`` — so a
crash leaves an orphaned claim behind for the supervisor to see, and
a retry wave resumes from the shard store (cells already recorded are
not recomputed, only re-acknowledged).

Fault injection (:class:`SimulatedCrash`) models a worker dying
mid-cell: after ``kill_after`` completed cells the shard raises
between the claim and the compute, and the process wrapper turns that
into ``os._exit(1)`` — no cleanup, no flush, exactly what a killed
host looks like to the supervisor.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..lab.runner import compute_cell, guard_record_bounds, set_shard
from ..lab.spec import ExperimentSpec
from ..lab.store import ResultStore
from ..obs.session import active, adopt_context, export_collected
from .leases import EV_CLAIM, EV_DONE, append_lease
from .plan import Task

SHARDS_DIR = "shards"
#: Worker-exported observability buffers, one JSON file per
#: (wave, shard), merged by the supervisor in shard order.
OBS_DIR = "fleet/obs"


class SimulatedCrash(RuntimeError):
    """Injected worker death (fleet fault testing)."""


def shard_store_root(root: Path, shard: int) -> Path:
    return Path(root) / SHARDS_DIR / f"shard-{shard:03d}"


def shard_obs_path(root: Path, shard: int, attempt: int) -> Path:
    """Where a forked worker exports its obs buffer for one wave."""
    return Path(root) / OBS_DIR / \
        f"wave-{attempt:02d}-shard-{shard:03d}.json"


def execute_shard_tasks(specs: Sequence[ExperimentSpec], root: Path,
                        shard: int, tasks: Sequence[Task],
                        attempt: int, engine: str = "python",
                        kill_after: Optional[int] = None) -> int:
    """Run ``tasks`` against shard ``shard``'s local store.

    Returns the number of cells acknowledged (computed or found
    already recorded by a previous attempt).  ``kill_after`` raises
    :class:`SimulatedCrash` mid-cell once that many cells completed.
    """
    set_shard(shard)
    store = ResultStore(shard_store_root(root, shard))
    sess = active()
    done = 0
    for task in tasks:
        spec = specs[task.spec_index]
        append_lease(root, EV_CLAIM, spec.name, task.key, shard, attempt)
        if kill_after is not None and done >= kill_after:
            raise SimulatedCrash(
                f"shard {shard} killed mid-cell after {done} cells")
        cell_span = nullcontext() if sess is None else sess.span(
            "fleet.cell", spec=spec.name, key=task.key, shard=shard)
        with cell_span as span:
            if span is not None:
                span.note(attempt=attempt)
            if task.key not in store.load_cells(spec):
                record = compute_cell(spec, task.n, task.prover,
                                      task.trials, engine=engine)
                guard_record_bounds(spec, record)
                store.append_cell(spec, record)
            elif span is not None:
                span.note(replayed=True)
        append_lease(root, EV_DONE, spec.name, task.key, shard, attempt)
        done += 1
    return done


def worker_main(specs: Sequence[ExperimentSpec], root: Path, shard: int,
                tasks: Sequence[Task], attempt: int, engine: str,
                kill_after: Optional[int],
                ctx: Optional[Dict[str, Any]] = None) -> None:
    """Process entry point: a simulated crash dies the hard way.

    ``ctx`` is the supervisor's propagated trace context (from
    ``fleet.wave``).  The worker adopts it into a buffer session —
    the forked process inherits the forking thread's ambient session,
    so the buffer mirrors its switches — records a ``fleet.shard``
    root span with meta parent links, and exports the buffer to
    :func:`shard_obs_path` for the supervisor to merge in shard
    order.  A crashed worker exports nothing; its cells re-run (and
    re-record) in the retry wave."""
    import os
    try:
        with adopt_context(ctx) as buf:
            span_cm = nullcontext() if buf is None else buf.span(
                "fleet.shard", shard=shard, cells=len(tasks))
            with span_cm as span:
                if span is not None:
                    span.note(attempt=attempt, pid=os.getpid())
                execute_shard_tasks(specs, root, shard, tasks, attempt,
                                    engine=engine,
                                    kill_after=kill_after)
        if buf is not None:
            spans, snapshot = export_collected(buf)
            path = shard_obs_path(root, shard, attempt)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(
                {"spans": spans, "metrics": snapshot},
                sort_keys=True, default=str) + "\n", encoding="ascii")
    except SimulatedCrash:
        os._exit(1)


def shard_roots(root: Path) -> List[Path]:
    """Existing shard store roots under ``root``, in shard order."""
    shards = Path(root) / SHARDS_DIR
    if not shards.is_dir():
        return []
    return sorted(p for p in shards.iterdir()
                  if p.is_dir() and p.name.startswith("shard-"))
