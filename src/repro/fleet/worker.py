"""One shard's execution loop, plus the fault-injection hook.

A shard owns a private result store under
``<store>/shards/shard-NNN/`` with the same file naming as the main
store, and works through its task list with exactly the serial
runner's write path: compute the cell, guard it against the declared
absolute bounds, append it.  Before each cell it appends a ``claim``
lease to the shared log, after each an unconditional ``done`` — so a
crash leaves an orphaned claim behind for the supervisor to see, and
a retry wave resumes from the shard store (cells already recorded are
not recomputed, only re-acknowledged).

Fault injection (:class:`SimulatedCrash`) models a worker dying
mid-cell: after ``kill_after`` completed cells the shard raises
between the claim and the compute, and the process wrapper turns that
into ``os._exit(1)`` — no cleanup, no flush, exactly what a killed
host looks like to the supervisor.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from ..lab.runner import compute_cell, guard_record_bounds, set_shard
from ..lab.spec import ExperimentSpec
from ..lab.store import ResultStore
from .leases import EV_CLAIM, EV_DONE, append_lease
from .plan import Task

SHARDS_DIR = "shards"


class SimulatedCrash(RuntimeError):
    """Injected worker death (fleet fault testing)."""


def shard_store_root(root: Path, shard: int) -> Path:
    return Path(root) / SHARDS_DIR / f"shard-{shard:03d}"


def execute_shard_tasks(specs: Sequence[ExperimentSpec], root: Path,
                        shard: int, tasks: Sequence[Task],
                        attempt: int, engine: str = "python",
                        kill_after: Optional[int] = None) -> int:
    """Run ``tasks`` against shard ``shard``'s local store.

    Returns the number of cells acknowledged (computed or found
    already recorded by a previous attempt).  ``kill_after`` raises
    :class:`SimulatedCrash` mid-cell once that many cells completed.
    """
    set_shard(shard)
    store = ResultStore(shard_store_root(root, shard))
    done = 0
    for task in tasks:
        spec = specs[task.spec_index]
        append_lease(root, EV_CLAIM, spec.name, task.key, shard, attempt)
        if kill_after is not None and done >= kill_after:
            raise SimulatedCrash(
                f"shard {shard} killed mid-cell after {done} cells")
        if task.key not in store.load_cells(spec):
            record = compute_cell(spec, task.n, task.prover, task.trials,
                                  engine=engine)
            guard_record_bounds(spec, record)
            store.append_cell(spec, record)
        append_lease(root, EV_DONE, spec.name, task.key, shard, attempt)
        done += 1
    return done


def worker_main(specs: Sequence[ExperimentSpec], root: Path, shard: int,
                tasks: Sequence[Task], attempt: int, engine: str,
                kill_after: Optional[int]) -> None:
    """Process entry point: a simulated crash dies the hard way."""
    import os
    try:
        execute_shard_tasks(specs, root, shard, tasks, attempt,
                            engine=engine, kill_after=kill_after)
    except SimulatedCrash:
        os._exit(1)


def shard_roots(root: Path) -> List[Path]:
    """Existing shard store roots under ``root``, in shard order."""
    shards = Path(root) / SHARDS_DIR
    if not shards.is_dir():
        return []
    return sorted(p for p in shards.iterdir()
                  if p.is_dir() and p.name.startswith("shard-"))
