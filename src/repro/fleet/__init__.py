"""Sharded scale-out lab runner: experiments at n in the tens of
thousands.

The fleet partitions a lab spec's cell grid round-robin across worker
processes, each writing to a private shard store and journaling
claim/done leases to a shared append-only log.  Dead shards are
re-forked with exponential backoff and resume from their store;
whatever survives every retry is stolen inline by the supervisor.
The shard stores then merge last-wins into the main store, producing
— faults on or off — exactly the deterministic fields a serial
``lab run`` would have recorded (``fleet diff`` is the CI gate).

See ``docs/FLEET.md`` for the protocol walk-through.
"""

from .leases import (append_lease, leases_path, lease_states,
                     orphaned_keys, scan_leases)
from .plan import Task, partition, plan_tasks, spec_tasks
from .supervisor import (DEFAULT_BACKOFF, DEFAULT_RETRIES, fleet_status,
                         merge_shards, run_fleet)
from .verify import diff_stores, render_diff
from .worker import (SimulatedCrash, execute_shard_tasks, shard_roots,
                     shard_store_root)

__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "SimulatedCrash",
    "Task",
    "append_lease",
    "diff_stores",
    "execute_shard_tasks",
    "fleet_status",
    "lease_states",
    "leases_path",
    "merge_shards",
    "orphaned_keys",
    "partition",
    "plan_tasks",
    "render_diff",
    "run_fleet",
    "scan_leases",
    "shard_roots",
    "shard_store_root",
    "spec_tasks",
]
