"""The fleet supervisor: fork shards, retry the dead, steal the rest.

``run_fleet`` drives one sharded sweep end to end:

1. **Plan** — expand the specs to the canonical serial task order,
   drop cells the main store already has (resume-from-store), and
   partition round-robin across ``shards``.
2. **Waves** — fork one worker process per shard with outstanding
   work.  A worker that dies (crash, kill, fault injection) fails its
   wave; the supervisor backs off exponentially and re-forks it, up
   to ``retries`` extra waves.  Each retry resumes from the shard's
   local store, so completed cells are never recomputed and a crash
   mid-cell costs exactly that one cell.
3. **Steal** — cells still missing after the last wave are executed
   inline by the supervisor into the owning shard's store (the
   orphaned claims in the lease log are exactly these).
4. **Merge** — shard stores are folded into the main store in the
   canonical task order, last-wins.  Records are deterministic
   functions of ``(spec, n, prover, trials, seed)``, so the merged
   store agrees with a serial ``lab run`` on every deterministic
   field regardless of shard count, crashes, or retry history —
   ``fleet diff`` is the gate that asserts it.

The ``shard`` provenance a record carries is its *partition*
assignment (stolen cells keep their owning shard's number); ``host``
names the machine that recorded it.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..core.runner import _fork_pool_context
from ..lab.runner import set_shard
from ..lab.spec import ExperimentSpec
from ..lab.store import DETERMINISTIC_FIELDS, ResultStore
from ..obs.session import ObsSession, active, merge_collected
from .leases import scan_leases, orphaned_keys, shard_heartbeats
from .plan import Task, partition, plan_tasks, spec_tasks
from .worker import (SimulatedCrash, execute_shard_tasks, shard_obs_path,
                     shard_roots, shard_store_root, worker_main)

#: Default bounded-retry policy: how many extra waves a dead shard
#: gets, and the base of the exponential backoff between waves.
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.25


def _project(record: Dict[str, Any]) -> Dict[str, Any]:
    return {name: record.get(name) for name in DETERMINISTIC_FIELDS}


def _remaining(spec_by_index: Sequence[ExperimentSpec],
               root: Path, shard: int,
               tasks: Sequence[Task]) -> List[Task]:
    """The shard's tasks whose cell is not yet in its local store."""
    store = ResultStore(shard_store_root(root, shard))
    cached: Dict[int, Dict[str, Any]] = {}
    left = []
    for task in tasks:
        if task.spec_index not in cached:
            cached[task.spec_index] = store.load_cells(
                spec_by_index[task.spec_index])
        if task.key not in cached[task.spec_index]:
            left.append(task)
    return left


def _run_wave(specs: Sequence[ExperimentSpec], root: Path,
              work: Dict[int, List[Task]], attempt: int, engine: str,
              kill_shard: Optional[int], kill_after: Optional[int],
              trace_ctx: Optional[Dict[str, Any]] = None) -> List[int]:
    """Execute one wave (one process per shard with work); returns the
    shards that died.  ``trace_ctx`` is propagated to forked workers
    so their buffered spans link back to the supervisor's
    ``fleet.wave`` span.  Platforms without fork run shards inline
    (spans nest physically — no context files needed), with
    :class:`SimulatedCrash` still modelling the death."""
    ctx = _fork_pool_context()
    failed: List[int] = []
    if ctx is None:
        for shard, tasks in sorted(work.items()):
            ka = kill_after if (attempt == 0
                                and shard == kill_shard) else None
            try:
                execute_shard_tasks(specs, root, shard, tasks, attempt,
                                    engine=engine, kill_after=ka)
            except SimulatedCrash:
                failed.append(shard)
        set_shard(0)
        return failed
    procs = []
    for shard, tasks in sorted(work.items()):
        ka = kill_after if (attempt == 0 and shard == kill_shard) else None
        proc = ctx.Process(target=worker_main,
                           args=(specs, root, shard, tasks, attempt,
                                 engine, ka, trace_ctx))
        proc.start()
        procs.append((shard, proc))
    for shard, proc in procs:
        proc.join()
        if proc.exitcode != 0:
            failed.append(shard)
    return failed


def _merge_wave_obs(root: Path, attempt: int, shards: Sequence[int],
                    sess: Optional[ObsSession]) -> None:
    """Fold the wave's worker-exported obs buffers into the ambient
    session, in shard order (deterministic merge order, same contract
    as the fork-pool trial merge)."""
    if sess is None:
        return
    for shard in sorted(shards):
        path = shard_obs_path(root, shard, attempt)
        if not path.exists():
            continue
        try:
            payload = json.loads(path.read_text(encoding="ascii"))
        except (OSError, json.JSONDecodeError):
            continue
        merge_collected(sess, (payload.get("spans", []),
                               payload.get("metrics", {})))


def merge_shards(specs: Sequence[ExperimentSpec],
                 store: ResultStore) -> Dict[str, int]:
    """Fold every shard store under ``store.root`` into the main
    store, appending cells in canonical task order (last-wins; cells
    already present with identical deterministic fields are skipped,
    so merging is idempotent)."""
    roots = shard_roots(store.root)
    shard_stores = [ResultStore(path) for path in roots]
    appended = skipped = 0
    for index, spec in enumerate(specs):
        collected: Dict[str, Dict[str, Any]] = {}
        for shard_store in shard_stores:
            for key, record in shard_store.load_cells(spec).items():
                collected.setdefault(key, record)
        if not collected:
            continue
        main = store.load_cells(spec)
        ordered = [t.key for t in spec_tasks(spec, index, quick=False)]
        ordered.extend(sorted(set(collected) - set(ordered)))
        for key in ordered:
            record = collected.get(key)
            if record is None:
                continue
            if key in main and _project(main[key]) == _project(record):
                skipped += 1
                continue
            store.append_cell(spec, record)
            appended += 1
    return {"appended": appended, "skipped": skipped,
            "shard_stores": len(shard_stores)}


def run_fleet(specs: Sequence[ExperimentSpec], store: ResultStore,
              shards: int, *, quick: bool = False,
              engine: str = "python",
              retries: int = DEFAULT_RETRIES,
              backoff: float = DEFAULT_BACKOFF,
              kill_shard: Optional[int] = None,
              kill_after: Optional[int] = None,
              merge: bool = True) -> Dict[str, Any]:
    """One sharded sweep (see the module docstring for the protocol).

    Returns a summary; ``ok`` is False only if cells are still
    missing after the steal pass (which cannot happen unless a cell
    itself raises deterministically)."""
    start = time.perf_counter()
    root = store.root
    if kill_shard is not None and kill_after is None:
        kill_after = 1
    pending, replayed = plan_tasks(specs, store, quick)
    assigned = partition(pending, shards)
    sess = active()
    outer = nullcontext() if sess is None else sess.span(
        "fleet.run", shards=shards, pending=len(pending),
        replayed=replayed, quick=quick, engine=engine)
    waves: List[Dict[str, Any]] = []
    stolen = 0
    with outer as span:
        if span is not None:
            # Root the whole run under the session's trace id (serve
            # stamps request roots the same way): worker exports link
            # to wave spans, wave spans nest here, so a stitcher sees
            # one connected tree.
            span.meta["trace"] = sess.trace_id
        for attempt in range(retries + 1):
            work = {shard: left for shard, tasks in enumerate(assigned)
                    if (left := _remaining(specs, root, shard, tasks))}
            if not work:
                break
            wave_cm = nullcontext() if sess is None else sess.span(
                "fleet.wave", attempt=attempt, shards=len(work))
            with wave_cm as wave_span:
                # The wave span's context rides into every forked
                # worker; their exported roots link back to it, so a
                # stitched run directory shows one connected tree per
                # wave.
                trace_ctx = None if sess is None \
                    else sess.trace_context()
                failed = _run_wave(specs, root, work, attempt, engine,
                                   kill_shard, kill_after, trace_ctx)
                _merge_wave_obs(root, attempt, sorted(work), sess)
                if wave_span is not None:
                    wave_span.note(failed=failed)
            waves.append({"attempt": attempt,
                          "shards": sorted(work),
                          "cells": sum(map(len, work.values())),
                          "failed": failed})
            if not failed:
                break
            if attempt < retries:
                time.sleep(backoff * (2 ** attempt))
        # Steal pass: whatever is still missing, the supervisor runs
        # inline into the owning shard's store.
        steal_cm = nullcontext() if sess is None else sess.span(
            "fleet.steal")
        with steal_cm:
            for shard, tasks in enumerate(assigned):
                left = _remaining(specs, root, shard, tasks)
                if not left:
                    continue
                execute_shard_tasks(specs, root, shard, left,
                                    attempt=retries + 1, engine=engine)
                stolen += len(left)
        set_shard(0)
        leftover = sum(len(_remaining(specs, root, shard, tasks))
                       for shard, tasks in enumerate(assigned))
        merged = merge_shards(specs, store) if merge else None
        if span is not None:
            span.set(waves=len(waves), stolen=stolen, leftover=leftover)
        if sess is not None and sess.metrics_enabled:
            metrics = sess.metrics
            metrics.counter("fleet/cells/planned").inc(len(pending))
            metrics.counter("fleet/cells/stolen").inc(stolen)
            metrics.counter("fleet/shards/died").inc(
                sum(len(w["failed"]) for w in waves))
            if merged is not None:
                metrics.counter("fleet/cells/merged").inc(
                    merged["appended"])
    return {
        "store": str(root), "shards": shards, "quick": quick,
        "engine": engine, "planned": len(pending),
        "replayed": replayed,
        "per_shard": [len(bucket) for bucket in assigned],
        "waves": waves, "stolen": stolen, "merged": merged,
        "ok": leftover == 0,
        "wall": round(time.perf_counter() - start, 3),
    }


def fleet_status(store: ResultStore,
                 specs: Sequence[ExperimentSpec]) -> Dict[str, Any]:
    """Forensics view of a fleet root: per-shard recorded cell counts,
    lease heartbeats (cells claimed/done and last-append age — a
    stalled shard shows a growing age), plus the lease log's
    claim/done/orphan tallies."""
    events = scan_leases(store.root)
    orphans = orphaned_keys(events)
    beats = shard_heartbeats(events)
    shard_rows = []
    for path in shard_roots(store.root):
        shard_store = ResultStore(path)
        cells = sum(len(shard_store.load_cells(spec)) for spec in specs)
        try:
            number = int(path.name.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            number = None
        beat = beats.get(number, {})
        shard_rows.append({
            "shard": path.name, "cells": cells,
            "claimed": beat.get("claimed", 0),
            "done": beat.get("done", 0),
            "last_age": beat.get("last_age"),
        })
    return {
        "store": str(store.root),
        "shards": shard_rows,
        "leases": {
            "events": len(events),
            "claims": sum(e["event"] == "claim" for e in events),
            "done": sum(e["event"] == "done" for e in events),
            "orphaned": [{"spec": spec, "key": key}
                         for spec, key in orphans],
        },
    }
