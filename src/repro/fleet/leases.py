"""The shared lease log: the fleet's append-only claim/done journal.

Every shard announces cell ownership by appending single-line JSON
records to ``<store>/fleet/leases.jsonl`` — a ``claim`` immediately
before executing a cell, a ``done`` immediately after the cell's
record landed in the shard-local store.  Appends go through one
``os.write`` on an ``O_APPEND`` descriptor, so concurrent shards
interleave whole lines, never fragments (POSIX appends of a few
hundred bytes are atomic on local filesystems).

The log is the crash-forensics side of the resume protocol: a cell
whose last event is a ``claim`` with no matching ``done`` was in
flight when its shard died (:func:`orphaned_keys`); the supervisor
re-runs it, and the shard store's resume-from-store scan makes the
re-run idempotent.  Like the result store, the log is last-wins and
append-only — recovery never rewrites history, it appends more.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Subdirectory of the store root holding fleet coordination state.
FLEET_DIR = "fleet"
LEASES_FILE = "leases.jsonl"

EV_CLAIM = "claim"
EV_DONE = "done"


def leases_path(root: Path) -> Path:
    return Path(root) / FLEET_DIR / LEASES_FILE


def append_lease(root: Path, event: str, spec: str, key: str,
                 shard: int, attempt: int) -> None:
    """Append one lease event as a single atomic line."""
    path = leases_path(root)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"event": event, "spec": spec, "key": key,
              "shard": shard, "attempt": attempt,
              "ts": round(time.time(), 3)}
    line = json.dumps(record, sort_keys=True) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("ascii"))
    finally:
        os.close(fd)


def scan_leases(root: Path) -> List[Dict[str, Any]]:
    """Every lease event, in append order (empty if no fleet ran)."""
    path = leases_path(root)
    if not path.exists():
        return []
    events = []
    with path.open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def lease_states(events: List[Dict[str, Any]]
                 ) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Last event per ``(spec, key)`` — the cell's current lease state."""
    states: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for event in events:
        states[(event["spec"], event["key"])] = event
    return states


def orphaned_keys(events: List[Dict[str, Any]]
                  ) -> List[Tuple[str, str]]:
    """Cells claimed but never completed — their shard died mid-cell."""
    return sorted((spec, key) for (spec, key), event
                  in lease_states(events).items()
                  if event["event"] == EV_CLAIM)


def shard_heartbeats(events: List[Dict[str, Any]],
                     now: Optional[float] = None
                     ) -> Dict[int, Dict[str, Any]]:
    """Per-shard liveness from the lease log, read-only: cells claimed
    and completed, the last append's timestamp, and its age in seconds
    (None for logs written before timestamps existed) — so a stalled
    shard shows up in ``fleet status`` before the retry wave fires."""
    if now is None:
        now = time.time()
    beats: Dict[int, Dict[str, Any]] = {}
    for event in events:
        shard = event.get("shard")
        if shard is None:
            continue
        beat = beats.setdefault(shard, {"claimed": 0, "done": 0,
                                        "last_ts": None,
                                        "last_age": None})
        if event["event"] == EV_CLAIM:
            beat["claimed"] += 1
        elif event["event"] == EV_DONE:
            beat["done"] += 1
        ts = event.get("ts")
        if ts is not None:
            beat["last_ts"] = ts
    for beat in beats.values():
        if beat["last_ts"] is not None:
            beat["last_age"] = round(max(0.0, now - beat["last_ts"]), 3)
    return beats
