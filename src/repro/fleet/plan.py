"""Deterministic expansion and partitioning of lab grids into shards.

A fleet run executes exactly the cells a serial ``lab run`` would:
for every spec, the quick grid first, then (unless quick-only) the
full grid, with duplicate cell keys collapsed to their first
occurrence.  :func:`spec_tasks` reproduces that order exactly, so the
canonical task list — and therefore the merged store — is a pure
function of the spec registry, independent of shard count.

Partitioning is plain round-robin (:func:`partition`): task ``i``
belongs to shard ``i % shards``.  Because tasks are enumerated in
canonical order, the partition is deterministic too — a crashed fleet
re-plans to the identical assignment, which is what lets the lease
log and the shard-local stores act as the resume protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..lab.runner import spec_cells
from ..lab.spec import ExperimentSpec
from ..lab.store import ResultStore, cell_key


@dataclass(frozen=True)
class Task:
    """One plannable cell: a spec (by index into the run's spec list)
    and the (n, prover, trials) point, with its store key."""

    spec_index: int
    spec_name: str
    n: int
    prover: str
    trials: int
    key: str


def spec_tasks(spec: ExperimentSpec, spec_index: int,
               quick: bool) -> List[Task]:
    """One spec's cells in serial ``lab run`` order (quick grid, then
    the full grid unless ``quick``), deduplicated by cell key."""
    cells = list(spec_cells(spec, True))
    if not quick:
        cells.extend(spec_cells(spec, False))
    tasks: List[Task] = []
    seen = set()
    for n, prover, trials in cells:
        key = cell_key(n, prover, trials, spec.seed)
        if key in seen:
            continue
        seen.add(key)
        tasks.append(Task(spec_index, spec.name, n, prover, trials, key))
    return tasks


def plan_tasks(specs: Sequence[ExperimentSpec], store: ResultStore,
               quick: bool) -> Tuple[List[Task], int]:
    """The canonical pending-task list: every cell the run needs,
    minus cells the main store already has (resume-from-store, same
    as serial ``lab run``).  Returns ``(pending, replayed)``."""
    pending: List[Task] = []
    replayed = 0
    for index, spec in enumerate(specs):
        stored = store.load_cells(spec)
        for task in spec_tasks(spec, index, quick):
            if task.key in stored:
                replayed += 1
            else:
                pending.append(task)
    return pending, replayed


def partition(tasks: Sequence[Task], shards: int) -> List[List[Task]]:
    """Round-robin assignment: task ``i`` goes to shard ``i % shards``."""
    if shards < 1:
        raise ValueError(f"need at least one shard (got {shards})")
    buckets: List[List[Task]] = [[] for _ in range(shards)]
    for index, task in enumerate(tasks):
        buckets[index % shards].append(task)
    return buckets


def tasks_jsonable(tasks: Sequence[Task]) -> List[Dict[str, Any]]:
    return [{"spec": t.spec_name, "n": t.n, "prover": t.prover,
             "trials": t.trials, "key": t.key} for t in tasks]
