"""The ``python -m repro fleet`` command group.

``fleet run``    sharded sweep: plan the pending cells, partition
                 round-robin over ``--shards`` worker processes,
                 retry dead shards with backoff, steal what's left,
                 merge into the main store.  Faults off, the merged
                 store matches a serial ``lab run`` on every
                 deterministic field.
``fleet status`` forensics: per-shard recorded cells, lease
                 heartbeats (done/claimed counts and last-append
                 age), and the claim/done/orphan tallies.
``fleet merge``  fold existing shard stores into the main store
                 (idempotent; the manual recovery path).
``fleet diff``   compare two stores on the deterministic fields;
                 exit 1 on any difference (the CI byte-identity
                 gate).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from ..lab.spec import get_specs
from ..lab.store import ResultStore, default_store_root
from .supervisor import (DEFAULT_BACKOFF, DEFAULT_RETRIES, fleet_status,
                         merge_shards, run_fleet)
from .verify import diff_stores, render_diff


def _store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(Path(args.store) if args.store else None)


def cmd_fleet_run(args: argparse.Namespace) -> int:
    specs = get_specs(args.spec or None)
    store = _store(args)
    summary = run_fleet(specs, store, args.shards, quick=args.quick,
                        engine=args.engine, retries=args.retries,
                        backoff=args.backoff,
                        kill_shard=args.kill_shard,
                        kill_after=args.kill_after,
                        merge=not args.no_merge)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"fleet run -> {summary['store']} "
              f"({summary['shards']} shards)")
        print(f"  planned {summary['planned']} cells "
              f"({summary['replayed']} already stored), "
              f"per shard {summary['per_shard']}")
        for wave in summary["waves"]:
            died = (f", died: {wave['failed']}" if wave["failed"]
                    else "")
            print(f"  wave {wave['attempt']}: shards {wave['shards']} "
                  f"({wave['cells']} cells){died}")
        if summary["stolen"]:
            print(f"  stole {summary['stolen']} cells inline")
        if summary["merged"] is not None:
            merged = summary["merged"]
            print(f"  merged {merged['appended']} cells "
                  f"({merged['skipped']} already identical) from "
                  f"{merged['shard_stores']} shard stores")
        print(f"fleet: {'OK' if summary['ok'] else 'FAIL'} "
              f"in {summary['wall']:.3f}s")
    return 0 if summary["ok"] else 1


def cmd_fleet_status(args: argparse.Namespace) -> int:
    specs = get_specs(args.spec or None)
    store = _store(args)
    status = fleet_status(store, specs)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(f"fleet status -> {status['store']}")
        for row in status["shards"]:
            age = row.get("last_age")
            heartbeat = "no heartbeat" if age is None \
                else f"last lease {age:.1f}s ago"
            print(f"  {row['shard']}: {row['cells']} cells, "
                  f"{row.get('done', 0)}/{row.get('claimed', 0)} "
                  f"done/claimed, {heartbeat}")
        leases = status["leases"]
        print(f"  leases: {leases['claims']} claims, "
              f"{leases['done']} done, "
              f"{len(leases['orphaned'])} orphaned")
        for orphan in leases["orphaned"]:
            print(f"    orphan {orphan['spec']}: {orphan['key']}")
    return 0


def cmd_fleet_merge(args: argparse.Namespace) -> int:
    specs = get_specs(args.spec or None)
    store = _store(args)
    merged = merge_shards(specs, store)
    if args.json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        print(f"fleet merge -> {store.root}: {merged['appended']} "
              f"appended, {merged['skipped']} already identical, "
              f"{merged['shard_stores']} shard stores")
    return 0


def cmd_fleet_diff(args: argparse.Namespace) -> int:
    specs = get_specs(args.spec or None)
    report = diff_stores(specs, ResultStore(Path(args.store_a)),
                         ResultStore(Path(args.store_b)))
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print("\n".join(render_diff(report)))
    return 0 if report["ok"] else 1


def add_fleet_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``fleet`` command group to the top-level CLI."""
    fleet = sub.add_parser(
        "fleet", help="sharded scale-out sweep executor over the lab "
                      "store")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--spec", action="append", metavar="NAME",
                       help="restrict to this spec (repeatable; "
                            "default: all)")
        p.add_argument("--store", metavar="DIR",
                       help=f"result store root (default: "
                            f"{default_store_root()})")

    p = fleet_sub.add_parser(
        "run", help="execute specs sharded and merge into the store")
    common(p)
    p.add_argument("--shards", type=int, default=2,
                   help="worker shards to partition the grid over")
    p.add_argument("--quick", action="store_true",
                   help="quick grids only (CI smoke scale)")
    p.add_argument("--engine", default="python",
                   choices=["python", "numpy"],
                   help="trial engine for sweep cells")
    p.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                   help="extra waves a dead shard is re-forked")
    p.add_argument("--backoff", type=float, default=DEFAULT_BACKOFF,
                   help="base seconds of exponential backoff between "
                        "waves")
    p.add_argument("--kill-shard", type=int, metavar="K",
                   help="fault injection: kill shard K mid-sweep on "
                        "its first attempt")
    p.add_argument("--kill-after", type=int, metavar="J",
                   help="fault injection: the kill fires after J "
                        "completed cells (default 1)")
    p.add_argument("--no-merge", action="store_true",
                   help="leave results in the shard stores (merge "
                        "later with `fleet merge`)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary")
    p.set_defaults(func=cmd_fleet_run)

    p = fleet_sub.add_parser(
        "status", help="per-shard cells and lease-log forensics")
    common(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable status")
    p.set_defaults(func=cmd_fleet_status)

    p = fleet_sub.add_parser(
        "merge", help="fold shard stores into the main store")
    common(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary")
    p.set_defaults(func=cmd_fleet_merge)

    p = fleet_sub.add_parser(
        "diff", help="compare two stores on deterministic fields")
    p.add_argument("store_a", metavar="STORE_A")
    p.add_argument("store_b", metavar="STORE_B")
    p.add_argument("--spec", action="append", metavar="NAME",
                   help="restrict to this spec (repeatable; "
                        "default: all)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(func=cmd_fleet_diff)
