"""Deterministic-field store comparison: the fleet's byte-identity gate.

A fleet run must be indistinguishable from a serial ``lab run`` on
every deterministic field — same cells, same bits, same accept
counts, same per-round layout, same extra payload.  Wall-clock,
worker count, engine, shard and host are instrumentation and are
deliberately outside the comparison, exactly as in ``lab check``.

``diff_stores`` projects both stores' cells onto
:data:`~repro.lab.store.DETERMINISTIC_FIELDS` and reports cells
missing from either side plus field-level drift, per spec.  CI runs
it between a serial store and a sharded (and a fault-injected) fleet
store; any difference is a hard failure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..lab.spec import ExperimentSpec
from ..lab.store import DETERMINISTIC_FIELDS, ResultStore


def _project(record: Dict[str, Any]) -> Dict[str, Any]:
    return {name: record.get(name) for name in DETERMINISTIC_FIELDS}


def diff_stores(specs: Sequence[ExperimentSpec], store_a: ResultStore,
                store_b: ResultStore) -> Dict[str, Any]:
    """Compare two stores on the deterministic fields, spec by spec."""
    entries: List[Dict[str, Any]] = []
    ok = True
    for spec in specs:
        cells_a = store_a.load_cells(spec)
        cells_b = store_b.load_cells(spec)
        missing_b = sorted(set(cells_a) - set(cells_b))
        missing_a = sorted(set(cells_b) - set(cells_a))
        drift = []
        for key in sorted(set(cells_a) & set(cells_b)):
            pa, pb = _project(cells_a[key]), _project(cells_b[key])
            fields = [name for name in DETERMINISTIC_FIELDS
                      if pa[name] != pb[name]]
            if fields:
                drift.append({"cell": key, "fields": fields,
                              "a": {f: pa[f] for f in fields},
                              "b": {f: pb[f] for f in fields}})
        spec_ok = not (missing_a or missing_b or drift)
        ok = ok and spec_ok
        entries.append({"spec": spec.name, "ok": spec_ok,
                        "cells": len(set(cells_a) | set(cells_b)),
                        "only_in_a": missing_b, "only_in_b": missing_a,
                        "drift": drift})
    return {"ok": ok, "a": str(store_a.root), "b": str(store_b.root),
            "specs": entries}


def render_diff(report: Dict[str, Any]) -> List[str]:
    lines = [f"fleet diff {report['a']} vs {report['b']}"]
    for entry in report["specs"]:
        flag = "ok" if entry["ok"] else "FAIL"
        lines.append(f"  [{flag:>4}] {entry['spec']}: "
                     f"{entry['cells']} cells")
        for key in entry["only_in_a"]:
            lines.append(f"         only in A: {key}")
        for key in entry["only_in_b"]:
            lines.append(f"         only in B: {key}")
        for drift in entry["drift"]:
            lines.append(f"         drift {drift['cell']}: "
                         f"{drift['fields']} a={drift['a']} "
                         f"b={drift['b']}")
    lines.append(f"stores {'MATCH' if report['ok'] else 'DIFFER'} "
                 f"on deterministic fields")
    return lines
