"""Lemma 3.12: packing far-apart distributions in L1.

The quantitative engine of the Ω(log log n) lower bound: a set of
distributions on a domain of size ``d`` that are pairwise more than
1/2 apart in L1 has size < ``5^d``.  This module implements the lemma's
ingredients exactly as in the paper — L1 distance, the volume of L1
balls ``vol(B(x, r)) = (4r)^d / (d+1)!``, and the ratio bound — plus
numeric verifiers used by the tests (disjointness of the packed balls,
containment in ``B(0, 5/4)``, Monte-Carlo volume cross-checks).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Mapping, Sequence

Distribution = Mapping[object, float]


def l1_distance(mu: Distribution, eta: Distribution) -> float:
    """``‖μ − η‖₁ = Σ_ω |μ(ω) − η(ω)|`` over the union support."""
    support = set(mu) | set(eta)
    return sum(abs(mu.get(w, 0.0) - eta.get(w, 0.0)) for w in support)


def total_variation(mu: Distribution, eta: Distribution) -> float:
    """TV distance = half the L1 distance."""
    return l1_distance(mu, eta) / 2.0


def event_gap_lower_bound(mu_q: float, eta_q: float) -> float:
    """The standard fact the paper invokes after Corollary 3.10: an
    event with probability gap ``p`` forces ``‖μ − η‖₁ ≥ 2p``."""
    return 2.0 * abs(mu_q - eta_q)


def l1_ball_volume(d: int, radius: float) -> float:
    """The paper's volume formula ``vol(B(x, r)) = (4r)^d / (d+1)!``.

    (This is the volume of the L1 ball intersected with the simplex
    slab the paper works in; only the *ratio* of two volumes at
    different radii matters for the lemma, and the ratio is exact.)
    """
    if d < 1:
        raise ValueError("dimension must be at least 1")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return (4.0 * radius) ** d / math.factorial(d + 1)


def packing_bound(d: int) -> float:
    """Lemma 3.12's cap: at most ``5^d`` pairwise->1/2-apart distributions
    fit on a domain of size ``d`` (vol(B(0,5/4)) / vol(B(0,1/4)))."""
    if d < 1:
        raise ValueError("dimension must be at least 1")
    return (l1_ball_volume(d, 5.0 / 4.0) / l1_ball_volume(d, 1.0 / 4.0))


def check_pairwise_separation(distributions: Sequence[Distribution],
                              min_distance: float) -> bool:
    """Whether all pairs are more than ``min_distance`` apart in L1."""
    for i in range(len(distributions)):
        for j in range(i + 1, len(distributions)):
            if l1_distance(distributions[i], distributions[j]) \
                    <= min_distance:
                return False
    return True


def verify_balls_disjoint(distributions: Sequence[Distribution],
                          radius: float,
                          probes: int,
                          rng: random.Random) -> bool:
    """Monte-Carlo check of the lemma's disjointness step: random points
    inside ``B(μ_i, radius)`` must be outside every other ball.

    Points are sampled as perturbations of μ_i with L1 norm < radius.
    """
    dists = [dict(mu) for mu in distributions]
    support: List[object] = sorted(
        {w for mu in dists for w in mu}, key=repr)
    for i, mu in enumerate(dists):
        for _ in range(probes):
            point = dict(mu)
            budget = rng.uniform(0, radius)
            # Move `budget` of mass along random coordinates (signed).
            for __ in range(max(1, len(support) // 2)):
                w = support[rng.randrange(len(support))]
                shift = rng.uniform(-budget / 2, budget / 2)
                point[w] = point.get(w, 0.0) + shift
            if l1_distance(point, mu) >= radius:
                continue  # overshot the ball; skip this probe
            for j, eta in enumerate(dists):
                if j != i and l1_distance(point, eta) < radius:
                    return False
    return True


def max_far_apart_family(d: int) -> int:
    """The integer version of Lemma 3.12's cap, ``⌊5^d⌋`` (exact)."""
    return 5 ** d


def empirical_distribution(samples: Iterable[object]) -> Dict[object, float]:
    """The empirical distribution of a sample sequence."""
    counts: Dict[object, int] = {}
    total = 0
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
        total += 1
    if total == 0:
        raise ValueError("no samples")
    return {w: c / total for w, c in counts.items()}


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: Theorem 1.4's packing bound, as the ledger sees it: the implied
#: minimum protocol length of the E4 table is capped by
#: loglog2(n) + 1 — an absolute bound, tight (equality) at the large
#: end of the committed grid.
COST_DECLARATIONS = (
    CostDeclaration(
        key="packing",
        title="Theorem 1.4 packing bound — implied protocol length",
        pattern="", asymptotic="Ω(log log n)",
        reference="Theorem 1.4 / Section 6 (packing argument)",
        phases=(
            phase("length", "analytic", "loglog2(n) + 1",
                  "minimum simple-protocol length implied by the "
                  "family packing count"),
        ),
        total=phase("total", "analytic", "loglog2(n) + 1",
                    "Theorem 1.4: Ω(log log n) is the matching lower "
                    "bound"),
    ),
)
