"""Theorem 1.4's quantitative content: the Ω(log log n) lower bound.

Putting the pieces together exactly as the paper's final proof does:

1. A correct simple protocol of length L induces, per rigid graph
   ``F ∈ 𝓕``, a distribution ``μ_A(F)`` on subsets of the prover's
   message space — a domain of size ``d = 2^{2^L}``.
2. Lemma 3.11: these distributions are pairwise ≥ 2/3 apart in L1.
3. Lemma 3.12: at most ``5^d`` such distributions fit, so
   ``|𝓕| < 5^{2^{2^L}}``.
4. ``|𝓕| = 2^{Ω(n²)}`` rigid pairwise-non-isomorphic graphs exist,
   forcing ``L ≥ log₂ log₂ log₅ |𝓕| = Ω(log log n)``.

This module computes step 4 numerically: family sizes (exact by
enumeration for n ≤ 7, the ``2^{C(n,2)}/n!`` counting bound beyond)
and the implied minimum protocol length for each n.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..graphs.families import count_rigid_classes

#: Exact counts of connected rigid (asymmetric) isomorphism classes for
#: small n, cached to keep repeated table construction cheap.  n = 6 is
#: the smallest size with any asymmetric graph.
_EXACT_RIGID_COUNTS = {1: 1, 2: 0, 3: 0, 4: 0, 5: 0, 6: 8}


def rigid_family_size(n: int, exact_limit: int = 6) -> float:
    """A lower bound on ``|𝓕(n)|``, exact for small n.

    For n beyond exhaustive reach we use the counting argument the
    paper cites: almost all of the ``2^{C(n,2)}`` labeled graphs are
    rigid, and each isomorphism class has at most ``n!`` labelings, so
    ``|𝓕| ≥ 2^{C(n,2)}/n! / 2`` (the factor 2 absorbs the vanishing
    non-rigid fraction; returned in log-space safe float form).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n <= exact_limit:
        if n not in _EXACT_RIGID_COUNTS:
            _EXACT_RIGID_COUNTS[n] = count_rigid_classes(n)
        return float(_EXACT_RIGID_COUNTS[n])
    log2_size = n * (n - 1) / 2 - math.lgamma(n + 1) / math.log(2) - 1
    return 2.0 ** log2_size if log2_size < 1000 else math.inf


def log2_rigid_family_size(n: int, exact_limit: int = 6) -> float:
    """``log₂ |𝓕(n)|`` (usable far beyond float range)."""
    if n <= exact_limit:
        size = rigid_family_size(n, exact_limit)
        return math.log2(size) if size > 0 else -math.inf
    return n * (n - 1) / 2 - math.lgamma(n + 1) / math.log(2) - 1


def min_length_for_family(log2_family_size: float) -> int:
    """The smallest L consistent with ``|𝓕| < 5^{2^{2^L}}``.

    Inverting the packing chain: a correct simple protocol needs
    ``2^{2^L} ≥ log₅ |𝓕|``, i.e. ``L ≥ log₂ log₂ (log₂|𝓕| / log₂ 5)``.
    Returns 0 when the family is too small to force anything.
    """
    if log2_family_size <= 0:
        return 0
    log5_family = log2_family_size / math.log2(5)
    if log5_family <= 1:
        return 0
    inner = math.log2(log5_family)
    if inner <= 1:
        return 1
    return max(1, math.ceil(math.log2(inner)))


def sym_dam_lower_bound(n: int) -> int:
    """Theorem 1.4 numerically: a lower bound on the length of any
    simple dAM protocol for Sym on graphs of ~2n+2 vertices, via the
    rigid family on n inner vertices.  (Lemma 3.7 transfers the bound
    to general dAM protocols at a factor 4.)"""
    return min_length_for_family(log2_rigid_family_size(n))


@dataclass(frozen=True)
class LowerBoundRow:
    """One row of the Theorem-1.4 table: n, family size, implied L."""

    inner_n: int
    total_n: int
    log2_family_size: float
    min_simple_length: int

    @property
    def loglog_n(self) -> float:
        """The comparison column: log₂ log₂ of the network size."""
        return math.log2(max(2.0, math.log2(max(2.0, self.total_n))))


def lower_bound_table(inner_sizes: List[int]) -> List[LowerBoundRow]:
    """The Theorem-1.4 reproduction table over a range of sizes."""
    rows = []
    for n in inner_sizes:
        log_size = log2_rigid_family_size(n)
        rows.append(LowerBoundRow(
            inner_n=n,
            total_n=2 * n + 2,
            log2_family_size=log_size,
            min_simple_length=min_length_for_family(log_size)))
    return rows
