"""Lemma 3.7, executable: any 1-round dAM protocol on the dumbbell
family can be made *simple* at 4× the length.

A general protocol lets the two bridge nodes ``x_A, x_B`` accept
different messages and use them arbitrarily; Definition 6's simple
form demands ``M_{x_A} = M_{x_B}`` plus a predicate on the shared
value.  The transformation (quoting the paper): "we ask the prover to
give each bridge node 4L bits, comprising the four responses it would
have given nodes ``v_A, x_A, x_B, v_B`` under Π.  Nodes
``v_A, x_A, x_B, v_B`` verify that the prover gave them the same
response, extract their part, and apply their decision function from
Π."

This module implements both halves:

* :class:`BridgeDAMProtocol` — the *general* (not necessarily simple)
  abstraction: one decision function per node, full freedom;
* :func:`lemma37_simplify` — the wrapper producing a
  :class:`~repro.lowerbound.simple.SimpleBridgeProtocol` of length 4L
  whose best-prover acceptance matches the base protocol's on every
  dumbbell (the tests verify the match challenge-by-challenge against
  brute-force search over all prover responses).

Message layout of the simplified protocol: a 4L-bit integer whose L-bit
chunks are, low to high, the Π-messages of ``v_A, x_A, x_B, v_B``.
Interior side nodes keep their original L-bit messages (their top 3L
bits are required to be zero, so the cost accounting stays honest).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Dict, Mapping

from ..graphs.dumbbell import DumbbellLayout
from ..graphs.graph import Graph
from .simple import Challenge, Response, SimpleBridgeProtocol


class BridgeDAMProtocol(ABC):
    """A general 1-round dAM protocol on lower-bound dumbbells.

    ``length`` is L; challenges and messages are ints in ``[0, 2^L)``.
    ``out_node`` is the decision of *any* node (bridge nodes included),
    with no structural restriction — the thing Lemma 3.7 tames.
    """

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ValueError("protocol length must be at least 1")
        self.length = length

    @property
    def message_space(self) -> range:
        return range(1 << self.length)

    @abstractmethod
    def out_node(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        """Decision of node ``v`` given its closed neighborhood's
        challenges and messages."""


def base_direct_acceptance(protocol: BridgeDAMProtocol, graph: Graph,
                           challenge: Challenge) -> bool:
    """Whether *some* prover response makes every node accept —
    exhaustive search over all ``2^(L·N)`` responses (tiny L, N only).
    """
    nodes = list(range(graph.n))
    space = protocol.message_space

    def local(assignment: Mapping[int, int], v: int) -> Dict[int, int]:
        closed = graph.closed_neighborhood(v)
        return {u: assignment[u] for u in closed}

    for values in itertools.product(space, repeat=len(nodes)):
        assignment = dict(zip(nodes, values))
        if all(protocol.out_node(graph, v,
                                 local_challenge(challenge, graph, v),
                                 local(assignment, v))
               for v in nodes):
            return True
    return False


def local_challenge(challenge: Challenge, graph: Graph,
                    v: int) -> Dict[int, int]:
    closed = graph.closed_neighborhood(v)
    return {u: challenge[u] for u in closed if u in challenge}


class _SimplifiedProtocol(SimpleBridgeProtocol):
    """The Lemma-3.7 wrapper (see :func:`lemma37_simplify`)."""

    def __init__(self, base: BridgeDAMProtocol, inner_n: int) -> None:
        super().__init__(length=4 * base.length)
        self.base = base
        self.inner_n = inner_n
        self.layout = DumbbellLayout(inner_n)
        self._special = (self.layout.v_a, self.layout.x_a,
                         self.layout.x_b, self.layout.v_b)

    # -- chunk plumbing ----------------------------------------------------

    def _chunk(self, packed: int, node: int) -> int:
        """Extract the Π-message of one special node from 4L bits."""
        index = self._special.index(node)
        mask = (1 << self.base.length) - 1
        return (packed >> (index * self.base.length)) & mask

    def pack(self, m_va: int, m_xa: int, m_xb: int, m_vb: int) -> int:
        """The honest prover's 4L-bit bridge/attachment message."""
        bits = self.base.length
        return (m_va | (m_xa << bits) | (m_xb << (2 * bits))
                | (m_vb << (3 * bits)))

    def _base_messages(self, v: int, m_local: Response) -> Dict[int, int]:
        """Reconstruct Π's local messages for node ``v``.

        Special nodes carry the packed value; v's own packed copy
        supplies their chunks (all copies are cross-checked equal by
        the consistency conditions below), interior nodes their plain
        message.
        """
        packed = None
        for u, value in m_local.items():
            if u in self._special:
                packed = value if packed is None else packed
        result = {}
        for u, value in m_local.items():
            if u in self._special:
                result[u] = self._chunk(packed, u)
            else:
                result[u] = value
        return result

    # -- SimpleBridgeProtocol interface --------------------------------------

    def out_side(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        own = m_local[v]
        if v in (self.layout.v_a, self.layout.v_b):
            # Attachment vertices: verify all special copies they can
            # see agree (their neighbor x_A/x_B holds one too).
            for u, value in m_local.items():
                if u in self._special and value != own:
                    return False
        else:
            # Interior node: the top 3L bits must be clear (it carries
            # an ordinary L-bit Π-message).
            if own >> self.base.length:
                return False
        return self.base.out_node(graph, v, r_local,
                                  self._base_messages(v, m_local))

    def bridge_predicate(self, graph: Graph, bridge: int,
                         r_local: Challenge, m: int) -> bool:
        # The bridge node sees the whole packed value; Π's decision at
        # the bridge needs the messages of N(bridge) ⊆ special nodes,
        # all of which are chunks of m — exactly Lemma 3.7's trick.
        messages = {u: self._chunk(m, u)
                    for u in graph.closed_neighborhood(bridge)}
        return self.base.out_node(graph, bridge, r_local, messages)


def lemma37_simplify(base: BridgeDAMProtocol,
                     inner_n: int) -> SimpleBridgeProtocol:
    """The Lemma 3.7 transformation: a simple protocol of length 4L
    whose best-prover acceptance on every ``G(F_A, F_B)`` equals the
    base protocol's."""
    return _SimplifiedProtocol(base, inner_n)


# ----------------------------------------------------------------------
# Concrete general (non-simple) toys for the tests and benchmarks
# ----------------------------------------------------------------------


class BridgeChallengeProtocol(BridgeDAMProtocol):
    """Bridge nodes demand their own message echo their own challenge;
    side nodes accept anything.  Deliberately *not* simple: the two
    bridge messages are generally different."""

    def out_node(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        layout = DumbbellLayout((graph.n - 2) // 2)
        if v in (layout.x_a, layout.x_b):
            mask = (1 << self.length) - 1
            return m_local[v] == (r_local[v] & mask)
        return True


class NeighborSumProtocol(BridgeDAMProtocol):
    """Every node checks its message against a parity of its neighbors'
    challenges — message content matters at every node, bridges
    included, and the bridge messages legitimately differ."""

    def out_node(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        mask = (1 << self.length) - 1
        expected = 0
        for u in sorted(r_local):
            expected ^= r_local[u]
        return m_local[v] == (expected & mask)
