"""The Section-3.4 lower-bound machinery: simple protocols, response-set
distributions, L1 packing, and the implied Omega(log log n) bound."""

from .bound import (LowerBoundRow, log2_rigid_family_size,
                    lower_bound_table, min_length_for_family,
                    rigid_family_size, sym_dam_lower_bound)
from .packing import (check_pairwise_separation, empirical_distribution,
                      event_gap_lower_bound, l1_ball_volume, l1_distance,
                      max_far_apart_family, packing_bound, total_variation,
                      verify_balls_disjoint)
from .transform import (BridgeChallengeProtocol, BridgeDAMProtocol,
                        NeighborSumProtocol, base_direct_acceptance,
                        lemma37_simplify)
from .simple import (AlwaysAcceptProtocol, EncodingProtocol,
                     LocalHashProtocol, SimpleBridgeProtocol, mu_a_exact,
                     direct_acceptance, lemma39_acceptance, mu_a,
                     response_set_a, response_set_b, sample_challenge)

__all__ = [name for name in dir() if not name.startswith("_")]
