"""Simple protocols on dumbbells, and their response-set semantics.

The brute-force half of the Section-3.4 lower bound machinery.  A
*simple* dAM protocol (Definition 6) is one where the two bridge nodes
``x_A, x_B`` accept only if they received the *same* prover message,
plus a local predicate ``f`` on (neighborhood challenges, the shared
message).  Lemma 3.7 says any dAM protocol can be made simple at 4×
cost; Lemmas 3.8–3.9 then characterize the best prover's acceptance
probability on ``G(F_A, F_B)`` via the *response sets*

    M_A(F, r) = { m : the message m to x_A extends to messages for
                  V_A ∪ {x_A} making that whole side accept },

and Lemma 3.11 forces the challenge-induced distributions of these
sets to be pairwise far apart for a correct Sym protocol.  All of
that is *executable* at small scale, and this module executes it:
response sets by exhaustive search over prover messages, acceptance
probabilities both via Lemma 3.9's characterization and by direct
search over full prover responses (the tests check they agree), and
the induced distributions μ_A(F).

Protocols here are intentionally tiny and abstract — messages and
challenges are L-bit integers — because the search space is
``2^{L·(n+1)}`` per challenge.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..graphs.dumbbell import DumbbellLayout, lower_bound_dumbbell
from ..graphs.graph import Graph
from .packing import empirical_distribution

Challenge = Mapping[int, int]   # node -> L-bit challenge
Response = Mapping[int, int]    # node -> L-bit prover message


class SimpleBridgeProtocol(ABC):
    """A simple 1-round dAM protocol on lower-bound dumbbells.

    ``length`` is L: challenges and messages are integers in
    ``[0, 2^L)``.  Decision functions:

    * :meth:`out_side` — the decision of a non-bridge node ``v``,
      given the dumbbell graph and the challenges/messages of its
      closed neighborhood;
    * :meth:`bridge_predicate` — the ``f_{x_A}``/``f_{x_B}`` of
      Definition 6 (the equality ``M_{x_A} = M_{x_B}`` is enforced by
      the framework, not by the predicate).
    """

    def __init__(self, length: int) -> None:
        if length < 1:
            raise ValueError("protocol length must be at least 1")
        self.length = length

    @property
    def message_space(self) -> range:
        return range(1 << self.length)

    @abstractmethod
    def out_side(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        """Decision of a non-bridge node."""

    @abstractmethod
    def bridge_predicate(self, graph: Graph, bridge: int,
                         r_local: Challenge, m: int) -> bool:
        """``f_bridge(R_{N(bridge)}, m)`` for a bridge node."""

    def analytic_response_set(self, f_side: Graph, challenge: Challenge,
                              side: str) -> Optional[FrozenSet[int]]:
        """Closed-form ``M_A/M_B`` if the protocol knows one, else None.

        Protocols with large message spaces (e.g. the n²-bit
        :class:`EncodingProtocol`) override this; the brute-force
        search is used otherwise, and the tests cross-check the two on
        protocols small enough to afford both.
        """
        return None


def _local(assignment: Mapping[int, int], graph: Graph,
           v: int) -> Dict[int, int]:
    closed = graph.closed_neighborhood(v)
    return {u: assignment[u] for u in closed if u in assignment}


def sample_challenge(layout: DumbbellLayout, length: int,
                     rng: random.Random) -> Dict[int, int]:
    """A uniform challenge for every node of the dumbbell."""
    return {v: rng.randrange(1 << length)
            for v in range(layout.total_n)}


def response_set_a(protocol: SimpleBridgeProtocol, f_side: Graph,
                   challenge: Challenge) -> FrozenSet[int]:
    """``M_A(F, r)``: messages to ``x_A`` extendable over side A.

    Exhaustive search over prover messages to ``V_A``; the graph used
    is ``G(F, F)`` as in the paper's definition.
    """
    return _response_set(protocol, f_side, challenge, side="A")


def response_set_b(protocol: SimpleBridgeProtocol, f_side: Graph,
                   challenge: Challenge) -> FrozenSet[int]:
    """``M_B(F, r)``: messages to ``x_B`` extendable over side B."""
    return _response_set(protocol, f_side, challenge, side="B")


def _response_set(protocol: SimpleBridgeProtocol, f_side: Graph,
                  challenge: Challenge, side: str) -> FrozenSet[int]:
    analytic = protocol.analytic_response_set(f_side, challenge, side)
    if analytic is not None:
        return analytic
    graph = lower_bound_dumbbell(f_side, f_side)
    layout = DumbbellLayout(f_side.n)
    if side == "A":
        side_nodes = list(layout.side_a)
        bridge = layout.x_a
    else:
        side_nodes = list(layout.side_b)
        bridge = layout.x_b

    good: List[int] = []
    space = protocol.message_space
    for m in space:
        if not protocol.bridge_predicate(graph, bridge,
                                         _local(challenge, graph, bridge),
                                         m):
            continue
        if _extends(protocol, graph, side_nodes, bridge, m, challenge):
            good.append(m)
    return frozenset(good)


def _extends(protocol: SimpleBridgeProtocol, graph: Graph,
             side_nodes: Sequence[int], bridge: int, bridge_message: int,
             challenge: Challenge) -> bool:
    """Is there an assignment of messages to ``side_nodes`` making every
    side node accept, given the bridge's message?"""
    space = protocol.message_space
    for values in itertools.product(space, repeat=len(side_nodes)):
        assignment = dict(zip(side_nodes, values))
        assignment[bridge] = bridge_message
        if all(protocol.out_side(graph, v,
                                 _local(challenge, graph, v),
                                 _local(assignment, graph, v))
               for v in side_nodes):
            return True
    return False


def lemma39_acceptance(protocol: SimpleBridgeProtocol, f_a: Graph,
                       f_b: Graph, challenges: int,
                       rng: random.Random) -> float:
    """Lemma 3.9: best-prover acceptance on ``G(F_A, F_B)`` equals
    ``Pr_r[M_A(F_A, r) ∩ M_B(F_B, r) ≠ ∅]`` — estimated by sampling."""
    layout = DumbbellLayout(f_a.n)
    hits = 0
    for _ in range(challenges):
        challenge = sample_challenge(layout, protocol.length, rng)
        set_a = response_set_a(protocol, f_a, challenge)
        set_b = response_set_b(protocol, f_b, challenge)
        if set_a & set_b:
            hits += 1
    return hits / challenges


def direct_acceptance(protocol: SimpleBridgeProtocol, f_a: Graph,
                      f_b: Graph, challenges: int,
                      rng: random.Random) -> float:
    """Best-prover acceptance by *direct* search over full responses on
    the actual graph ``G(F_A, F_B)`` — the ground truth Lemma 3.8/3.9
    must reproduce (tests compare the two with a shared seed)."""
    graph = lower_bound_dumbbell(f_a, f_b)
    layout = DumbbellLayout(f_a.n)
    side_a = list(layout.side_a)
    side_b = list(layout.side_b)
    space = protocol.message_space
    hits = 0
    for _ in range(challenges):
        challenge = sample_challenge(layout, protocol.length, rng)
        found = False
        for m in space:
            ok_a = protocol.bridge_predicate(
                graph, layout.x_a, _local(challenge, graph, layout.x_a), m)
            ok_b = protocol.bridge_predicate(
                graph, layout.x_b, _local(challenge, graph, layout.x_b), m)
            if not (ok_a and ok_b):
                continue
            if _extends(protocol, graph, side_a, layout.x_a, m, challenge) \
                    and _extends(protocol, graph, side_b, layout.x_b, m,
                                 challenge):
                found = True
                break
        if found:
            hits += 1
    return hits / challenges


def mu_a(protocol: SimpleBridgeProtocol, f_side: Graph, challenges: int,
         rng: random.Random) -> Dict[FrozenSet[int], float]:
    """The distribution ``μ_A(F)`` of the response set over challenges,
    estimated empirically (domain: subsets of the message space)."""
    layout = DumbbellLayout(f_side.n)
    samples = []
    for _ in range(challenges):
        challenge = sample_challenge(layout, protocol.length, rng)
        samples.append(response_set_a(protocol, f_side, challenge))
    return empirical_distribution(samples)


# ----------------------------------------------------------------------
# Concrete toy protocols instantiating the framework
# ----------------------------------------------------------------------


class EncodingProtocol(SimpleBridgeProtocol):
    """The canonical *correct* simple protocol (deterministic, L = n²-ish).

    The prover must hand every node of a side the full edge encoding of
    that side's graph; each node checks its own row inside the message
    and that its neighbors hold the identical message.  The bridge
    equality then accepts iff the two sides are equal as labeled
    graphs — which on the lower-bound family is exactly Sym membership.
    Its μ_A(F) distributions are point masses at distinct singletons,
    the extreme case of Lemma 3.11 (pairwise L1 distance 2).
    """

    def __init__(self, inner_n: int) -> None:
        self.inner_n = inner_n
        self.layout = DumbbellLayout(inner_n)
        bits = inner_n * (inner_n - 1) // 2
        super().__init__(length=max(1, bits))
        self._pairs = list(itertools.combinations(range(inner_n), 2))

    def encode_side(self, graph: Graph, side_offset: int) -> int:
        """Pack the side's internal edges (relative labels) into an int."""
        bits = 0
        for idx, (u, w) in enumerate(self._pairs):
            if graph.has_edge(u + side_offset, w + side_offset):
                bits |= 1 << idx
        return bits

    def _side_offset(self, v: int) -> Optional[int]:
        if v in self.layout.side_a:
            return 0
        if v in self.layout.side_b:
            return self.inner_n
        return None

    def out_side(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        offset = self._side_offset(v)
        if offset is None:
            return True
        own = m_local[v]
        rel = v - offset
        # Row check: bit for pair (rel, w) must match the actual edge.
        for idx, (u, w) in enumerate(self._pairs):
            if rel not in (u, w):
                continue
            other = (w if rel == u else u) + offset
            if bool(own >> idx & 1) != graph.has_edge(v, other):
                return False
        # Consistency with same-side neighbors (and the adjacent bridge
        # node, which must carry the side encoding too).
        return all(m_local[u] == own for u in m_local)

    def bridge_predicate(self, graph: Graph, bridge: int,
                         r_local: Challenge, m: int) -> bool:
        return True  # equality of the two bridge messages does the work

    def analytic_response_set(self, f_side: Graph, challenge: Challenge,
                              side: str) -> FrozenSet[int]:
        # Every side node (and the adjacent bridge node, via the
        # attachment vertex's consistency check) must carry exactly the
        # side's encoding: the set is the singleton {encode(F)},
        # independent of the challenge.  The brute-force search would
        # agree but needs 2^(L·n) steps; tests verify the reasoning on
        # inner graphs small enough to brute-force.
        return frozenset({self.encode_side_graph(f_side)})

    def encode_side_graph(self, f_side: Graph) -> int:
        """Encoding of a side graph given on labels ``0..n-1``."""
        bits = 0
        for idx, (u, w) in enumerate(self._pairs):
            if f_side.has_edge(u, w):
                bits |= 1 << idx
        return bits


class LocalHashProtocol(SimpleBridgeProtocol):
    """A cheap, *incorrect* protocol: every node just checks a hash of
    its own degree against its challenge.

    Its response sets carry no information about the side graph beyond
    local degrees, so μ_A(F₁) ≈ μ_A(F₂) for graphs with matching degree
    profiles — Lemma 3.11 fails, and the framework correctly brands the
    protocol unable to decide Sym on the family.
    """

    def __init__(self, length: int = 1) -> None:
        super().__init__(length)

    def out_side(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        mask = (1 << self.length) - 1
        expected = (graph.degree(v) ^ r_local[v]) & mask
        return m_local[v] == expected

    def bridge_predicate(self, graph: Graph, bridge: int,
                         r_local: Challenge, m: int) -> bool:
        return True


class AlwaysAcceptProtocol(SimpleBridgeProtocol):
    """Accepts everything — the degenerate baseline for unit tests."""

    def out_side(self, graph: Graph, v: int, r_local: Challenge,
                 m_local: Response) -> bool:
        return True

    def bridge_predicate(self, graph: Graph, bridge: int,
                         r_local: Challenge, m: int) -> bool:
        return True


def mu_a_exact(protocol: SimpleBridgeProtocol,
               f_side: Graph) -> Dict[FrozenSet[int], float]:
    """``μ_A(F)`` computed *exactly*, by enumerating every challenge.

    ``M_A(F, r)`` depends only on the challenges of side A's vertices
    and the two bridge nodes (everything a decision function on that
    side can see), so the relevant challenge space has
    ``2^(L·(n+2))`` points — exhaustively enumerable for L = 1 and
    n = 6, which upgrades the Lemma 3.11 measurements from sampled to
    exact.  Raises ``ValueError`` when the enumeration would exceed
    ~10⁶ challenges (use the sampled :func:`mu_a` there).
    """
    layout = DumbbellLayout(f_side.n)
    relevant = list(layout.side_a) + [layout.x_a, layout.x_b]
    space = protocol.message_space
    if len(space) ** len(relevant) > 1_000_000:
        raise ValueError(
            "challenge space too large for exact enumeration "
            f"({len(space)}^{len(relevant)}); use mu_a (sampled)")
    counts: Dict[FrozenSet[int], int] = {}
    total = 0
    for values in itertools.product(space, repeat=len(relevant)):
        challenge = {v: 0 for v in range(layout.total_n)}
        challenge.update(dict(zip(relevant, values)))
        key = response_set_a(protocol, f_side, challenge)
        counts[key] = counts.get(key, 0) + 1
        total += 1
    return {key: count / total for key, count in counts.items()}
