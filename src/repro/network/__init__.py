"""Network substrate: the spanning-tree proof labeling scheme shared by
every tree-aggregating protocol."""

from .namespace import Namespace
from .randomized_verification import (DeterministicEquality,
                                      EdgeEqualityScheme,
                                      HashedEquality,
                                      VerificationResult,
                                      detection_probability,
                                      run_edge_verification)
from .spanning_tree import (FIELD_DIST, FIELD_PARENT, FIELD_ROOT,
                            TreeAdvice, children_of, honest_tree_advice,
                            subtree_vertices, tree_check)

__all__ = [name for name in dir() if not name.startswith("_")]
