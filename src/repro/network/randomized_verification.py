"""Randomized node-to-node verification — the RPLS phenomenon.

The paper's related-work section contrasts its prover-charged model
with *randomized proof-labeling schemes* (Baruch–Fraigniaud–Patt-Shamir
[4]), where nodes exchange randomized messages with each other after
receiving advice, buying an exponential reduction in verification
communication (at the price of advice the prover is not charged for).

This module reproduces that phenomenon on its canonical core: *edge
equality checking*.  Many labeling schemes bottleneck on neighbors
comparing large values (full advice strings, encodings, inputs);
deterministically that costs the value's length per edge, randomized
it costs O(log) bits via the Theorem-3.2 linear hash — each node draws
a private seed, sends ``(seed, h_seed(value))``, and checks incoming
fingerprints against its own value.

The model here is deliberately minimal and *separate* from the
interactive-proof stack: one round of simultaneous node-to-node
messages over the graph edges, then a local decision.  It exists as a
measured baseline (benchmark E10) for the paper's point that the [4]
result "is not applicable to our setting, because we do charge the
prover for its communication".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..graphs.graph import Graph
from ..hashing.linear import LinearHashFamily
from ..hashing.primes import prime_in_range


@dataclass
class VerificationResult:
    """Outcome of one edge-verification round."""

    accepted: bool
    decisions: Dict[int, bool]
    #: bits each node sent to each neighbor.
    message_bits: int

    def rejecting_nodes(self):
        return sorted(v for v, ok in self.decisions.items() if not ok)


class EdgeEqualityScheme(ABC):
    """One-round scheme for checking that adjacent values agree.

    ``values[v]`` is the k-bit value node v holds (an input, or the
    advice it received — the caller decides).  The network accepts iff
    every edge's endpoints hold equal values, with some one-sided
    error allowed for randomized schemes.
    """

    def __init__(self, value_bits: int) -> None:
        if value_bits < 1:
            raise ValueError("values must have at least one bit")
        self.value_bits = value_bits

    @property
    @abstractmethod
    def message_bits(self) -> int:
        """Bits of one node-to-neighbor message."""

    @abstractmethod
    def node_message(self, value: int, rng: random.Random) -> Any:
        """The message a node broadcasts to its neighbors."""

    @abstractmethod
    def check(self, own_value: int, received: Any) -> bool:
        """Does a received message look consistent with our value?"""


class DeterministicEquality(EdgeEqualityScheme):
    """The baseline: ship the whole value (k bits per edge)."""

    name = "deterministic"

    @property
    def message_bits(self) -> int:
        return self.value_bits

    def node_message(self, value: int, rng: random.Random) -> int:
        return value

    def check(self, own_value: int, received: int) -> bool:
        return received == own_value


class HashedEquality(EdgeEqualityScheme):
    """The [4]-style scheme: a private seed plus a linear-hash
    fingerprint — O(log k) bits per edge, one-sided error ≤ k/p per
    differing edge."""

    name = "hashed"

    def __init__(self, value_bits: int, p: Optional[int] = None) -> None:
        super().__init__(value_bits)
        # p ~ poly(k) keeps the error ≤ k/p ≤ 1/(10k) and the
        # fingerprint O(log k) bits.
        self.family = LinearHashFamily(
            m=value_bits,
            p=p if p is not None
            else prime_in_range(10 * value_bits ** 3,
                                100 * value_bits ** 3))

    @property
    def message_bits(self) -> int:
        return 2 * self.family.seed_bits  # seed + fingerprint

    @property
    def error_bound(self) -> float:
        return self.family.collision_bound

    def node_message(self, value: int,
                     rng: random.Random) -> Tuple[int, int]:
        seed = self.family.sample_seed(rng)
        return (seed, self.family.hash_bits(seed, value))

    def check(self, own_value: int, received: Tuple[int, int]) -> bool:
        seed, fingerprint = received
        return self.family.hash_bits(seed, own_value) == fingerprint


def run_edge_verification(graph: Graph, values: Mapping[int, int],
                          scheme: EdgeEqualityScheme,
                          rng: random.Random) -> VerificationResult:
    """One round: every node fingerprints its value to its neighbors,
    every node checks everything it received."""
    for v in graph.vertices:
        value = values[v]
        if not isinstance(value, int) or value >> scheme.value_bits:
            raise ValueError(f"node {v} value does not fit "
                             f"{scheme.value_bits} bits")
    messages = {v: scheme.node_message(values[v], rng)
                for v in graph.vertices}
    decisions = {}
    for v in graph.vertices:
        decisions[v] = all(scheme.check(values[v], messages[u])
                           for u in graph.neighbors(v))
    return VerificationResult(
        accepted=all(decisions.values()),
        decisions=decisions,
        message_bits=scheme.message_bits,
    )


def detection_probability(graph: Graph, values: Mapping[int, int],
                          scheme: EdgeEqualityScheme, trials: int,
                          rng: random.Random) -> float:
    """Fraction of runs in which a non-uniform assignment is caught."""
    rejected = sum(
        not run_edge_verification(graph, values, scheme, rng).accepted
        for _ in range(trials))
    return rejected / trials


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: E10's verification exchange at value width k (the lab's ``n``):
#: the hashed scheme ships a seed + fingerprint over
#: p ∈ [10k³, 100k³] — 2·log2(p) ≤ 2·log2(100k³) bits per edge —
#: where the deterministic baseline ships all k bits.
COST_DECLARATIONS = (
    CostDeclaration(
        key="edgecheck",
        title="Randomized edge-equality exchange (E10)",
        pattern="", asymptotic="O(log k)",
        reference="[4]-style hashed equality (Section 2 machinery)",
        phases=(
            phase("hash", "verify", "2 * log2(100 * n^3)",
                  "seed + linear-hash fingerprint per edge message"),
            phase("det", "verify", "n",
                  "deterministic baseline: the full k-bit value"),
        ),
        total=phase("total", "verify", "2 * log2(100 * n^3)",
                    "O(log k) bits per edge beat the k-bit baseline"),
    ),
)
