"""The spanning-tree proof labeling scheme (Korman–Kutten–Peleg [23]).

Protocols 1 and 2, the DSym protocol and the GNI protocol all make the
prover supply a rooted spanning tree — per node: the root ``r``
(broadcast), a parent pointer ``t_v`` and a distance ``d_v`` — and the
nodes verify it locally (advice length Θ(log n)):

* the root: ``d_r = 0`` and ``t_r = r``;
* everyone else: ``t_v ∈ N(v)``, ``1 ≤ d_v < n`` and
  ``d_{t_v} = d_v − 1``.

If every node passes and the (connected) network agrees on ``r`` via
the broadcast check, the parent pointers form a spanning tree rooted at
``r``: distances strictly decrease along parent pointers, so chains
terminate, and only the root may claim distance 0.

Hardening note: the paper's box defines ``C(v) = {u ∈ N(v) | t_u = v}``
and does not constrain the root's own parent pointer.  A prover that
points the root *into* the tree (``t_r ∈ N(r)``) creates a cycle
through the root that turns the hash-aggregation constraints of
Protocols 1/2 into a degenerate linear system, adding an extra ~``m/p``
soundness slack.  We close the hole at zero cost by requiring
``t_r = r`` and excluding the root from every child set — exactly what
the honest prover produces anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.model import LocalView
from ..graphs.graph import Graph

#: Canonical field names protocols use for the tree advice.
FIELD_ROOT = "root"
FIELD_PARENT = "parent"
FIELD_DIST = "dist"


@dataclass(frozen=True)
class TreeAdvice:
    """Per-node spanning tree advice: parent pointer and root distance."""

    parent: int
    dist: int


def honest_tree_advice(graph: Graph, root: int) -> Dict[int, TreeAdvice]:
    """BFS spanning tree advice rooted at ``root`` (graph must be connected).

    The root's parent is itself, distance 0.  A single level-order BFS
    yields both parents and distances (same traversal order as
    ``Graph.bfs_tree`` / ``Graph.distances_from``, so the advice is
    identical to combining those).
    """
    advice = {root: TreeAdvice(parent=root, dist=0)}
    seen = 1 << root
    queue = [root]
    dist = 0
    while queue:
        dist += 1
        next_queue = []
        for v in queue:
            # Incremental frontier BFS: mask off already-discovered
            # vertices and decode only the new ones (ascending, the
            # same discovery order the neighbor-scan loop produced).
            mask = graph.row_mask(v) & ~seen
            seen |= mask
            while mask:
                low = mask & -mask
                u = low.bit_length() - 1
                mask ^= low
                advice[u] = TreeAdvice(parent=v, dist=dist)
                next_queue.append(u)
        queue = next_queue
    if len(advice) != graph.n:
        raise ValueError("graph is not connected; no spanning tree exists")
    return advice


def tree_check(view: LocalView, round_idx: int, root: int,
               parent_field: str = FIELD_PARENT,
               dist_field: str = FIELD_DIST) -> bool:
    """Node-local spanning-tree verification (Protocol 1/2, line 1).

    Reads this node's parent/dist from its round-``round_idx`` message
    and the parent's dist from the parent's message (visible because
    the parent must be a neighbor).
    """
    v = view.node
    own = view.own_message(round_idx)
    parent = own[parent_field]
    dist = own[dist_field]
    if not isinstance(dist, int) or not isinstance(parent, int):
        return False
    if v == root:
        return dist == 0 and parent == v
    if not view.has_edge(parent):
        return False  # parent must be an actual graph neighbor
    if not 1 <= dist < view.n:
        return False
    parent_dist = view.message_of(round_idx, parent)[dist_field]
    return parent_dist == dist - 1


def children_of(view: LocalView, round_idx: int, root: int,
                parent_field: str = FIELD_PARENT) -> List[int]:
    """``C(v)``: neighbors that claim this node as their tree parent.

    The root is never anyone's child (see module hardening note).
    """
    v = view.node
    result = []
    for u in view.neighbors:
        if u == root:
            continue
        msg = view.message_of(round_idx, u)
        if msg.get(parent_field) == v:
            result.append(u)
    return result


def subtree_vertices(advice: Dict[int, TreeAdvice], v: int) -> List[int]:
    """All vertices in the subtree rooted at ``v`` (honest advice only).

    Used by honest provers to compute the partial hash values they owe
    each node, and by tests as the ground truth for Lemma 3.3.
    """
    children: Dict[int, List[int]] = {}
    for u, adv in advice.items():
        if adv.parent != u:
            children.setdefault(adv.parent, []).append(u)
    result = []
    stack = [v]
    while stack:
        w = stack.pop()
        result.append(w)
        stack.extend(children.get(w, ()))
    return sorted(result)
