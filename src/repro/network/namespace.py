"""Named nodes: the paper's polynomial-namespace remark, implemented.

Section 2.2: "we assume for simplicity that we have a fixed set of
nodes V ... our upper bounds generalize in a straightforward manner to
the case where we have some polynomially-large namespace N, and we
draw n nodes from N."

The protocol stack works over dense indices ``0..n-1``; real
deployments have device ids, hostnames, public keys.  A
:class:`Namespace` is the bidirectional bridge: build the network
graph and inputs from application identifiers, run any protocol
unchanged, and translate results back.  It also carries the remark's
cost accounting: identifiers drawn from a namespace of size ``N``
cost ``⌈log₂ N⌉`` bits instead of ``⌈log₂ n⌉``, a factor of at most
``log N / log n`` — constant for polynomial namespaces, which is why
every O(·) bound in the paper survives.
"""

from __future__ import annotations

from typing import (Any, Dict, Hashable, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from ..core.model import Instance, bits_for_identifier
from ..core.runner import ExecutionResult
from ..graphs.graph import Graph


class Namespace:
    """An ordered set of distinct node identifiers.

    The position of an identifier in the constructor sequence is its
    protocol index; order is therefore part of the public contract
    (all parties must agree on it, just as they agree on V).
    """

    def __init__(self, identifiers: Sequence[Hashable],
                 universe_size: Optional[int] = None) -> None:
        ids = list(identifiers)
        index = {node_id: i for i, node_id in enumerate(ids)}
        if len(index) != len(ids):
            raise ValueError("duplicate identifiers in namespace")
        if universe_size is not None and universe_size < len(ids):
            raise ValueError("universe smaller than the node set")
        self._ids: List[Hashable] = ids
        self._index: Dict[Hashable, int] = index
        self.universe_size = universe_size if universe_size is not None \
            else len(ids)

    # -- lookups -----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._ids)

    def index_of(self, node_id: Hashable) -> int:
        try:
            return self._index[node_id]
        except KeyError:
            raise KeyError(f"unknown node identifier {node_id!r}") from None

    def id_of(self, index: int) -> Hashable:
        if not 0 <= index < len(self._ids):
            raise IndexError(f"index {index} outside 0..{len(self._ids)-1}")
        return self._ids[index]

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._index

    def __iter__(self):
        return iter(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    # -- cost accounting ------------------------------------------------------

    @property
    def identifier_bits(self) -> int:
        """Bits to name one identifier from the universe."""
        return bits_for_identifier(self.universe_size)

    def identifier_overhead(self) -> float:
        """The remark's cost factor ``log N / log n`` (≥ 1)."""
        return self.identifier_bits / bits_for_identifier(self.n)

    # -- construction -----------------------------------------------------------

    def graph(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> Graph:
        """Build the network graph from identifier pairs."""
        return Graph(self.n, ((self.index_of(u), self.index_of(v))
                              for u, v in edges))

    def instance(self, edges: Iterable[Tuple[Hashable, Hashable]],
                 inputs: Optional[Mapping[Hashable, Any]] = None
                 ) -> Instance:
        """Build a protocol instance from identifier-keyed data."""
        graph = self.graph(edges)
        mapped_inputs = None
        if inputs is not None:
            mapped_inputs = {self.index_of(node_id): value
                             for node_id, value in inputs.items()}
        return Instance(graph=graph, inputs=mapped_inputs)

    def mapping_from_ids(self, pairs: Mapping[Hashable, Hashable]
                         ) -> Tuple[int, ...]:
        """Translate an id→id map (e.g. a claimed automorphism) into an
        index permutation for the protocol layer."""
        if set(pairs) != set(self._ids):
            raise ValueError("mapping must cover every identifier")
        out = [0] * self.n
        for src, dst in pairs.items():
            out[self.index_of(src)] = self.index_of(dst)
        return tuple(out)

    # -- result translation ----------------------------------------------------

    def decisions_by_id(self, result: ExecutionResult
                        ) -> Dict[Hashable, bool]:
        return {self.id_of(v): ok for v, ok in result.decisions.items()}

    def costs_by_id(self, result: ExecutionResult) -> Dict[Hashable, int]:
        return {self.id_of(v): bits
                for v, bits in result.node_cost_bits.items()}

    def rejecting_ids(self, result: ExecutionResult) -> List[Hashable]:
        return [self.id_of(v) for v in result.rejecting_nodes()]
