"""repro — Interactive Distributed Proofs (Kol, Oshman, Saxena; PODC 2018).

A complete, executable reproduction of the paper: the dAM / dMAM /
dAMAM model of distributed interactive proofs, the Symmetry protocols
(Theorems 1.1 and 1.3), the DSym separation (Theorem 1.2), the
Ω(log log n) lower-bound machinery (Theorem 1.4), and the distributed
Goldwasser–Sipser protocol for Graph Non-Isomorphism (Theorem 1.5) —
together with every substrate they need: an exact network simulator
with locality enforced by construction, the Theorem-3.2 linear hash
family, a distributed ε-almost pairwise-independent hash, the
spanning-tree proof labeling scheme, graph automorphism/isomorphism
search, and rigid graph families.

Quick start::

    import random
    from repro import Instance, SymDMAMProtocol, run_protocol
    from repro.graphs import cycle_graph

    graph = cycle_graph(8)                      # symmetric: YES instance
    protocol = SymDMAMProtocol(graph.n)
    result = run_protocol(protocol, Instance(graph),
                          protocol.honest_prover(), random.Random(0))
    assert result.accepted
    print(f"per-node cost: {result.max_cost_bits} bits")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every theorem.
"""

from .core import (AcceptanceEstimate, AndAmplifiedProtocol,
                   ClassMembershipReport, ExecutionResult, Instance,
                   InstanceContext, LocalView, Protocol, ProtocolViolation,
                   Prover, check_completeness, check_soundness,
                   estimate_acceptance, measure_cost, measure_cost_scaling,
                   run_protocol, run_trials)
from .graphs import Graph
from .protocols import (ConnectivityLCP, DSymDAMProtocol, DSymLCP,
                        GNIGoldwasserSipserProtocol, SymDAMProtocol,
                        SymDMAMProtocol, SymLCP, gni_instance)

__version__ = "1.0.0"

__all__ = [
    "AcceptanceEstimate",
    "AndAmplifiedProtocol",
    "ClassMembershipReport",
    "ConnectivityLCP",
    "DSymDAMProtocol",
    "DSymLCP",
    "ExecutionResult",
    "GNIGoldwasserSipserProtocol",
    "Graph",
    "Instance",
    "InstanceContext",
    "LocalView",
    "Protocol",
    "ProtocolViolation",
    "Prover",
    "SymDAMProtocol",
    "SymDMAMProtocol",
    "SymLCP",
    "check_completeness",
    "check_soundness",
    "estimate_acceptance",
    "gni_instance",
    "measure_cost",
    "measure_cost_scaling",
    "run_protocol",
    "run_trials",
    "__version__",
]
