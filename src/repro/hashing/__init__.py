"""Hashing substrate: primes, the Theorem-3.2 linear family, row-matrix
algebra, and the distributed ε-almost pairwise-independent hash."""

from .api import APIChallenge, DistributedAPIHash, gs_output_modulus
from .linear import LinearHashFamily, collision_seed_count
from .primes import (MAX_PRIME_SEARCH_BITS, UnsupportedModulus, is_prime,
                     next_prime, prime_in_range, theorem32_prime_window)
from .toeplitz import ToeplitzHash
from .rowmatrix import (MatrixSum, bits_to_coeffs, graph_matrix_sum,
                        image_bits, mapped_matrix_sum, matrix_sums_equal)

__all__ = [name for name in dir() if not name.startswith("_")]
