"""Primality testing and prime search.

The hash family of Theorem 3.2 needs a prime modulus in a prescribed
window: ``[10n³, 100n³]`` for Protocol 1 and ``[10·n^(n+2),
100·n^(n+2)]`` for Protocol 2 (Bertrand's postulate guarantees one
exists).  Protocol-2 primes have Θ(n log n) bits, so we need big-int
primality testing: deterministic Miller–Rabin below 3.3 · 10²⁴ (known
witness sets) and randomized Miller–Rabin with enough rounds above.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Optional

# Deterministic witness sets (Sorenson & Webster; Jaeschke).  Testing
# against these bases is *exact* for numbers below the listed bound.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97)

#: Largest modulus bit-length the prime search will attempt.  Protocol
#: 2's window ``[10·n^(n+2), 100·n^(n+2)]`` grows as Θ(n log n) bits:
#: at n = 128 the search already sieves ~900-bit candidates (seconds),
#: and past this cap a single Miller–Rabin pass is so slow the search
#: is indistinguishable from a hang.  Callers that need large n should
#: use the Protocol-1 window (``exponent=3``, Theorem 3.2's dMAM
#: family) or the small-prime ablation family instead.
MAX_PRIME_SEARCH_BITS = 2048


class UnsupportedModulus(ValueError):
    """A modulus (or modulus window) beyond what an engine supports.

    Raised instead of hanging on an astronomically large Protocol-2
    prime search, and instead of silently overflowing int64 on the
    numpy kernels (``repro.core.kernels``) past ``MAX_MODULUS_BITS``.
    """


def _miller_rabin_witness(n: int, a: int) -> bool:
    """True if ``a`` witnesses compositeness of odd ``n > 2``."""
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(s - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rng: Optional[random.Random] = None,
             rounds: int = 40) -> bool:
    """Primality test: exact below ~3.3e24, Miller–Rabin with ``rounds``
    random bases above (error probability ≤ 4^-rounds).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_BOUND:
        return not any(_miller_rabin_witness(n, a)
                       for a in _DETERMINISTIC_WITNESSES if a < n)
    rng = rng or random.Random(0x5EED ^ (n & 0xFFFFFFFF))
    return not any(_miller_rabin_witness(n, rng.randrange(2, n - 1))
                   for _ in range(rounds))


def next_prime(n: int) -> int:
    """The smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1  # make odd
    while not is_prime(candidate):
        candidate += 2
    return candidate


@lru_cache(maxsize=None)
def prime_in_range(lo: int, hi: int) -> int:
    """A prime in ``[lo, hi]`` — the smallest one, for determinism.

    Raises ``ValueError`` if the interval contains none.  The paper's
    windows ``[10x, 100x]`` always do (Bertrand's postulate).

    Memoized on the interval: parameter sweeps construct the same
    protocol sizes repeatedly, and Protocol-2 windows make the search
    genuinely expensive (Θ(n log n)-bit Miller–Rabin candidates).
    """
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    if lo.bit_length() > MAX_PRIME_SEARCH_BITS:
        raise UnsupportedModulus(
            f"prime search over [{lo.bit_length()}-bit, "
            f"{hi.bit_length()}-bit] candidates exceeds "
            f"MAX_PRIME_SEARCH_BITS={MAX_PRIME_SEARCH_BITS}; use the "
            f"Protocol-1 window (exponent=3) or a small-prime family "
            f"for large n")
    p = next_prime(max(lo, 2))
    if p > hi:
        raise ValueError(f"no prime in [{lo}, {hi}]")
    return p


def theorem32_prime_window(n: int, exponent: int = 3) -> int:
    """The paper's prime windows: a prime in ``[10·n^e, 100·n^e]``.

    ``exponent=3`` is Protocol 1's window (collision probability
    ``m/p = n²/10n³ = 1/(10n)``); Protocol 2 passes ``exponent=n+2``
    so that a union bound over all ``n^n`` mappings still leaves
    error ≤ ``n²·n^n / 10·n^(n+2) = 1/10``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    # Refuse before materializing the window: n^e has at least
    # e·(bits(n)-1)+1 bits, so a cheap estimate rules out the truly
    # astronomical Protocol-2 windows without constructing them.
    if n > 1:
        estimate = exponent * (n.bit_length() - 1) + 1
        if estimate > MAX_PRIME_SEARCH_BITS:
            raise UnsupportedModulus(
                f"Protocol window [10·{n}^{exponent}, 100·{n}^{exponent}] "
                f"needs >= {estimate}-bit primes, beyond "
                f"MAX_PRIME_SEARCH_BITS={MAX_PRIME_SEARCH_BITS}; use "
                f"exponent=3 (Protocol 1 / Theorem 3.2) or a "
                f"small-prime family for large n")
    base = n ** exponent
    return prime_in_range(10 * base, 100 * base)
