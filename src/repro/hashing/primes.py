"""Primality testing and prime search.

The hash family of Theorem 3.2 needs a prime modulus in a prescribed
window: ``[10n³, 100n³]`` for Protocol 1 and ``[10·n^(n+2),
100·n^(n+2)]`` for Protocol 2 (Bertrand's postulate guarantees one
exists).  Protocol-2 primes have Θ(n log n) bits, so we need big-int
primality testing: deterministic Miller–Rabin below 3.3 · 10²⁴ (known
witness sets) and randomized Miller–Rabin with enough rounds above.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Optional

# Deterministic witness sets (Sorenson & Webster; Jaeschke).  Testing
# against these bases is *exact* for numbers below the listed bound.
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """True if ``a`` witnesses compositeness of odd ``n > 2``."""
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(s - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rng: Optional[random.Random] = None,
             rounds: int = 40) -> bool:
    """Primality test: exact below ~3.3e24, Miller–Rabin with ``rounds``
    random bases above (error probability ≤ 4^-rounds).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_BOUND:
        return not any(_miller_rabin_witness(n, a)
                       for a in _DETERMINISTIC_WITNESSES if a < n)
    rng = rng or random.Random(0x5EED ^ (n & 0xFFFFFFFF))
    return not any(_miller_rabin_witness(n, rng.randrange(2, n - 1))
                   for _ in range(rounds))


def next_prime(n: int) -> int:
    """The smallest prime >= n."""
    if n <= 2:
        return 2
    candidate = n | 1  # make odd
    while not is_prime(candidate):
        candidate += 2
    return candidate


@lru_cache(maxsize=None)
def prime_in_range(lo: int, hi: int) -> int:
    """A prime in ``[lo, hi]`` — the smallest one, for determinism.

    Raises ``ValueError`` if the interval contains none.  The paper's
    windows ``[10x, 100x]`` always do (Bertrand's postulate).

    Memoized on the interval: parameter sweeps construct the same
    protocol sizes repeatedly, and Protocol-2 windows make the search
    genuinely expensive (Θ(n log n)-bit Miller–Rabin candidates).
    """
    if hi < lo:
        raise ValueError(f"empty range [{lo}, {hi}]")
    p = next_prime(max(lo, 2))
    if p > hi:
        raise ValueError(f"no prime in [{lo}, {hi}]")
    return p


def theorem32_prime_window(n: int, exponent: int = 3) -> int:
    """The paper's prime windows: a prime in ``[10·n^e, 100·n^e]``.

    ``exponent=3`` is Protocol 1's window (collision probability
    ``m/p = n²/10n³ = 1/(10n)``); Protocol 2 passes ``exponent=n+2``
    so that a union bound over all ``n^n`` mappings still leaves
    error ≤ ``n²·n^n / 10·n^(n+2) = 1/10``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    base = n ** exponent
    return prime_in_range(10 * base, 100 * base)
