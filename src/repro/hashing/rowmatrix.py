"""The ``[i, r]`` row-matrix algebra of Section 3.1.1.

The paper represents the adjacency matrix of ``G`` as a sum of
single-row matrices, ``A_G = Σ_v [v, N(v)]``, and the "ρ-permuted"
matrix as ``Σ_v [ρ(v), ρ(N(v))]``, both with entries in Z_p.  The
protocols never materialize these sums (they hash rows and add hash
values), but the soundness analysis — and our tests of Lemma 3.1 —
reason about the sums directly, so this module implements them
exactly.

Vectors over the vertex set are packed integers: bit ``v`` of ``bits``
is coordinate ``v``.  Row sums, which can exceed 1 when ρ is not
injective, use dense per-row coefficient lists mod p.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..graphs.graph import Graph


def bits_to_coeffs(bits: int, n: int) -> Tuple[int, ...]:
    """Unpack an n-bit characteristic vector into 0/1 coefficients."""
    return tuple((bits >> v) & 1 for v in range(n))


def image_bits(bits: int, mapping: Sequence[int], n: int) -> int:
    """Characteristic vector of the *image set* ``mapping(S)``.

    ``S`` is given by ``bits``; coordinate ``w`` of the result is 1 iff
    some ``u ∈ S`` has ``mapping[u] = w``.  (Set semantics: multiple
    preimages still give 1 — this matches the paper's definition of
    ``ρ(S)`` as a characteristic vector.)
    """
    out = 0
    for u in range(n):
        if (bits >> u) & 1:
            out |= 1 << mapping[u]
    return out


class MatrixSum:
    """An ``n × n`` matrix over Z_p accumulated as a sum of rows.

    ``add_row(i, bits)`` adds the single-row matrix ``[i, r]`` where
    ``r`` is the characteristic vector packed in ``bits``.
    """

    __slots__ = ("n", "p", "rows")

    def __init__(self, n: int, p: int) -> None:
        if p < 2:
            raise ValueError("modulus must be at least 2")
        self.n = n
        self.p = p
        self.rows: List[List[int]] = [[0] * n for _ in range(n)]

    def add_row(self, i: int, bits: int) -> None:
        """Add ``[i, bits]`` to the sum (entries mod p)."""
        if not 0 <= i < self.n:
            raise ValueError(f"row index {i} out of range")
        row = self.rows[i]
        for v in range(self.n):
            if (bits >> v) & 1:
                row[v] = (row[v] + 1) % self.p

    def entries(self) -> Tuple[Tuple[int, ...], ...]:
        """The matrix as a tuple of row tuples."""
        return tuple(tuple(row) for row in self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatrixSum):
            return NotImplemented
        return (self.n, self.p, self.rows) == (other.n, other.p, other.rows)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.n, self.p, self.entries()))

    def __repr__(self) -> str:
        return f"MatrixSum(n={self.n}, p={self.p})"


def graph_matrix_sum(graph: Graph, p: int) -> MatrixSum:
    """``Σ_v [v, N(v)]`` — the self-looped adjacency matrix over Z_p."""
    acc = MatrixSum(graph.n, p)
    for v in graph.vertices:
        acc.add_row(v, graph.closed_row(v))
    return acc


def mapped_matrix_sum(graph: Graph, mapping: Sequence[int],
                      p: int) -> MatrixSum:
    """``Σ_v [ρ(v), ρ(N(v))]`` for an arbitrary mapping ρ (Lemma 3.1).

    ρ need not be a permutation; when it is not, rows collide and add.
    """
    n = graph.n
    if len(mapping) != n:
        raise ValueError("mapping length must equal vertex count")
    acc = MatrixSum(n, p)
    for v in graph.vertices:
        acc.add_row(mapping[v], image_bits(graph.closed_row(v), mapping, n))
    return acc


def matrix_sums_equal(graph: Graph, mapping: Sequence[int], p: int) -> bool:
    """Whether ``Σ_v [v, N(v)] = Σ_v [ρ(v), ρ(N(v))]`` over Z_p.

    By Lemma 3.1 this holds iff ρ is an automorphism of the graph
    (given entries stay below p, which they do for p > n).
    """
    return graph_matrix_sum(graph, p) == mapped_matrix_sum(graph, mapping, p)
