"""A genuinely pairwise-independent hash family — the road not taken.

Section 4 of the paper explains why the classical Goldwasser–Sipser
hash cannot be used distributedly: "PI hash functions require a long
random seed" — Θ(n²) bits for inputs of n² bits — "and it is not
possible to 'break' the seed into small parts and give each node one
part without ruining the linearity of the hash".  The ε-API relaxation
(:mod:`repro.hashing.api`) is the paper's fix.

This module implements the classical family anyway — the affine
Toeplitz construction over GF(2) — for two reasons:

* it makes the paper's seed-length argument *measurable*
  (``ToeplitzHash.seed_bits`` versus the ε-API seed budget; see
  benchmark E7c), and
* it is the reference point for the ε-API axioms: Toeplitz satisfies
  axiom (1) with ε = 0 and axiom (2) exactly, which the tests confirm
  by exhaustive enumeration at tiny sizes.

Construction: ``h_{T,b}(x) = T·x ⊕ b`` where ``T`` is an m_out × m_in
Toeplitz matrix over GF(2) (determined by its first row and column:
``m_in + m_out − 1`` seed bits) and ``b`` is a uniform m_out-bit
offset.  For ``x ≠ x'``, ``T·(x ⊕ x')`` is uniform over outputs
(the diagonal structure makes each output bit an independent parity of
a fresh seed bit), and ``b`` decouples the pair — the textbook
pairwise-independence proof, which the exhaustive tests re-derive
numerically.
"""

from __future__ import annotations

import random
from typing import Tuple


class ToeplitzHash:
    """The affine Toeplitz family ``{0,1}^m_in → {0,1}^m_out``."""

    def __init__(self, input_bits: int, output_bits: int) -> None:
        if input_bits < 1 or output_bits < 1:
            raise ValueError("input and output widths must be positive")
        self.input_bits = input_bits
        self.output_bits = output_bits

    # -- seeds -----------------------------------------------------------

    @property
    def seed_bits(self) -> int:
        """Seed length: the Toeplitz diagonals plus the offset —
        ``(m_in + m_out − 1) + m_out`` bits.  For the GS parameters
        (m_in = n², m_out ≈ log n!) this is Θ(n²): the paper's
        objection, in a property."""
        return self.input_bits + 2 * self.output_bits - 1

    def sample_seed(self, rng: random.Random) -> Tuple[int, int]:
        """(diagonals, offset): the Toeplitz bits and the affine part."""
        diagonals = rng.getrandbits(self.input_bits + self.output_bits - 1)
        offset = rng.getrandbits(self.output_bits)
        return (diagonals, offset)

    @property
    def seed_count(self) -> int:
        return 1 << self.seed_bits

    def seed_from_index(self, index: int) -> Tuple[int, int]:
        """Bijection [0, 2^seed_bits) → seeds, for exhaustive tests."""
        if not 0 <= index < self.seed_count:
            raise ValueError("seed index out of range")
        diag_bits = self.input_bits + self.output_bits - 1
        return (index & ((1 << diag_bits) - 1), index >> diag_bits)

    # -- hashing -----------------------------------------------------------

    def row_bits(self, diagonals: int, row: int) -> int:
        """Row ``row`` of the Toeplitz matrix, packed little-endian.

        Entry (row, col) is diagonal bit ``row − col + (m_in − 1)``;
        with diagonals packed so that bit ``m_in − 1`` is the main
        diagonal's top-left.
        """
        bits = 0
        base = self.input_bits - 1
        for col in range(self.input_bits):
            if (diagonals >> (row - col + base)) & 1:
                bits |= 1 << col
        return bits

    def apply(self, seed: Tuple[int, int], x: int) -> int:
        """``h(x) = T·x ⊕ b`` (output packed little-endian)."""
        if x >> self.input_bits:
            raise ValueError("input exceeds the declared width")
        diagonals, offset = seed
        out = 0
        for row in range(self.output_bits):
            parity = bin(self.row_bits(diagonals, row) & x).count("1") & 1
            out |= parity << row
        return out ^ offset
