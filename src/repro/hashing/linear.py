"""The linear hash family of Theorem 3.2.

The family ``H = {h_s : s ∈ Z_p}`` hashes vectors ``x ∈ Z_p^m`` (in the
protocols, characteristic vectors in {0,1}^m with m = n²) to Z_p by
polynomial evaluation:

    h_s(x) = Σ_{j=1..m} x_j · s^j   (mod p).

Properties (both property-tested in ``tests/hashing``):

* **Linearity** — ``h_s(x + x') = h_s(x) + h_s(x')`` where the left
  sum is coordinate-wise mod p.  This is what lets the network hash the
  full adjacency matrix by hashing one row per node and adding the
  results up a spanning tree.
* **Collision bound** — for ``x ≠ x'`` (mod p, coordinate-wise),
  ``Pr_s[h_s(x) = h_s(x')] ≤ m/p``: the difference polynomial is a
  nonzero polynomial of degree ≤ m with zero constant term, so it has
  at most m roots among the p seeds.

Row-matrix inputs: a single-row matrix ``[i, r]`` viewed as a vector in
``{0,1}^{n²}`` (coordinate ``i·n + v`` holds ``r_v``) hashes to
``s^{i·n} · h_s(r)``, computed with one modular exponentiation — no
n²-length loop.
"""

from __future__ import annotations

import random
from typing import Sequence

from .rowmatrix import MatrixSum


class LinearHashFamily:
    """The Theorem-3.2 family for m-coordinate vectors mod a prime p.

    ``seed_count == p``; drawing a random function costs ``⌈log₂ p⌉``
    random bits, which is the protocols' O(log n) / O(n log n) budget.
    """

    __slots__ = ("m", "p")

    def __init__(self, m: int, p: int) -> None:
        if m < 1:
            raise ValueError("dimension m must be positive")
        if p < 2:
            raise ValueError("modulus must be a prime >= 2")
        self.m = m
        self.p = p

    # -- seed management -------------------------------------------------

    @property
    def seed_count(self) -> int:
        """|H| = p."""
        return self.p

    @property
    def seed_bits(self) -> int:
        """Bits needed to name a seed: ⌈log₂ p⌉."""
        return max(1, (self.p - 1).bit_length())

    def sample_seed(self, rng: random.Random) -> int:
        """A uniform seed index in [0, p)."""
        return rng.randrange(self.p)

    @property
    def collision_bound(self) -> float:
        """The Theorem-3.2 guarantee ``m/p`` (may exceed 1 if p is tiny)."""
        return self.m / self.p

    # -- hashing ---------------------------------------------------------

    def hash_bits(self, seed: int, bits: int) -> int:
        """Hash a characteristic vector packed as an integer bitmask.

        Coordinate ``j`` (bit ``j`` of ``bits``) contributes ``s^(j+1)``.
        """
        self._check_seed(seed)
        acc = 0
        remaining = bits
        while remaining:
            low = remaining & -remaining
            j = low.bit_length() - 1
            if j >= self.m:
                raise ValueError(f"bit {j} outside dimension m={self.m}")
            acc = (acc + pow(seed, j + 1, self.p)) % self.p
            remaining ^= low
        return acc

    def power_table(self, seed: int) -> Sequence[int]:
        """``[s^1, s^2, ..., s^m] mod p`` — amortizes hashing many inputs
        under one seed (the GNI prover hashes |S| ≈ 2·n! encodings)."""
        self._check_seed(seed)
        table = [0] * self.m
        acc = 1
        for j in range(self.m):
            acc = acc * seed % self.p
            table[j] = acc
        return table

    def hash_bits_with_table(self, table: Sequence[int], bits: int) -> int:
        """Like :meth:`hash_bits` but using a precomputed power table."""
        acc = 0
        remaining = bits
        while remaining:
            low = remaining & -remaining
            j = low.bit_length() - 1
            acc += table[j]
            remaining ^= low
        return acc % self.p

    def hash_vector(self, seed: int, coeffs: Sequence[int]) -> int:
        """Hash an arbitrary coefficient vector (Horner's rule).

        ``h_s(x) = Σ x_j s^(j+1) = s · (x_0 + s·(x_1 + ...))``.
        """
        self._check_seed(seed)
        if len(coeffs) > self.m:
            raise ValueError("vector longer than dimension m")
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * seed + c) % self.p
        return acc * seed % self.p

    def hash_row_matrix(self, seed: int, n: int, i: int, row_bits: int) -> int:
        """Hash the single-row matrix ``[i, row_bits]`` of an n×n matrix.

        The matrix is flattened to m = n² coordinates with coordinate
        ``i·n + v`` holding entry (i, v); requires ``m >= n²``.
        """
        if n * n > self.m:
            raise ValueError(f"matrix {n}x{n} does not fit dimension m={self.m}")
        if not 0 <= i < n:
            raise ValueError(f"row index {i} out of range")
        if row_bits >> n:
            raise ValueError("row has bits beyond column n")
        return (pow(seed, i * n, self.p)
                * self.hash_bits(seed, row_bits)) % self.p

    def hash_matrix_sum(self, seed: int, matrix: MatrixSum) -> int:
        """Hash a full ``MatrixSum`` (reference implementation for tests).

        Equals the sum of ``hash_row_matrix`` over the constituent rows
        by linearity; the protocols use the per-row form, tests compare
        both.
        """
        if matrix.p != self.p:
            raise ValueError("matrix modulus differs from hash modulus")
        flat = [entry for row in matrix.rows for entry in row]
        return self.hash_vector(seed, flat)

    def add(self, *values: int) -> int:
        """Sum hash values in the output group Z_p."""
        return sum(values) % self.p

    def _check_seed(self, seed: int) -> None:
        if not 0 <= seed < self.p:
            raise ValueError(f"seed {seed} outside [0, {self.p})")


def collision_seed_count(family: LinearHashFamily,
                         coeffs_a: Sequence[int],
                         coeffs_b: Sequence[int]) -> int:
    """Exactly count seeds with ``h_s(a) = h_s(b)`` (brute force over p).

    Used by tests and the soundness experiments with *small* p to check
    the ≤ m/p collision law exactly.
    """
    return sum(1 for s in range(family.p)
               if family.hash_vector(s, coeffs_a)
               == family.hash_vector(s, coeffs_b))
