"""The linear hash family of Theorem 3.2.

The family ``H = {h_s : s ∈ Z_p}`` hashes vectors ``x ∈ Z_p^m`` (in the
protocols, characteristic vectors in {0,1}^m with m = n²) to Z_p by
polynomial evaluation:

    h_s(x) = Σ_{j=1..m} x_j · s^j   (mod p).

Properties (both property-tested in ``tests/hashing``):

* **Linearity** — ``h_s(x + x') = h_s(x) + h_s(x')`` where the left
  sum is coordinate-wise mod p.  This is what lets the network hash the
  full adjacency matrix by hashing one row per node and adding the
  results up a spanning tree.
* **Collision bound** — for ``x ≠ x'`` (mod p, coordinate-wise),
  ``Pr_s[h_s(x) = h_s(x')] ≤ m/p``: the difference polynomial is a
  nonzero polynomial of degree ≤ m with zero constant term, so it has
  at most m roots among the p seeds.

Row-matrix inputs: a single-row matrix ``[i, r]`` viewed as a vector in
``{0,1}^{n²}`` (coordinate ``i·n + v`` holds ``r_v``) hashes to
``s^{i·n} · h_s(r)``, computed with one modular exponentiation — no
n²-length loop.
"""

from __future__ import annotations

import random
from typing import Sequence

from .rowmatrix import MatrixSum


class LinearHashFamily:
    """The Theorem-3.2 family for m-coordinate vectors mod a prime p.

    ``seed_count == p``; drawing a random function costs ``⌈log₂ p⌉``
    random bits, which is the protocols' O(log n) / O(n log n) budget.
    """

    __slots__ = ("m", "p")

    def __init__(self, m: int, p: int) -> None:
        if m < 1:
            raise ValueError("dimension m must be positive")
        if p < 2:
            raise ValueError("modulus must be a prime >= 2")
        self.m = m
        self.p = p

    # -- seed management -------------------------------------------------

    @property
    def seed_count(self) -> int:
        """|H| = p."""
        return self.p

    @property
    def seed_bits(self) -> int:
        """Bits needed to name a seed: ⌈log₂ p⌉."""
        return max(1, (self.p - 1).bit_length())

    def sample_seed(self, rng: random.Random) -> int:
        """A uniform seed index in [0, p)."""
        return rng.randrange(self.p)

    @property
    def collision_bound(self) -> float:
        """The Theorem-3.2 guarantee ``m/p`` (may exceed 1 if p is tiny)."""
        return self.m / self.p

    # -- hashing ---------------------------------------------------------

    def hash_bits(self, seed: int, bits: int) -> int:
        """Hash a characteristic vector packed as an integer bitmask.

        Coordinate ``j`` (bit ``j`` of ``bits``) contributes ``s^(j+1)``.
        """
        self._check_seed(seed)
        acc = 0
        remaining = bits
        while remaining:
            low = remaining & -remaining
            j = low.bit_length() - 1
            if j >= self.m:
                raise ValueError(f"bit {j} outside dimension m={self.m}")
            acc = (acc + pow(seed, j + 1, self.p)) % self.p
            remaining ^= low
        return acc

    def power_table(self, seed: int) -> Sequence[int]:
        """``[s^1, s^2, ..., s^m] mod p`` — amortizes hashing many inputs
        under one seed (the GNI prover hashes |S| ≈ 2·n! encodings)."""
        self._check_seed(seed)
        table = [0] * self.m
        acc = 1
        for j in range(self.m):
            acc = acc * seed % self.p
            table[j] = acc
        return table

    def hash_bits_with_table(self, table: Sequence[int], bits: int) -> int:
        """Like :meth:`hash_bits` but using a precomputed power table."""
        acc = 0
        remaining = bits
        while remaining:
            low = remaining & -remaining
            j = low.bit_length() - 1
            acc += table[j]
            remaining ^= low
        return acc % self.p

    def hash_vector(self, seed: int, coeffs: Sequence[int]) -> int:
        """Hash an arbitrary coefficient vector (Horner's rule).

        ``h_s(x) = Σ x_j s^(j+1) = s · (x_0 + s·(x_1 + ...))``.
        """
        self._check_seed(seed)
        if len(coeffs) > self.m:
            raise ValueError("vector longer than dimension m")
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * seed + c) % self.p
        return acc * seed % self.p

    def hash_row_matrix(self, seed: int, n: int, i: int, row_bits: int) -> int:
        """Hash the single-row matrix ``[i, row_bits]`` of an n×n matrix.

        The matrix is flattened to m = n² coordinates with coordinate
        ``i·n + v`` holding entry (i, v); requires ``m >= n²``.
        """
        if n * n > self.m:
            raise ValueError(f"matrix {n}x{n} does not fit dimension m={self.m}")
        if not 0 <= i < n:
            raise ValueError(f"row index {i} out of range")
        if row_bits >> n:
            raise ValueError("row has bits beyond column n")
        return (pow(seed, i * n, self.p)
                * self.hash_bits(seed, row_bits)) % self.p

    # -- batched hashing (numpy trial kernels) ---------------------------
    #
    # The batch engine (:mod:`repro.core.kernels`) evaluates the family
    # over whole (trials, nodes) arrays at once.  numpy is imported
    # lazily through the kernels' import gate so this module keeps
    # working — and the scalar methods above stay the reference
    # implementation — on interpreters without it.  All array math is
    # exact int64 modular arithmetic (see ``kernels._np.mulmod``), so
    # batched and scalar results are equal as python ints, not merely
    # close.

    def power_table_batch(self, seeds, count: int):
        """``P[t, j] = seeds[t]^(j+1) mod p`` for ``j < count``.

        The batched :meth:`power_table` prefix: one column per power,
        one row per trial seed.  ``count`` may be far below ``m`` —
        protocol kernels only need the first ``n`` powers plus the
        stride powers from :meth:`stride_power_batch`.
        """
        from ..core.kernels._np import mulmod, require_numpy
        np = require_numpy()
        if not 0 <= count <= self.m:
            raise ValueError(f"count {count} outside [0, m={self.m}]")
        seeds = np.asarray(seeds, dtype=np.int64)
        table = np.empty((seeds.shape[0], count), dtype=np.int64)
        if count == 0:
            return table
        acc = seeds % self.p
        table[:, 0] = acc
        for j in range(1, count):
            acc = mulmod(acc, seeds, self.p)
            table[:, j] = acc
        return table

    def stride_power_batch(self, seeds, stride: int, count: int):
        """``Q[t, v] = seeds[t]^(v * stride) mod p`` for ``v < count``.

        The row-offset factors of :meth:`hash_row_matrix` (``s^{i·n}``)
        for a whole trial batch: column 0 is all ones, each next column
        multiplies by ``s^stride``.
        """
        from ..core.kernels._np import mulmod, powmod_column, require_numpy
        np = require_numpy()
        seeds = np.asarray(seeds, dtype=np.int64)
        table = np.empty((seeds.shape[0], count), dtype=np.int64)
        if count == 0:
            return table
        table[:, 0] = 1 % self.p
        if count == 1:
            return table
        step = powmod_column(seeds, stride, self.p)
        acc = step
        table[:, 1] = acc
        for v in range(2, count):
            acc = mulmod(acc, step, self.p)
            table[:, v] = acc
        return table

    def row_hash_batch(self, seeds, n: int, row_indices, rows01):
        """Batched :meth:`hash_row_matrix` over a (trials, nodes) grid.

        ``rows01`` is a 0/1 array of shape ``(nodes, n)`` whose row
        ``v`` is the characteristic vector the node hashes;
        ``row_indices[v]`` is its row position ``i`` in the n×n matrix.
        Returns ``H[t, v] = seeds[t]^{i·n} · Σ_u rows01[v, u] ·
        seeds[t]^{u+1} mod p`` — one fancy-indexed matmul for the whole
        batch.  Row sums stay below 2⁶² (n < 2²¹ terms under a < 2⁴¹
        modulus), so the accumulation is exact.
        """
        from ..core.kernels._np import mulmod, require_numpy
        np = require_numpy()
        if n * n > self.m:
            raise ValueError(
                f"matrix {n}x{n} does not fit dimension m={self.m}")
        self._check_sum_headroom(n)
        powers = self.power_table_batch(seeds, n)
        strides = self.stride_power_batch(seeds, n, n)
        rows01 = np.asarray(rows01, dtype=np.int64)
        sums = powers @ rows01.T % self.p
        row_indices = np.asarray(row_indices, dtype=np.int64)
        return mulmod(strides[:, row_indices], sums, self.p)

    def row_hash_batch_csr(self, seeds, n: int, row_indices, indptr,
                           indices):
        """Sparse :meth:`row_hash_batch`: rows as CSR index lists.

        ``(indptr, indices)`` describe each node's characteristic
        vector as the column indices of its set bits (CSR over the
        ``(nodes, n)`` 0/1 matrix): row ``v`` holds the columns
        ``indices[indptr[v]:indptr[v+1]]``.  Returns the same
        ``H[t, v]`` integers as the dense form — a segmented gather-sum
        (``np.add.reduceat``) replaces the dense matmul, so work and
        memory are O(trials · nnz) instead of O(trials · nodes · n).
        Rows must be non-empty (closed neighborhoods always are;
        ``reduceat`` does not represent empty segments).
        """
        from ..core.kernels._np import mulmod, require_numpy
        np = require_numpy()
        if n * n > self.m:
            raise ValueError(
                f"matrix {n}x{n} does not fit dimension m={self.m}")
        self._check_sum_headroom(n)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.shape[0] < 2 or (indptr[1:] <= indptr[:-1]).any():
            raise ValueError("CSR rows must be non-empty and ordered")
        powers = self.power_table_batch(seeds, n)
        strides = self.stride_power_batch(seeds, n, n)
        sums = np.add.reduceat(powers[:, indices], indptr[:-1],
                               axis=1) % self.p
        row_indices = np.asarray(row_indices, dtype=np.int64)
        return mulmod(strides[:, row_indices], sums, self.p)

    def _check_sum_headroom(self, n: int) -> None:
        """Refuse batched row sums that could overflow int64.

        A row sum accumulates up to ``n`` unreduced powers below ``p``;
        ``bits(n) + bits(p-1) <= 62`` keeps the total below 2⁶³ with a
        sign bit to spare.  Raises the same ``UnsupportedModulus`` the
        kernels use, so callers fall back to the exact python path
        instead of silently wrapping.
        """
        from .primes import UnsupportedModulus
        if n.bit_length() + max(self.p - 1, 1).bit_length() > 62:
            raise UnsupportedModulus(
                f"batched row sums of {n} terms under modulus {self.p} "
                f"({self.p.bit_length()} bits) may overflow int64; use "
                f"the python engine")

    def hash_vector_batch(self, seeds, coeffs: Sequence[int]):
        """Batched :meth:`hash_vector`: Horner's rule down the
        coefficient list, one ``mulmod``/``np.mod`` step per
        coefficient, over a whole seed batch at once."""
        from ..core.kernels._np import mulmod, require_numpy
        np = require_numpy()
        if len(coeffs) > self.m:
            raise ValueError("vector longer than dimension m")
        seeds = np.asarray(seeds, dtype=np.int64)
        acc = np.zeros_like(seeds)
        for c in reversed(coeffs):
            acc = np.mod(mulmod(acc, seeds, self.p) + c % self.p, self.p)
        return mulmod(acc, seeds, self.p)

    def hash_matrix_sum(self, seed: int, matrix: MatrixSum) -> int:
        """Hash a full ``MatrixSum`` (reference implementation for tests).

        Equals the sum of ``hash_row_matrix`` over the constituent rows
        by linearity; the protocols use the per-row form, tests compare
        both.
        """
        if matrix.p != self.p:
            raise ValueError("matrix modulus differs from hash modulus")
        flat = [entry for row in matrix.rows for entry in row]
        return self.hash_vector(seed, flat)

    def add(self, *values: int) -> int:
        """Sum hash values in the output group Z_p."""
        return sum(values) % self.p

    def _check_seed(self, seed: int) -> None:
        if not 0 <= seed < self.p:
            raise ValueError(f"seed {seed} outside [0, {self.p})")


def collision_seed_count(family: LinearHashFamily,
                         coeffs_a: Sequence[int],
                         coeffs_b: Sequence[int]) -> int:
    """Exactly count seeds with ``h_s(a) = h_s(b)`` (brute force over p).

    Used by tests and the soundness experiments with *small* p to check
    the ≤ m/p collision law exactly.
    """
    return sum(1 for s in range(family.p)
               if family.hash_vector(s, coeffs_a)
               == family.hash_vector(s, coeffs_b))
