"""The distributed ε-almost pairwise-independent hash (Section 4).

The Goldwasser–Sipser set-size estimation at the heart of the GNI
protocol needs a hash ``h : {0,1}^{n²} → [q]`` with, for ``x ≠ x'``:

  (1)  Pr[h(x) = y ∧ h(x') = y'] ≤ (1+ε)/q²           (ε-API axiom)
  (2)  Pr[h(x) = y] = (1 ± δ)/q                        (near-uniformity)

and, critically, a *distributed* structure: the seed is contributed in
small parts by the network nodes, and a claimed hash value can be
verified up a spanning tree with the prover's assistance.

The paper's concrete construction is in its full version; we build one
with the same interface and guarantees (see DESIGN.md §2.3):

    h(x)  =  g_{a,b}( H_s(x) + C )   where   C = Σ_v c_v (mod Q),
    g_{a,b}(z) = ((a·z + b) mod Q) mod q,

with ``H_s`` the Theorem-3.2 linear row hash into F_Q (shared seed
``s``, aggregatable row-by-row up the spanning tree exactly like
Protocol 1), ``c_v`` a private additive offset held by node ``v``, and
``(a, b, y)`` held by the root.  Why this satisfies the axioms:

* **(2)**: ``C`` is uniform on F_Q and independent of everything else,
  so ``H_s(x) + C`` is uniform; pushing a uniform value through
  ``g_{a,b}`` and the mod-q truncation gives each target probability
  in ``[⌊Q/q⌋/Q, ⌈Q/q⌉/Q]`` — i.e. δ ≤ q/Q.
* **(1)**: the offsets cancel in ``h(x) − h(x')``-type events.  If
  ``H_s(x) ≠ H_s(x')``, the affine map ``(a, b) ↦ (a z₁ + b, a z₂ + b)``
  is a bijection of F_Q², making the pre-truncation pair exactly
  uniform — probability ≤ (⌈Q/q⌉/Q)².  The collision case
  ``H_s(x) = H_s(x')`` happens with probability ≤ m/Q (Theorem 3.2,
  m = n²) and then contributes only to ``y = y'``.  Altogether
  ε ≤ (m + 2)·q/Q + O((q/Q)²).

Choosing ``Q ≥ 100·q·(m+2)`` (prime) gives ε ≤ ~0.02 and δ ≤ 10⁻⁴·…,
small enough for the GS gap.  Seed sizes: each node holds
``c_v`` (log Q bits); the root additionally holds ``s, a, b``
(3·log Q bits) and the target ``y`` — everything O(n log n) for the
GNI parameters (q ≈ 4·n!), matching the paper's budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from .linear import LinearHashFamily
from .primes import next_prime


@dataclass(frozen=True)
class APIChallenge:
    """One full challenge for one GS repetition.

    ``s, a, b`` and the target ``y`` are the root's contribution;
    ``offsets[v]`` is node v's private part ``c_v``.
    """

    s: int
    a: int
    b: int
    y: int
    offsets: tuple

    @property
    def offset_total(self) -> int:
        return sum(self.offsets)


class DistributedAPIHash:
    """ε-API hash ``{0,1}^m → [q]`` with a distributed, verifiable seed."""

    def __init__(self, m: int, q: int, big_q: Optional[int] = None) -> None:
        if m < 1:
            raise ValueError("input dimension must be positive")
        if q < 2:
            raise ValueError("output modulus must be >= 2")
        self.m = m
        self.q = q
        self.big_q = big_q if big_q is not None else next_prime(
            100 * q * (m + 2))
        if self.big_q <= q:
            raise ValueError("inner field must be larger than output range")
        self.inner = LinearHashFamily(m=m, p=self.big_q)

    # -- guarantees --------------------------------------------------------

    @property
    def epsilon(self) -> float:
        """Upper bound on the axiom-(1) excess ε (see module docstring)."""
        ratio = self.q / self.big_q
        return (self.m + 2) * ratio + 3 * ratio * ratio

    @property
    def delta(self) -> float:
        """Upper bound on the axiom-(2) deviation δ."""
        return self.q / self.big_q

    # -- seeds ---------------------------------------------------------------

    def sample_node_offset(self, rng: random.Random) -> int:
        """One node's private seed part ``c_v``."""
        return rng.randrange(self.big_q)

    def sample_root_part(self, rng: random.Random) -> tuple:
        """The root's seed part ``(s, a, b)`` plus the GS target ``y``."""
        return (rng.randrange(self.big_q), rng.randrange(self.big_q),
                rng.randrange(self.big_q), rng.randrange(self.q))

    def sample_challenge(self, n_nodes: int,
                         rng: random.Random) -> APIChallenge:
        """A full challenge (root part + one offset per node)."""
        s, a, b, y = self.sample_root_part(rng)
        offsets = tuple(self.sample_node_offset(rng) for _ in range(n_nodes))
        return APIChallenge(s=s, a=a, b=b, y=y, offsets=offsets)

    @property
    def node_seed_bits(self) -> int:
        """Bits of one node's seed part."""
        return self.inner.seed_bits

    @property
    def root_seed_bits(self) -> int:
        """Extra bits of the root's part (s, a, b, y)."""
        return 3 * self.inner.seed_bits + max(1, (self.q - 1).bit_length())

    # -- hashing ---------------------------------------------------------------

    def row_term(self, s: int, c: int, n: int, row_index: int,
                 row_bits: int) -> int:
        """Node v's own contribution for an n×n matrix row it holds:
        ``s^{row_index·n} · poly_s(row_bits) + c  (mod Q)``.

        Summing these over all nodes (up the spanning tree) gives
        ``H_s(x) + C`` for the full matrix encoding ``x``.
        """
        return (self.inner.hash_row_matrix(s, n, row_index, row_bits)
                + c) % self.big_q

    def finalize(self, a: int, b: int, aggregate: int) -> int:
        """The root's step: ``g_{a,b}(aggregate) ∈ [q]``."""
        return ((a * aggregate + b) % self.big_q) % self.q

    def hash_encoding(self, challenge: APIChallenge, bits: int) -> int:
        """Hash a full m-bit encoding (prover-side / reference path).

        Equals the tree aggregation of :meth:`row_term` by linearity;
        tests check the two paths agree.
        """
        inner_value = (self.inner.hash_bits(challenge.s, bits)
                       + challenge.offset_total) % self.big_q
        return self.finalize(challenge.a, challenge.b, inner_value)

    def preimage_exists(self, challenge: APIChallenge,
                        encodings: Iterable[int]) -> Optional[int]:
        """The prover's search: some ``x`` in the set with ``h(x) = y``.

        Returns the first matching encoding, or None.  The prover is
        computationally unbounded in the model; here we enumerate,
        with a per-challenge power table so each encoding costs only
        popcount-many additions.
        """
        table = self.inner.power_table(challenge.s)
        offset = challenge.offset_total
        for bits in encodings:
            inner_value = (self.inner.hash_bits_with_table(table, bits)
                           + offset) % self.big_q
            if self.finalize(challenge.a, challenge.b,
                             inner_value) == challenge.y:
                return bits
        return None


def gs_output_modulus(set_size_yes: int) -> int:
    """The GS output range: a prime just above ``2 · |S_yes|``.

    With ``|S| = set_size_yes`` on YES instances (2·n! for GNI) and
    half that on NO instances, the per-repetition acceptance
    probabilities land near 1/2 − 1/8 = 3/8 and 1/4 respectively.
    """
    if set_size_yes < 1:
        raise ValueError("set size must be positive")
    return next_prime(2 * set_size_yes)
