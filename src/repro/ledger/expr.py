"""The cost-bound expression mini-language.

Bounds in the ledger are tiny symbolic expressions over non-negative
rationals — ``"4 * log2(n)"``, ``"c * n * log2(n)"``,
``"n * n + n * log2(n)"`` — built from exactly the nodes a
communication bound needs: constants, variables, sums, products,
``log2``, ``loglog2`` and ``ceil``.  Three properties matter more than
expressive power:

* **Exact evaluation.**  ``evaluate`` computes in
  :class:`fractions.Fraction`; there is no float anywhere, so a
  checked inequality is a theorem about integers, not about rounding.
  ``log2`` is the *ceiling* log — ``ceil_log2(x)`` is the smallest
  ``k ≥ 0`` with ``2**k ≥ x`` — which is the bit-accounting log:
  for integer ``n ≥ 2`` it equals ``bits_for_identifier(n)`` from
  :mod:`repro.core.model`.
* **Byte-stable rendering.**  ``render`` is a pure function of the
  tree and ``parse(render(e)) == e`` (the smart constructors
  normalize both sides identically), so generated cost tables are
  reproducible bytes.
* **Zero dependencies.**  sympy is available behind
  :func:`to_sympy` / :func:`simplify_str` for the optional
  ``repro[symbolic]`` extra, but nothing in the check path needs it.

Grammar (whitespace-insensitive)::

    expr    := term ('+' term)*
    term    := factor (('*' | '/' INT) factor?)*
    factor  := primary ('^' INT)?
    primary := INT | NAME | FUNC '(' expr ')' | '(' expr ')'
    FUNC    := 'log2' | 'loglog2' | 'ceil'

``/`` takes an integer literal divisor (exact rational scaling) and
``^`` a non-negative integer exponent (desugared to a product, so the
node set stays minimal).  There is no subtraction: bounds are
monotone, and keeping the algebra additive makes every expression
non-decreasing in every variable by construction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List, Mapping, Tuple, Union

Number = Union[int, Fraction]

#: Names with call syntax; they cannot be used as variables.
FUNCTIONS = ("ceil", "log2", "loglog2")

_TOKEN = re.compile(r"\s*(?:(\d+)|([a-z][a-z0-9_]*)|([()+*/^]))")


class ParseError(ValueError):
    """A malformed bound expression (with position context)."""


def ceil_log2(x: Number) -> int:
    """The smallest ``k ≥ 0`` with ``2**k ≥ x`` (exact, any rational).

    This is the bit-accounting logarithm: ``ceil_log2(n)`` equals
    ``(n - 1).bit_length()`` for integer ``n ≥ 2``, i.e. the width of
    an identifier in ``0..n-1``.
    """
    x = Fraction(x)
    if x <= 0:
        raise ValueError(f"ceil_log2 of non-positive value {x}")
    if x <= 1:
        return 0
    # Start from the integer ceiling's bound, then tighten for
    # fractional x just below a power of two.
    k = (-(-x.numerator // x.denominator) - 1).bit_length()
    while k > 0 and Fraction(2) ** (k - 1) >= x:
        k -= 1
    return k


class Expr:
    """Base class; concrete nodes are the frozen dataclasses below."""

    __slots__ = ()

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Exact value of the expression under ``env`` bindings."""
        raise NotImplementedError

    def free_vars(self) -> Tuple[str, ...]:
        """Sorted free variable names."""
        names = set()
        _collect_vars(self, names)
        return tuple(sorted(names))

    def __call__(self, **env: Number) -> Fraction:
        return self.evaluate(env)

    def __str__(self) -> str:
        return render(self)


@dataclass(frozen=True)
class Const(Expr):
    value: Fraction

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        return self.value


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        try:
            return Fraction(env[self.name])
        except KeyError:
            raise ValueError(f"unbound variable {self.name!r} "
                             f"(have {sorted(env)})") from None


@dataclass(frozen=True)
class Add(Expr):
    terms: Tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        return sum((term.evaluate(env) for term in self.terms),
                   Fraction(0))


@dataclass(frozen=True)
class Mul(Expr):
    factors: Tuple[Expr, ...]

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        product = Fraction(1)
        for factor in self.factors:
            product *= factor.evaluate(env)
        return product


@dataclass(frozen=True)
class Log2(Expr):
    """``ceil_log2(max(1, x))`` — the identifier width, clamped to 0
    for x ≤ 1 so nested logs stay total (``log2(log2(n))`` at n=2)."""

    arg: Expr

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        return Fraction(ceil_log2(max(Fraction(1),
                                      self.arg.evaluate(env))))


@dataclass(frozen=True)
class LogLog2(Expr):
    """``ceil_log2(max(1, ceil_log2(max(1, x))))`` — the
    doubly-logarithmic bound of Theorem 1.4, clamped at both levels so
    it is total like :class:`Log2`."""

    arg: Expr

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        operand = max(Fraction(1), self.arg.evaluate(env))
        inner = max(1, ceil_log2(operand))
        return Fraction(ceil_log2(inner))


@dataclass(frozen=True)
class Ceil(Expr):
    arg: Expr

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        value = self.arg.evaluate(env)
        return Fraction(-(-value.numerator // value.denominator))


# -- smart constructors ---------------------------------------------------
#
# All expression trees — parsed, hand-built, or substituted — go
# through these, so structural equality is normal-form equality and
# parse(render(e)) == e holds for every e.

def const(value: Number) -> Const:
    value = Fraction(value)
    if value < 0:
        raise ValueError("bounds are non-negative; no negative constants")
    return Const(value)


def add(*terms: Expr) -> Expr:
    flat: List[Expr] = []
    constant = Fraction(0)
    for term in terms:
        if isinstance(term, Add):
            flat.extend(term.terms)
        else:
            flat.append(term)
    symbolic = []
    for term in flat:
        if isinstance(term, Const):
            constant += term.value
        else:
            symbolic.append(term)
    if constant or not symbolic:
        symbolic.append(const(constant))
    return symbolic[0] if len(symbolic) == 1 else Add(tuple(symbolic))


def mul(*factors: Expr) -> Expr:
    flat: List[Expr] = []
    constant = Fraction(1)
    for factor in factors:
        if isinstance(factor, Mul):
            flat.extend(factor.factors)
        else:
            flat.append(factor)
    symbolic = []
    for factor in flat:
        if isinstance(factor, Const):
            constant *= factor.value
        else:
            symbolic.append(factor)
    if constant == 0 or not symbolic:
        return const(constant)
    if constant != 1:
        symbolic.insert(0, const(constant))
    return symbolic[0] if len(symbolic) == 1 else Mul(tuple(symbolic))


def _collect_vars(expr: Expr, names: set) -> None:
    if isinstance(expr, Var):
        names.add(expr.name)
    elif isinstance(expr, Add):
        for term in expr.terms:
            _collect_vars(term, names)
    elif isinstance(expr, Mul):
        for factor in expr.factors:
            _collect_vars(factor, names)
    elif isinstance(expr, (Log2, LogLog2, Ceil)):
        _collect_vars(expr.arg, names)


def substitute(expr: Expr, **bindings: Number) -> Expr:
    """Replace variables with constants, renormalizing as we go."""
    if isinstance(expr, Var):
        return const(bindings[expr.name]) if expr.name in bindings \
            else expr
    if isinstance(expr, Add):
        return add(*(substitute(t, **bindings) for t in expr.terms))
    if isinstance(expr, Mul):
        return mul(*(substitute(f, **bindings) for f in expr.factors))
    if isinstance(expr, Log2):
        return Log2(substitute(expr.arg, **bindings))
    if isinstance(expr, LogLog2):
        return LogLog2(substitute(expr.arg, **bindings))
    if isinstance(expr, Ceil):
        return Ceil(substitute(expr.arg, **bindings))
    return expr


# -- parsing --------------------------------------------------------------

def _tokens(text: str) -> Iterator[Tuple[str, str]]:
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(f"unexpected character "
                                 f"{text[pos:].strip()[0]!r} in {text!r}")
            break
        pos = match.end()
        if match.group(1):
            yield "int", match.group(1)
        elif match.group(2):
            yield "name", match.group(2)
        else:
            yield "op", match.group(3)


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = list(_tokens(text))
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) \
            else ("end", "")

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        self.pos += 1
        return token

    def expect(self, kind: str, value: str) -> None:
        token = self.take()
        if token != (kind, value):
            raise ParseError(f"expected {value!r}, got "
                             f"{token[1] or 'end of input'!r} in "
                             f"{self.text!r}")

    def expr(self) -> Expr:
        terms = [self.term()]
        while self.peek() == ("op", "+"):
            self.take()
            terms.append(self.term())
        return add(*terms)

    def term(self) -> Expr:
        factors = [self.factor()]
        while True:
            token = self.peek()
            if token == ("op", "*"):
                self.take()
                factors.append(self.factor())
            elif token == ("op", "/"):
                self.take()
                kind, value = self.take()
                if kind != "int":
                    raise ParseError(f"divisor must be an integer "
                                     f"literal in {self.text!r}")
                if int(value) == 0:
                    raise ParseError(f"division by zero in {self.text!r}")
                factors.append(const(Fraction(1, int(value))))
            else:
                break
        return mul(*factors)

    def factor(self) -> Expr:
        base = self.primary()
        if self.peek() == ("op", "^"):
            self.take()
            kind, value = self.take()
            if kind != "int":
                raise ParseError(f"exponent must be an integer literal "
                                 f"in {self.text!r}")
            exponent = int(value)
            if exponent == 0:
                return const(1)
            return mul(*([base] * exponent))
        return base

    def primary(self) -> Expr:
        kind, value = self.take()
        if kind == "int":
            return const(int(value))
        if kind == "name":
            if value in FUNCTIONS:
                self.expect("op", "(")
                arg = self.expr()
                self.expect("op", ")")
                return {"log2": Log2, "loglog2": LogLog2,
                        "ceil": Ceil}[value](arg)
            return Var(value)
        if (kind, value) == ("op", "("):
            inner = self.expr()
            self.expect("op", ")")
            return inner
        raise ParseError(f"expected a value, got "
                         f"{value or 'end of input'!r} in {self.text!r}")


def parse(text: str) -> Expr:
    """Parse the compact string form (see the module grammar)."""
    parser = _Parser(text)
    expr = parser.expr()
    if parser.peek()[0] != "end":
        raise ParseError(f"trailing input after expression in {text!r}")
    return expr


# -- rendering ------------------------------------------------------------

def _render_const(value: Fraction) -> str:
    return str(value.numerator) if value.denominator == 1 \
        else f"{value.numerator}/{value.denominator}"


def render(expr: Expr) -> str:
    """The canonical compact string; ``parse(render(e)) == e``."""
    if isinstance(expr, Const):
        return _render_const(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Add):
        return " + ".join(render(term) for term in expr.terms)
    if isinstance(expr, Mul):
        parts = []
        for factor in expr.factors:
            text = render(factor)
            parts.append(f"({text})" if isinstance(factor, Add) else text)
        return " * ".join(parts)
    if isinstance(expr, Log2):
        return f"log2({render(expr.arg)})"
    if isinstance(expr, LogLog2):
        return f"loglog2({render(expr.arg)})"
    if isinstance(expr, Ceil):
        return f"ceil({render(expr.arg)})"
    raise TypeError(f"not an expression: {expr!r}")


# -- optional sympy bridge (the repro[symbolic] extra) --------------------

def to_sympy(expr: Expr):
    """The sympy form of a bound (``repro[symbolic]`` extra only).

    ``log2``/``loglog2`` map to ceiling-of-log to preserve the exact
    semantics; raises :class:`RuntimeError` when sympy is missing —
    nothing in the check path calls this.
    """
    try:
        import sympy
    except ImportError:
        raise RuntimeError(
            "sympy is not installed; the sympy bridge is the optional "
            "repro[symbolic] extra (pip install repro[symbolic])"
        ) from None
    if isinstance(expr, Const):
        return sympy.Rational(expr.value.numerator,
                              expr.value.denominator)
    if isinstance(expr, Var):
        return sympy.Symbol(expr.name, positive=True)
    if isinstance(expr, Add):
        return sympy.Add(*(to_sympy(term) for term in expr.terms))
    if isinstance(expr, Mul):
        return sympy.Mul(*(to_sympy(factor) for factor in expr.factors))
    if isinstance(expr, Log2):
        return sympy.ceiling(sympy.log(to_sympy(expr.arg), 2))
    if isinstance(expr, LogLog2):
        inner = sympy.Max(1, sympy.ceiling(
            sympy.log(to_sympy(expr.arg), 2)))
        return sympy.ceiling(sympy.log(inner, 2))
    if isinstance(expr, Ceil):
        return sympy.ceiling(to_sympy(expr.arg))
    raise TypeError(f"not an expression: {expr!r}")


def simplify_str(text: str) -> str:
    """Pretty (LaTeX) form of a bound via sympy — optional extra."""
    import sympy
    return sympy.latex(sympy.simplify(to_sympy(parse(text))))
