"""Cost declarations: each protocol's bounds as data.

A :class:`CostDeclaration` is a protocol module's public claim about
its own communication: one :class:`PhaseCost` per round of the
pattern (channel ``arthur`` for node→prover challenge rounds,
``merlin`` for prover→node proof rounds), optional extra series for
non-interactive primitives (channel ``verify`` for the
verification-exchange schemes, ``analytic`` for lower-bound tables),
and a headline ``total`` with the paper reference it reproduces.

Bounds are expressions in ``n`` (the network size the lab records as
a cell's ``size``).  A bound that mentions the variable ``c`` is a
*fitted* bound — the evaluator determines the single leading constant
from the baseline decade of measured cells; a bound without ``c`` is
an *absolute* cap the measurement must never exceed, with no
tolerance.

Declarations live next to the code they describe: every protocol
module in :mod:`repro.protocols` (and the packing / edge-verification
/ netsim modules) exports a ``COST_DECLARATIONS`` tuple, and
:func:`declarations` collects them all.  ``ledger check`` fails when
a protocol the lab exercises has no declaration, so adding a protocol
without declaring its cost breaks CI by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Dict, Optional, Tuple

from .expr import Expr, parse, render

CHANNEL_ARTHUR = "arthur"      # nodes -> prover (challenge bits)
CHANNEL_MERLIN = "merlin"      # prover -> nodes (proof bits)
CHANNEL_VERIFY = "verify"      # node <-> node verification exchange
CHANNEL_ANALYTIC = "analytic"  # analytic tables (no wire traffic)
CHANNELS = (CHANNEL_ARTHUR, CHANNEL_MERLIN, CHANNEL_VERIFY,
            CHANNEL_ANALYTIC)

#: Pattern letter -> the channel its round bills to.
_PATTERN_CHANNEL = {"A": CHANNEL_ARTHUR, "M": CHANNEL_MERLIN}

#: Variables a bound may mention: the network size and the fitted
#: leading constant.
ALLOWED_VARS = frozenset({"c", "n"})

#: The modules whose ``COST_DECLARATIONS`` form the registry.
DECLARING_MODULES = (
    "repro.protocols.sym_dmam",
    "repro.protocols.sym_dam",
    "repro.protocols.lcp",
    "repro.protocols.dsym",
    "repro.protocols.fixed_map",
    "repro.protocols.gni",
    "repro.protocols.gni_general",
    "repro.protocols.gni_marked",
    "repro.lowerbound.packing",
    "repro.network.randomized_verification",
    "repro.netsim.sim",
)


@dataclass(frozen=True)
class PhaseCost:
    """One bounded series: a round, a channel, a bound, a reference."""

    phase: str        # "M0", "A1", ... or a primitive's series name
    channel: str
    bound: Expr
    reference: str

    def __post_init__(self) -> None:
        if self.channel not in CHANNELS:
            raise ValueError(f"unknown channel {self.channel!r}")
        stray = set(self.bound.free_vars()) - ALLOWED_VARS
        if stray:
            raise ValueError(f"bound for {self.phase} uses unknown "
                             f"variables {sorted(stray)}")

    @property
    def fitted(self) -> bool:
        """Fitted bounds carry the leading constant ``c``."""
        return "c" in self.bound.free_vars()

    @property
    def bound_str(self) -> str:
        return render(self.bound)


def phase(name: str, channel: str, bound: str,
          reference: str) -> PhaseCost:
    """Shorthand constructor: the bound as a compact string."""
    return PhaseCost(name, channel, parse(bound), reference)


@dataclass(frozen=True)
class CostDeclaration:
    """A protocol's full per-phase cost claim plus its headline total.

    ``pattern`` is the round pattern for interactive protocols (each
    letter gets exactly one phase, in round order, named
    ``<letter><index>``) or ``""`` for non-interactive primitives
    (whose phases are free-form named series).
    """

    key: str          # lab PROTOCOLS key, or a primitive's series key
    title: str
    pattern: str
    asymptotic: str   # the paper's O(·) claim, for the table
    reference: str
    phases: Tuple[PhaseCost, ...]
    total: PhaseCost = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.total is None:
            raise ValueError(f"{self.key}: a declaration needs a total")
        if self.pattern:
            if len(self.phases) != len(self.pattern):
                raise ValueError(
                    f"{self.key}: {len(self.phases)} phases declared "
                    f"for pattern {self.pattern!r}")
            for idx, (letter, cost) in enumerate(
                    zip(self.pattern, self.phases)):
                if letter not in _PATTERN_CHANNEL:
                    raise ValueError(f"{self.key}: unknown round kind "
                                     f"{letter!r}")
                expected = f"{letter}{idx}"
                if cost.phase != expected:
                    raise ValueError(f"{self.key}: phase {idx} must be "
                                     f"named {expected!r}, got "
                                     f"{cost.phase!r}")
                if cost.channel != _PATTERN_CHANNEL[letter]:
                    raise ValueError(
                        f"{self.key}: round {idx} is "
                        f"{_PATTERN_CHANNEL[letter]}, phase declares "
                        f"{cost.channel!r}")

    def channel_bound(self, channel: str) -> Optional[Expr]:
        """Sum of the declared phase bounds billed to ``channel``."""
        from .expr import add
        bounds = [cost.bound for cost in self.phases
                  if cost.channel == channel]
        return add(*bounds) if bounds else None


def declarations() -> Dict[str, CostDeclaration]:
    """The registry: every ``COST_DECLARATIONS`` export, by key.

    Collected fresh on each call (cheap: the modules are already
    imported in any process that ran a protocol); duplicate keys are
    a programming error.
    """
    registry: Dict[str, CostDeclaration] = {}
    for module_name in DECLARING_MODULES:
        module = import_module(module_name)
        for declaration in getattr(module, "COST_DECLARATIONS", ()):
            if declaration.key in registry:
                raise ValueError(f"duplicate cost declaration for "
                                 f"{declaration.key!r} "
                                 f"(in {module_name})")
            registry[declaration.key] = declaration
    return registry
