"""Store-backed evaluation: declared bounds vs measured bits.

For every lab spec with a cost declaration this module builds the
measured *series* — one per declared phase, one per channel
(arthur/merlin sums), one for the headline total — from the committed
result store's cells, then checks each series against its bound:

* **Absolute bounds** (no ``c`` variable) are hard caps: every
  measured value must satisfy ``measured ≤ bound(n)`` exactly, no
  tolerance.  These are the per-phase bills derived from the
  protocols' field layouts.
* **Fitted bounds** carry the single leading constant ``c``.  The
  evaluator fits it on the *baseline decade* — the cells whose size is
  within 10× the smallest recorded size — as the smallest exact
  rational covering those cells (``c_fit = max measured/shape``), then
  asserts ``measured ≤ bound(n, c_fit) · (1 + tol)`` for **every**
  cell, including the sizes beyond the decade.  A declared shape that
  undershoots the true growth (``log n`` claimed for an ``n²`` curve)
  fits a small constant on the cheap cells and is violated by the
  expensive ones — which is exactly how the check has teeth.

Everything is exact :class:`fractions.Fraction` arithmetic; the JSON
report renders rationals as ``"p/q"`` strings so it is byte-stable.

:func:`check_live` is the ``ExecutionResult`` side of the same coin:
it executes one honest run at a given size and checks the *recomputed*
per-phase bits (:func:`repro.core.report.execution_cost` — the helper
the lab and obs gates share) against the declaration's absolute
phase bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.context import InstanceContext
from ..core.report import execution_cost
from ..core.runner import run_protocol
from .declare import (CHANNEL_ARTHUR, CHANNEL_MERLIN, CostDeclaration,
                      declarations)
from .expr import Expr, render
from ..lab.spec import (ExperimentSpec, GRAPHS, KIND_EDGECHECK,
                        KIND_NETSIM_EQUIV, KIND_PACKING, KIND_SWEEP,
                        PROTOCOLS, PROVERS, REGISTRY)
from ..lab.store import ResultStore

#: Relative headroom for fitted bounds beyond the baseline decade.
DEFAULT_TOL = Fraction(1, 4)

#: The baseline decade: cells within this factor of the smallest
#: recorded size anchor the fitted constant.
DECADE = 10

#: Spec kinds the ledger can read measurements from.
CHECKED_KINDS = (KIND_SWEEP, KIND_PACKING, KIND_EDGECHECK,
                 KIND_NETSIM_EQUIV)


def spec_declaration_key(spec: ExperimentSpec) -> Optional[str]:
    """Which declaration covers a spec's cells (None: not a cost
    experiment — collision counts and fault matrices have no bound)."""
    if spec.kind == KIND_SWEEP:
        return spec.protocol
    if spec.kind == KIND_PACKING:
        return "packing"
    if spec.kind == KIND_EDGECHECK:
        return "edgecheck"
    if spec.kind == KIND_NETSIM_EQUIV:
        return "netsim-crosscheck"
    return None


def _fraction_str(value: Optional[Fraction]) -> Optional[str]:
    if value is None:
        return None
    return str(value.numerator) if value.denominator == 1 \
        else f"{value.numerator}/{value.denominator}"


@dataclass
class Series:
    """One measured curve with its declared bound."""

    name: str          # "M0", "A1", ..., "arthur", "merlin", "total"
    channel: str
    bound: Expr
    reference: str
    points: List[Tuple[int, int]]  # (size, measured bits), size order


def _sweep_points(spec: ExperimentSpec,
                  cells: Dict[str, Dict[str, Any]]
                  ) -> Tuple[List[Tuple[int, List[int]]], List[str]]:
    """Per-size round-bit vectors of the spec's fit prover, plus any
    same-size disagreements (drift: trial count must not change a
    deterministic cost measurement)."""
    by_size: Dict[int, List[int]] = {}
    drift: List[str] = []
    for record in cells.values():
        if record["prover"] != spec.fit_prover:
            continue
        size, rounds = record["size"], list(record["round_bits"])
        if size in by_size and by_size[size] != rounds:
            drift.append(f"size {size}: round bits {by_size[size]} "
                         f"vs {rounds}")
        by_size[size] = rounds
    return sorted(by_size.items()), drift


def _series_for_spec(spec: ExperimentSpec,
                     declaration: CostDeclaration,
                     cells: Dict[str, Dict[str, Any]]
                     ) -> Tuple[List[Series], List[str]]:
    """The measured series of one spec, and any drift errors."""
    series: List[Series] = []
    errors: List[str] = []

    def extra_points(field: str) -> List[Tuple[int, int]]:
        by_size = {record["size"]: record["extra"][field]
                   for record in cells.values()}
        return sorted(by_size.items())

    if spec.kind == KIND_SWEEP:
        sized, drift = _sweep_points(spec, cells)
        errors.extend(drift)
        if sized and any(len(rounds) != len(declaration.pattern)
                         for _, rounds in sized):
            errors.append(
                f"round_bits length != pattern {declaration.pattern!r}")
            return series, errors
        for idx, cost in enumerate(declaration.phases):
            series.append(Series(cost.phase, cost.channel, cost.bound,
                                 cost.reference,
                                 [(size, rounds[idx])
                                  for size, rounds in sized]))
        for channel in (CHANNEL_ARTHUR, CHANNEL_MERLIN):
            bound = declaration.channel_bound(channel)
            if bound is None:
                continue
            indices = [idx for idx, cost
                       in enumerate(declaration.phases)
                       if cost.channel == channel]
            series.append(Series(
                channel, channel, bound,
                f"sum of declared {channel} phases",
                [(size, sum(rounds[idx] for idx in indices))
                 for size, rounds in sized]))
        total_points = [(size, sum(rounds)) for size, rounds in sized]
    elif spec.kind == KIND_PACKING:
        by_size = {record["size"]: record["bits"]
                   for record in cells.values()}
        total_points = sorted(by_size.items())
        for cost in declaration.phases:
            series.append(Series(cost.phase, cost.channel, cost.bound,
                                 cost.reference, list(total_points)))
    elif spec.kind == KIND_EDGECHECK:
        by_size = {record["size"]: record["bits"]
                   for record in cells.values()}
        total_points = sorted(by_size.items())
        source = {"hash": total_points, "det": extra_points("det_bits")}
        for cost in declaration.phases:
            series.append(Series(cost.phase, cost.channel, cost.bound,
                                 cost.reference,
                                 list(source[cost.phase])))
    else:  # KIND_NETSIM_EQUIV
        total_points = extra_points("crosscheck_bits")
        for cost in declaration.phases:
            series.append(Series(cost.phase, cost.channel, cost.bound,
                                 cost.reference, list(total_points)))
    total = declaration.total
    series.append(Series("total", total.channel, total.bound,
                         total.reference, total_points))
    return series, errors


def _check_series(series: Series,
                  tol: Fraction) -> Dict[str, Any]:
    """Fit (if the bound carries ``c``) and check one series."""
    fitted = "c" in series.bound.free_vars()
    result: Dict[str, Any] = {
        "series": series.name,
        "channel": series.channel,
        "bound": render(series.bound),
        "reference": series.reference,
        "fitted": fitted,
        "cells": len(series.points),
        "c_fit": None,
        "violations": [],
        "worst_slack": None,
    }
    if not series.points:
        result["ok"] = True
        return result
    c_fit: Optional[Fraction] = None
    if fitted:
        smallest = series.points[0][0]
        baseline = [(size, measured) for size, measured in series.points
                    if size <= DECADE * smallest]
        c_fit = max(Fraction(measured)
                    / series.bound.evaluate({"n": size, "c": 1})
                    for size, measured in baseline)
        result["c_fit"] = _fraction_str(c_fit)
    worst: Optional[Fraction] = None
    for size, measured in series.points:
        if fitted:
            allowed = series.bound.evaluate({"n": size, "c": c_fit}) \
                * (1 + tol)
        else:
            allowed = series.bound.evaluate({"n": size})
        slack = Fraction(measured) / allowed if allowed else None
        if slack is not None and (worst is None or slack > worst):
            worst = slack
        if allowed < measured:
            result["violations"].append({
                "n": size,
                "measured": measured,
                "allowed": _fraction_str(allowed),
            })
    result["worst_slack"] = _fraction_str(worst)
    result["ok"] = not result["violations"]
    return result


def check_spec(spec: ExperimentSpec,
               cells: Dict[str, Dict[str, Any]],
               registry: Optional[Dict[str, CostDeclaration]] = None,
               tol: Fraction = DEFAULT_TOL) -> Dict[str, Any]:
    """One spec's full ledger verdict (phases, channels, total)."""
    registry = declarations() if registry is None else registry
    key = spec_declaration_key(spec)
    entry: Dict[str, Any] = {
        "spec": spec.name,
        "kind": spec.kind,
        "declaration": key,
        "series": [],
        "errors": [],
    }
    if key is None:
        entry["status"] = "not-applicable"
        entry["ok"] = True
        return entry
    declaration = registry.get(key)
    if declaration is None:
        entry["status"] = "missing-declaration"
        entry["ok"] = False
        return entry
    series, errors = _series_for_spec(spec, declaration, cells)
    entry["errors"] = errors
    entry["series"] = [_check_series(s, tol) for s in series]
    checked = any(s["cells"] for s in entry["series"])
    entry["status"] = "checked" if checked else "no-cells"
    entry["ok"] = (not errors
                   and all(s["ok"] for s in entry["series"]))
    return entry


def expected_bound_specs(
        specs: Sequence[ExperimentSpec]) -> List[str]:
    """The headline bounds: every cost spec that also pins a fitter
    model — the paper's machine-checkable theorems."""
    return [spec.name for spec in specs
            if spec.kind in CHECKED_KINDS
            and spec.expect_model is not None]


def check_store(specs: Sequence[ExperimentSpec],
                store: ResultStore,
                registry: Optional[Dict[str, CostDeclaration]] = None,
                tol: Fraction = DEFAULT_TOL) -> Dict[str, Any]:
    """The full gate report over a result store.

    ``ok`` requires: every cost spec has a declaration, every
    protocol key the lab can run is declared, no series is violated,
    and every *expected* (headline) bound was actually checked
    against at least one committed cell.
    """
    registry = declarations() if registry is None else registry
    entries = []
    for spec in specs:
        if spec.kind not in CHECKED_KINDS:
            continue
        entries.append(check_spec(spec, store.load_cells(spec),
                                  registry, tol))
    missing = sorted(
        {entry["declaration"] for entry in entries
         if entry["status"] == "missing-declaration"}
        | {key for key in PROTOCOLS if key not in registry})
    expected = expected_bound_specs(specs)
    checked = [entry["spec"] for entry in entries
               if entry["spec"] in expected
               and entry["status"] == "checked"]
    violations = [
        {"spec": entry["spec"], "series": s["series"],
         "bound": s["bound"], **violation}
        for entry in entries for s in entry["series"]
        for violation in s["violations"]]
    report = {
        "store": str(store.root),
        "tol": _fraction_str(tol),
        "specs": entries,
        "missing_declarations": missing,
        "violations": violations,
        "expected_bounds": {
            "required": expected,
            "checked": sorted(checked),
        },
        "declarations": len(registry),
    }
    report["ok"] = (not missing and not violations
                    and all(entry["ok"] for entry in entries)
                    and len(checked) == len(expected))
    return report


def default_check(store: Optional[ResultStore] = None,
                  tol: Fraction = DEFAULT_TOL) -> Dict[str, Any]:
    """The CI gate: every registry spec against the committed store."""
    store = store if store is not None else ResultStore(None)
    specs = [spec for spec in REGISTRY if spec.kind in CHECKED_KINDS]
    return check_store(specs, store, tol=tol)


def check_record_bounds(spec: ExperimentSpec,
                        record: Dict[str, Any],
                        registry: Optional[Dict[str,
                                                CostDeclaration]] = None
                        ) -> Optional[Dict[str, Any]]:
    """Check one recorded sweep cell's per-phase bits against its
    declaration's absolute phase bounds.

    This is :func:`check_live`'s verdict applied to an
    already-measured record instead of a fresh execution — the lab
    runner (and the fleet workers) call it as a pre-commit guard so a
    new grid size is bound-checked before its cell lands in the store.
    Returns ``None`` when the record is outside the ledger's remit:
    non-sweep kinds, provers other than the spec's fit prover (an
    adversary's bits are not the declared honest bill), or protocols
    without a declaration (``ledger check`` reports those store-wide).
    Fitted phases are reported but not bounded, exactly as in the
    live check.
    """
    if spec.kind != KIND_SWEEP or record.get("prover") != spec.fit_prover:
        return None
    registry = declarations() if registry is None else registry
    declaration = registry.get(spec_declaration_key(spec))
    if declaration is None:
        return None
    size = record["size"]
    rounds = list(record["round_bits"])
    if len(rounds) != len(declaration.pattern):
        return {"spec": spec.name, "n": size, "phases": [], "ok": False,
                "error": f"round_bits length {len(rounds)} != "
                         f"pattern {declaration.pattern!r}"}
    phases = []
    ok = True
    for idx, declared in enumerate(declaration.phases):
        measured = rounds[idx]
        if declared.fitted:
            phases.append({"phase": declared.phase,
                           "measured": measured,
                           "allowed": None, "ok": True})
            continue
        allowed = declared.bound.evaluate({"n": size})
        phase_ok = Fraction(measured) <= allowed
        ok = ok and phase_ok
        phases.append({"phase": declared.phase,
                       "measured": measured,
                       "allowed": _fraction_str(allowed),
                       "ok": phase_ok})
    return {"spec": spec.name, "n": size, "phases": phases, "ok": ok}


def check_live(spec: ExperimentSpec, n: int,
               registry: Optional[Dict[str, CostDeclaration]] = None,
               seed: Optional[int] = None) -> Dict[str, Any]:
    """Execute one honest run and check the *recomputed* per-phase
    bits against the declaration's absolute phase bounds.

    This closes the loop between the ledger and live
    ``ExecutionResult`` measurements: the per-phase bits come from
    :func:`repro.core.report.execution_cost`, the same recompute the
    lab records and the obs gate audit, so a passing live check means
    declaration, runner accounting and trace agree at this size.
    Fitted phases (GNI's ``c``-scaled bills) are reported but not
    bounded — there is no committed constant to check against.
    """
    if spec.kind != KIND_SWEEP:
        raise ValueError(f"live checks need a sweep spec, got "
                         f"{spec.kind!r}")
    registry = declarations() if registry is None else registry
    declaration = registry[spec_declaration_key(spec)]
    protocol = PROTOCOLS[spec.protocol](n)
    instance = GRAPHS[spec.graph](n)
    prover = PROVERS[spec.fit_prover](protocol)
    context = InstanceContext(instance, protocol)
    result = run_protocol(protocol, instance, prover,
                          random.Random(spec.seed if seed is None
                                        else seed),
                          context=context)
    cost = execution_cost(protocol, instance, result)
    size = instance.n
    phases = []
    ok = True
    for idx, declared in enumerate(declaration.phases):
        measured = cost.round_bits[idx]
        if declared.fitted:
            phases.append({"phase": declared.phase,
                           "measured": measured,
                           "allowed": None, "ok": True})
            continue
        allowed = declared.bound.evaluate({"n": size})
        phase_ok = Fraction(measured) <= allowed
        ok = ok and phase_ok
        phases.append({"phase": declared.phase,
                       "measured": measured,
                       "allowed": _fraction_str(allowed),
                       "ok": phase_ok})
    return {"spec": spec.name, "n": size, "phases": phases, "ok": ok,
            "round_bits": list(cost.round_bits),
            "node0_bits": cost.total_bits}


def per_node_check(spec: ExperimentSpec, n: Optional[int] = None,
                   registry: Optional[Dict[str, CostDeclaration]] = None
                   ) -> Dict[str, Any]:
    """One deterministic netsim run at a representative size: the full
    per-node bit counters behind the store's node-0 / network-total
    projections, checked against the declared headline total.

    The lab store only records projections of the cost vector; this
    closes the gap by re-running the honest execution on the netsim
    substrate (seeded from the spec, so the table stays byte-stable)
    and emitting every node's charged bits.  Absolute totals are hard
    caps on the *network* sum; fitted totals are reported without a
    cap (no committed constant at a single size)."""
    from ..netsim.sim import run_netsim

    if spec.kind != KIND_SWEEP:
        raise ValueError(f"per-node checks need a sweep spec, got "
                         f"{spec.kind!r}")
    registry = declarations() if registry is None else registry
    declaration = registry[spec_declaration_key(spec)]
    size = max(spec.quick_grid) if n is None else n
    protocol = PROTOCOLS[spec.protocol](size)
    instance = GRAPHS[spec.graph](size)
    prover = PROVERS[spec.fit_prover](protocol)
    net = run_netsim(protocol, instance, prover,
                     random.Random(spec.seed), net_seed=spec.seed,
                     trace=False)
    node_bits = [net.node_cost_bits.get(node, 0)
                 for node in range(instance.n)]
    total = sum(node_bits)
    headline = declaration.total
    allowed = None if headline.fitted \
        else headline.bound.evaluate({"n": size})
    return {
        "spec": spec.name, "protocol": spec.protocol, "n": size,
        "nodes": instance.n, "node_bits": node_bits,
        "node0_bits": node_bits[0] if node_bits else 0,
        "min_bits": min(node_bits) if node_bits else 0,
        "max_bits": max(node_bits) if node_bits else 0,
        "total_bits": total,
        "bound": render(headline.bound), "fitted": headline.fitted,
        "allowed": _fraction_str(allowed),
        "ok": True if allowed is None else Fraction(total) <= allowed,
    }
