"""repro.ledger — symbolic cost bounds, machine-checked against runs.

The paper's headline results are communication bounds: Sym/dMAM in
``O(log n)`` bits per node (Theorem 1.1), Sym/dAM in ``O(n log n)``
(Theorem 1.3), the ``Θ(n²)`` distributed-NP floor, the ``Ω(log log n)``
packing bound (Theorem 1.4).  ``repro.lab`` confirms them as
least-squares curve fits; this package turns them into *inequalities*:

* :mod:`repro.ledger.expr` — a zero-dependency symbolic-expression
  mini-language (``"c * n * log2(n)"``) with exact integer evaluation
  and byte-stable rendering.
* :mod:`repro.ledger.declare` — every protocol module exports a
  :class:`CostDeclaration`: per-phase/per-channel bounds as
  expressions in ``n``, each with its paper reference.
* :mod:`repro.ledger.evaluate` — reads measured per-phase bits from
  the committed lab store (and live executions), fits the single
  leading constant per bound on the baseline decade, and asserts
  ``measured ≤ bound(n, c_fit) · (1 + tol)`` for every cell.
* ``python -m repro ledger check|table|fit`` — the CI gate and the
  generated ``docs/COSTS.md`` cost tables.

Only :mod:`~repro.ledger.expr` and :mod:`~repro.ledger.declare` are
imported here: protocol modules import ``declare`` to export their
declarations, so this package's root must not (transitively) import
``repro.protocols`` or ``repro.lab``.
"""

from .declare import (CHANNELS, CostDeclaration, PhaseCost, declarations,
                      phase)
from .expr import (Expr, ParseError, ceil_log2, parse, render, simplify_str,
                   to_sympy)

__all__ = [
    "CHANNELS", "CostDeclaration", "Expr", "ParseError", "PhaseCost",
    "ceil_log2", "declarations", "parse", "phase", "render",
    "simplify_str", "to_sympy",
]
