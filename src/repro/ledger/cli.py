"""The ``python -m repro ledger`` command group.

``ledger check``   the CI gate: every declared bound vs the committed
                   store (per phase, per channel, per cell).  Exit 1
                   on any violated inequality, any missing
                   declaration, or any unchecked headline bound.
                   ``--live`` additionally executes one honest run
                   per sweep spec and checks the recomputed per-phase
                   bits against the absolute phase bounds.
``ledger table``   regenerate the markdown cost tables
                   (``docs/COSTS.md``; byte-stable — ``--check``
                   verifies an existing file matches without
                   writing).
``ledger fit``     print the fitted leading constants and per-cell
                   slack of every fitted bound.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from ..lab.spec import KIND_SWEEP, REGISTRY, get_specs
from ..lab.store import ResultStore, default_store_root
from .evaluate import (CHECKED_KINDS, check_live, check_store,
                       spec_declaration_key)

#: Default output path for the generated cost tables, relative to the
#: repository root (the parent of the default store's ``benchmarks``).
DEFAULT_COSTS = "docs/COSTS.md"


def _store(args: argparse.Namespace) -> ResultStore:
    return ResultStore(Path(args.store) if args.store else None)


def _specs(args: argparse.Namespace):
    return [spec for spec in get_specs(args.spec or None)
            if spec.kind in CHECKED_KINDS]


def render_check(report) -> List[str]:
    lines = [f"ledger check ({report['declarations']} declarations, "
             f"tol {report['tol']} on fitted bounds) "
             f"-> {report['store']}"]
    for entry in report["specs"]:
        if entry["status"] != "checked":
            lines.append(f"  [{'ok' if entry['ok'] else 'FAIL':>4}] "
                         f"{entry['spec']}: {entry['status']}")
            continue
        worst = max((s["cells"] for s in entry["series"]), default=0)
        flag = "ok" if entry["ok"] else "FAIL"
        totals = [s for s in entry["series"] if s["series"] == "total"]
        constant = totals[0]["c_fit"] if totals else None
        lines.append(
            f"  [{flag:>4}] {entry['spec']}: "
            f"{len(entry['series'])} series x {worst} cells"
            + (f", c_fit={constant}" if constant is not None else ""))
        for error in entry["errors"]:
            lines.append(f"         drift: {error}")
    for violation in report["violations"]:
        lines.append(f"  VIOLATED {violation['spec']}/"
                     f"{violation['series']}: measured "
                     f"{violation['measured']} > {violation['allowed']} "
                     f"= {violation['bound']} at n={violation['n']}")
    for key in report["missing_declarations"]:
        lines.append(f"  MISSING declaration: {key}")
    expected = report["expected_bounds"]
    lines.append(f"  headline bounds: "
                 f"{len(expected['checked'])}/{len(expected['required'])}"
                 f" checked")
    lines.append(f"ledger gate: {'PASS' if report['ok'] else 'FAIL'}")
    return lines


def cmd_ledger_check(args: argparse.Namespace) -> int:
    store = _store(args)
    report = check_store(_specs(args), store)
    if args.live:
        live = []
        for spec in REGISTRY:
            if spec.kind != KIND_SWEEP or (args.spec
                                           and spec.name not in args.spec):
                continue
            if "honest" not in spec.provers:
                # Soundness specs run cheating provers on NO
                # instances; the honest prover refuses those graphs,
                # so there is nothing to probe live.
                continue
            # Probe every quick-grid size, not just the smallest —
            # the quick grid is CI's budget, and a size is only as
            # trustworthy as its live bound check.
            for n in sorted(set(spec.quick_grid)):
                live.append(check_live(spec, n))
        report["live"] = live
        report["ok"] = report["ok"] and all(row["ok"] for row in live)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print("\n".join(render_check(report)))
        for row in report.get("live", ()):
            flag = "ok" if row["ok"] else "FAIL"
            print(f"  [{flag:>4}] live {row['spec']} @ n={row['n']}: "
                  f"rounds {row['round_bits']}")
    return 0 if report["ok"] else 1


def cmd_ledger_table(args: argparse.Namespace) -> int:
    from .table import render_costs
    store = _store(args)
    text = render_costs(get_specs(args.spec or None), store)
    if args.stdout:
        sys.stdout.write(text)
        return 0
    path = Path(args.output) if args.output \
        else default_store_root().parent.parent / DEFAULT_COSTS
    if args.check:
        existing = path.read_text(encoding="utf-8") \
            if path.exists() else None
        if existing == text:
            print(f"{path}: up to date")
            return 0
        print(f"{path}: stale (re-run `python -m repro ledger table`)")
        return 1
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    print(f"wrote {path}")
    return 0


def cmd_ledger_fit(args: argparse.Namespace) -> int:
    store = _store(args)
    report = check_store(_specs(args), store)
    rows = []
    for entry in report["specs"]:
        for series in entry["series"]:
            if series["fitted"] and series["cells"]:
                rows.append({
                    "spec": entry["spec"],
                    "series": series["series"],
                    "bound": series["bound"],
                    "c_fit": series["c_fit"],
                    "cells": series["cells"],
                    "worst_slack": series["worst_slack"],
                    "ok": series["ok"],
                })
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(f"fitted leading constants ({report['store']}):")
        for row in rows:
            print(f"  {row['spec']}/{row['series']:<8} "
                  f"c_fit={row['c_fit']:<10} "
                  f"worst_slack={row['worst_slack']:<10} "
                  f"cells={row['cells']} "
                  f"bound={row['bound']}")
    return 0


def add_ledger_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``ledger`` command group to the top-level CLI."""
    ledger = sub.add_parser(
        "ledger", help="symbolic cost bounds checked against measured "
                       "bits")
    ledger_sub = ledger.add_subparsers(dest="ledger_command",
                                       required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--spec", action="append", metavar="NAME",
                       help="restrict to this spec (repeatable; "
                            "default: all cost specs)")
        p.add_argument("--store", metavar="DIR",
                       help=f"result store root (default: "
                            f"{default_store_root()})")

    p = ledger_sub.add_parser(
        "check", help="bound inequalities vs the committed store "
                      "(the CI gate)")
    common(p)
    p.add_argument("--live", action="store_true",
                   help="also execute one honest run per sweep spec "
                        "and check its recomputed per-phase bits")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(func=cmd_ledger_check)

    p = ledger_sub.add_parser(
        "table", help="regenerate the markdown cost tables")
    common(p)
    p.add_argument("--output", metavar="FILE",
                   help=f"output path (default: <repo>/{DEFAULT_COSTS})")
    p.add_argument("--stdout", action="store_true",
                   help="print the tables instead of writing a file")
    p.add_argument("--check", action="store_true",
                   help="verify the existing file matches; exit 1 "
                        "if stale")
    p.set_defaults(func=cmd_ledger_table)

    p = ledger_sub.add_parser(
        "fit", help="fitted leading constants of every fitted bound")
    common(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable rows")
    p.set_defaults(func=cmd_ledger_fit)
