"""The paper's protocols: Protocol 1 (dMAM Sym), Protocol 2 (dAM Sym),
the DSym dAM protocol, the distributed Goldwasser-Sipser GNI protocol,
and the non-interactive (distributed NP / LCP) baselines."""

from .batteries import (LabeledInstance, dsym_battery, gni_battery,
                        sym_battery)
from .analysis import (all_swaps, collision_seeds,
                       difference_coefficients,
                       exact_commit_acceptance, exact_soundness_bound,
                       optimal_committed_cheater)
from .dsym import DSymDAMProtocol, DSymForcedProver
from .fixed_map import FixedMappingProtocol, ForcedMappingProver
from .gni import (GNIDAMProtocol, GNIGoldwasserSipserProtocol,
                  GNIGuarantees,
                  GoldwasserSipserProver, gni_instance,
                  isomorphism_closure_encodings,
                  per_repetition_success_rate)
from .gni_marked import (MARK_NONE, MARK_ONE, MARK_ZERO,
                         MarkedGNIProtocol, MarkedGSProver,
                         marked_instance, marked_subgraph)
from .gni_general import (GeneralGNIProtocol, GeneralGSProver,
                          pair_catalog, pair_rate)
from .lcp import ConnectivityLCP, DSymLCP, SymLCP
from .sym_dam import (AdaptiveCollisionProver, CommittedDAMProver,
                      HonestSymDAMProver, SymDAMProtocol,
                      protocol2_hash_family)
from .sym_dmam import (CommittedMappingProver, HonestSymDMAMProver,
                       SymDMAMProtocol, protocol1_hash_family)

__all__ = [name for name in dir() if not name.startswith("_")]
