"""Shared machinery for "hash it up the spanning tree" protocols.

Protocols 1 and 2, DSym and GNI all follow the same skeleton: the
prover supplies a rooted spanning tree and, for one or more linear
quantities, per-node *subtree aggregates* which each node checks
against its own contribution plus its children's claimed aggregates:

    x_v  =  own_term(v)  +  Σ_{u ∈ C(v)} x_u      (mod p).

By induction up the tree (Lemma 3.3) the root's accepted value is
forced to be the true total ``Σ_v own_term(v)`` — the prover has no
freedom anywhere, which is what reduces soundness to a hash-collision
event at the root.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from ..core.model import LocalView, ProtocolViolation
from ..graphs.graph import Graph
from ..network.spanning_tree import TreeAdvice, children_of


def check_aggregate(view: LocalView, tree_round: int, value_round: int,
                    root: int, field: str, own_term: int, p: int) -> bool:
    """Node-local aggregation check for one field (Protocol 1/2, line 3).

    ``own_term`` is this node's contribution (already reduced mod p);
    the parent pointers live in round ``tree_round`` messages and the
    aggregate values in round ``value_round`` messages.
    """
    own_value = view.own_message(value_round)[field]
    if not isinstance(own_value, int) or not 0 <= own_value < p:
        return False
    total = own_term % p
    for u in children_of(view, tree_round, root):
        child_value = view.message_of(value_round, u)[field]
        if not isinstance(child_value, int) or not 0 <= child_value < p:
            return False
        total = (total + child_value) % p
    return own_value == total


def honest_aggregates(graph: Graph, advice: Mapping[int, TreeAdvice],
                      own_term: Callable[[int], int],
                      p: int) -> Dict[int, int]:
    """The honest prover's subtree sums: ``x_v = Σ_{u ∈ T_v} own_term(u)``.

    Computed bottom-up in one pass over the (honest, hence acyclic)
    parent map.
    """
    values = {v: own_term(v) % p for v in graph.vertices}
    # Process deepest-first so children are final before their parent.
    order = sorted(graph.vertices, key=lambda v: advice[v].dist, reverse=True)
    for v in order:
        parent = advice[v].parent
        if parent != v:
            values[parent] = (values[parent] + values[v]) % p
    return values


def rho_image_row(view: LocalView, rho_round: int, rho_field: str) -> int:
    """``ρ(N(v))`` as a bitmask, computed from the neighborhood's ρ values.

    Node v sees ``ρ_u`` for every ``u`` in its *closed* neighborhood
    (which includes v), so it can form the characteristic vector of the
    image set ``{ρ_u : u ∈ N(v)}`` — the row of the ρ-permuted matrix
    it is responsible for (see DESIGN.md on the paper's ``N_ρ(v)``).
    """
    bits = 0
    for u in view.closed_neighborhood:
        rho_u = view.message_of(rho_round, u)[rho_field]
        if not isinstance(rho_u, int) or not 0 <= rho_u < view.n:
            raise ProtocolViolation(f"ρ value {rho_u!r} out of range")
        bits |= 1 << rho_u
    return bits


def closed_row_bits(view: LocalView) -> int:
    """The node's own row ``N(v)`` of the self-looped adjacency matrix."""
    bits = 0
    for u in view.closed_neighborhood:
        bits |= 1 << u
    return bits
