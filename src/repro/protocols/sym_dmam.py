"""Protocol 1: the O(log n)-bit dMAM protocol for Graph Symmetry.

Theorem 1.1 / Section 3.1 of the paper.  Round structure:

* **M₀** — the prover broadcasts a claimed root ``r`` and unicasts to
  each node: its image ``ρ_v`` under a claimed non-trivial
  automorphism, its parent ``t_v`` in a claimed spanning tree rooted at
  ``r``, and its distance ``d_v`` from ``r``.
* **A₁** — each node sends a uniformly random hash index
  ``i_v ∈ [|H|]`` (``H`` is the Theorem-3.2 linear family for
  ``m = n²`` and a prime ``p ∈ [10n³, 100n³]``).
* **M₂** — the prover broadcasts an index ``i`` (claimed to be the
  root's ``i_r``) and unicasts subtree hash aggregates
  ``a_v, b_v ∈ [p]`` for the matrices ``Σ[u, N(u)]`` and
  ``Σ[ρ(u), ρ(N(u))]``.

Verification (per node): spanning-tree checks, aggregation checks for
``a`` and ``b`` (each node's own terms are ``h_i([v, N(v)])`` and
``h_i([ρ_v, ρ(N(v))])``, both computable from its local view), and at
the root: ``a_r = b_r``, ``ρ_r ≠ r``, ``i = i_r``.

Soundness: the prover commits to ρ *before* seeing the hash index, so
on an asymmetric graph acceptance requires a hash collision between
two fixed distinct matrices — probability ≤ m/p ≤ 1/(10n) < 1/3.

Every per-node message is O(log n) bits: four identifiers/counters in
round M₀ and three values in ``[p]``-sized domains in round M₂.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DMAM,
                          bits_for_identifier, bits_for_value, field_cost)
from ..graphs.graph import Graph
from ..hashing.linear import LinearHashFamily
from ..hashing.primes import theorem32_prime_window
from ..hashing.rowmatrix import image_bits
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, FIELD_ROOT,
                                     tree_check)
from ._tree_hash import (check_aggregate, closed_row_bits, honest_aggregates,
                         rho_image_row)

FIELD_RHO = "rho"
FIELD_SEED = "seed"
FIELD_A = "a"
FIELD_B = "b"

ROUND_M0 = 0
ROUND_A1 = 1
ROUND_M2 = 2


def protocol1_hash_family(n: int) -> LinearHashFamily:
    """The paper's Protocol-1 family: m = n², prime in [10n³, 100n³]."""
    return LinearHashFamily(m=n * n, p=theorem32_prime_window(n, exponent=3))


class SymDMAMProtocol(Protocol):
    """Protocol 1 (dMAM for Sym), parameterized by vertex count.

    ``family`` may be overridden to study soundness as a function of
    the prime size (experiment E7); the default follows the paper.
    """

    name = "sym-dmam"
    pattern = PATTERN_DMAM

    def __init__(self, n: int,
                 family: Optional[LinearHashFamily] = None) -> None:
        if n < 2:
            raise ValueError("Sym needs at least 2 vertices")
        self.n = n
        self.family = family or protocol1_hash_family(n)
        if self.family.m < n * n:
            raise ValueError("hash dimension must cover the n×n matrix")

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")

    # -- Arthur ----------------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> int:
        return self.family.sample_seed(rng)

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        return self.family.seed_bits

    # -- Merlin ----------------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        if round_idx == ROUND_M0:
            return frozenset({FIELD_ROOT})
        if round_idx == ROUND_M2:
            return frozenset({FIELD_SEED})
        return frozenset()

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        if round_idx == ROUND_M0:
            return frozenset({FIELD_ROOT, FIELD_RHO, FIELD_PARENT,
                              FIELD_DIST})
        if round_idx == ROUND_M2:
            return frozenset({FIELD_SEED, FIELD_A, FIELD_B})
        return frozenset()

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        id_bits = bits_for_identifier(self.n)
        if round_idx == ROUND_M0:
            # root + rho + parent are identifiers; dist is in [0, n).
            # Each field is charged only if wire-encodable — malformed
            # fields cost 0 bits (the codec escape-lane convention).
            return sum(field_cost(message, name, id_bits)
                       for name in (FIELD_ROOT, FIELD_RHO,
                                    FIELD_PARENT, FIELD_DIST))
        if round_idx == ROUND_M2:
            value_bits = bits_for_value(self.family.p)
            return (field_cost(message, FIELD_SEED, self.family.seed_bits)
                    + field_cost(message, FIELD_A, value_bits)
                    + field_cost(message, FIELD_B, value_bits))
        raise ValueError(f"round {round_idx} is not a Merlin round")

    # -- decision ----------------------------------------------------------

    def decide(self, view: LocalView) -> bool:
        m0 = view.own_message(ROUND_M0)
        root = m0[FIELD_ROOT]
        if not isinstance(root, int) or not 0 <= root < view.n:
            return False
        if not tree_check(view, ROUND_M0, root):
            return False

        m2 = view.own_message(ROUND_M2)
        seed = m2[FIELD_SEED]
        if not isinstance(seed, int) or not 0 <= seed < self.family.p:
            return False

        # Own terms for the two aggregates (line 3 of Protocol 1).
        own_row = closed_row_bits(view)
        a_term = self.family.hash_row_matrix(seed, view.n, view.node, own_row)
        rho_v = m0[FIELD_RHO]
        if not isinstance(rho_v, int) or not 0 <= rho_v < view.n:
            return False
        b_row = rho_image_row(view, ROUND_M0, FIELD_RHO)
        b_term = self.family.hash_row_matrix(seed, view.n, rho_v, b_row)

        if not check_aggregate(view, ROUND_M0, ROUND_M2, root, FIELD_A,
                               a_term, self.family.p):
            return False
        if not check_aggregate(view, ROUND_M0, ROUND_M2, root, FIELD_B,
                               b_term, self.family.p):
            return False

        if view.node == root:
            # Line 4: a_r = b_r, ρ_r ≠ r, and the broadcast index is the
            # one this node sent (so the prover could not pick it).
            if m2[FIELD_A] != m2[FIELD_B]:
                return False
            if rho_v == root:
                return False
            if seed != view.own_randomness(ROUND_A1):
                return False
        return True

    # -- honest prover -----------------------------------------------------

    def honest_prover(self) -> Prover:
        return HonestSymDMAMProver(self)


class HonestSymDMAMProver(Prover):
    """Completeness witness: finds a non-trivial automorphism, builds a
    BFS spanning tree rooted at a moved vertex, and later reports the
    true subtree hash aggregates."""

    def __init__(self, protocol: SymDMAMProtocol) -> None:
        self.protocol = protocol
        self._rho: Optional[Tuple[int, ...]] = None
        self._advice = None
        self._root: Optional[int] = None

    def reset(self) -> None:
        self._rho = None
        self._advice = None
        self._root = None

    def batch_plan(self, context):
        """The numpy batch engine's description of this strategy: the
        memoized automorphism and its canonical root — exactly the
        commitments ``respond`` would make, including the
        ``ProtocolViolation`` on an asymmetric graph."""
        rho = context.nontrivial_automorphism()
        if rho is None:
            raise ProtocolViolation(
                "honest prover run on an asymmetric graph — "
                "completeness only applies to YES instances")
        root = min(v for v in context.graph.vertices if rho[v] != v)
        return {"rho": rho, "root": root}

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        graph = instance.graph
        if round_idx == ROUND_M0:
            ctx = self.acquire_context(instance)
            rho = ctx.nontrivial_automorphism()
            if rho is None:
                raise ProtocolViolation(
                    "honest prover run on an asymmetric graph — "
                    "completeness only applies to YES instances")
            root = min(v for v in graph.vertices if rho[v] != v)
            self._rho = rho
            self._root = root
            self._advice = ctx.tree_advice(root)
            return {
                v: {FIELD_ROOT: root,
                    FIELD_RHO: rho[v],
                    FIELD_PARENT: self._advice[v].parent,
                    FIELD_DIST: self._advice[v].dist}
                for v in graph.vertices
            }
        if round_idx == ROUND_M2:
            assert self._rho is not None and self._root is not None
            family = self.protocol.family
            seed = randomness[ROUND_A1][self._root]
            rho = self._rho
            n = graph.n

            def a_term(v: int) -> int:
                return family.hash_row_matrix(seed, n, v, graph.closed_row(v))

            def b_term(v: int) -> int:
                row = image_bits(graph.closed_row(v), rho, n)
                return family.hash_row_matrix(seed, n, rho[v], row)

            a_values = honest_aggregates(graph, self._advice, a_term,
                                         family.p)
            b_values = honest_aggregates(graph, self._advice, b_term,
                                         family.p)
            return {
                v: {FIELD_SEED: seed,
                    FIELD_A: a_values[v],
                    FIELD_B: b_values[v]}
                for v in graph.vertices
            }
        raise ProtocolViolation(f"unexpected Merlin round {round_idx}")


class CommittedMappingProver(Prover):
    """The canonical *cheating* prover for Protocol 1 on NO instances.

    Commits to an arbitrary non-identity mapping ρ (by default the swap
    of the two vertices whose closed neighborhoods differ least) and a
    root moved by ρ, then reports truthful aggregates for its committed
    mapping.  Any other round-2 values are caught deterministically by
    the aggregation checks, so within this protocol the truthful
    strategy is optimal for a fixed ρ: the acceptance probability is
    exactly the hash-collision probability of the two committed matrix
    sums, which Theorem 3.2 bounds by m/p.
    """

    def __init__(self, protocol: SymDMAMProtocol,
                 mapping: Optional[Sequence[int]] = None) -> None:
        self.protocol = protocol
        self._fixed_mapping = tuple(mapping) if mapping is not None else None
        self._rho: Optional[Tuple[int, ...]] = None
        self._advice = None
        self._root: Optional[int] = None

    def reset(self) -> None:
        self._rho = None
        self._advice = None
        self._root = None

    def choose_mapping(self, graph: Graph) -> Tuple[int, ...]:
        """Pick the swap (u, w) minimizing the symmetric difference of
        closed neighborhoods — the difference matrix with the smallest
        support, hence the difference polynomial with the best shot at
        a collision."""
        if self._fixed_mapping is not None:
            return self._fixed_mapping
        best = None
        best_score = None
        for u in graph.vertices:
            for w in range(u + 1, graph.n):
                diff = bin(graph.closed_row(u) ^ graph.closed_row(w)).count("1")
                if best_score is None or diff < best_score:
                    best_score = diff
                    best = (u, w)
        assert best is not None
        mapping = list(range(graph.n))
        mapping[best[0]], mapping[best[1]] = best[1], best[0]
        return tuple(mapping)

    def batch_plan(self, context):
        """The committed ρ and root for the numpy batch engine — the
        same memoized choice (``sym_dmam.committed_swap``) ``respond``
        commits to, so both engines play the identical strategy."""
        graph = context.graph
        if self._fixed_mapping is not None:
            rho = self._fixed_mapping
        else:
            rho = context.memo("sym_dmam.committed_swap",
                               lambda: self.choose_mapping(graph))
        if all(rho[v] == v for v in graph.vertices):
            raise ProtocolViolation("cheating prover must move a vertex")
        root = min(v for v in graph.vertices if rho[v] != v)
        return {"rho": rho, "root": root}

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        graph = instance.graph
        if round_idx == ROUND_M0:
            ctx = self.acquire_context(instance)
            if self._fixed_mapping is not None:
                rho = self._fixed_mapping
            else:
                rho = ctx.memo("sym_dmam.committed_swap",
                               lambda: self.choose_mapping(graph))
            if all(rho[v] == v for v in graph.vertices):
                raise ProtocolViolation("cheating prover must move a vertex")
            root = min(v for v in graph.vertices if rho[v] != v)
            self._rho = rho
            self._root = root
            self._advice = ctx.tree_advice(root)
            return {
                v: {FIELD_ROOT: root,
                    FIELD_RHO: rho[v],
                    FIELD_PARENT: self._advice[v].parent,
                    FIELD_DIST: self._advice[v].dist}
                for v in graph.vertices
            }
        if round_idx == ROUND_M2:
            assert self._rho is not None and self._root is not None
            family = self.protocol.family
            seed = randomness[ROUND_A1][self._root]
            rho = self._rho
            n = graph.n

            def a_term(v: int) -> int:
                return family.hash_row_matrix(seed, n, v, graph.closed_row(v))

            def b_term(v: int) -> int:
                row = image_bits(graph.closed_row(v), rho, n)
                return family.hash_row_matrix(seed, n, rho[v], row)

            a_values = honest_aggregates(graph, self._advice, a_term,
                                         family.p)
            b_values = honest_aggregates(graph, self._advice, b_term,
                                         family.p)
            return {
                v: {FIELD_SEED: seed,
                    FIELD_A: a_values[v],
                    FIELD_B: b_values[v]}
                for v in graph.vertices
            }
        raise ProtocolViolation(f"unexpected Merlin round {round_idx}")


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: Protocol 1's bill, phase by phase: the mapping advice is four
#: identifier-width fields, the challenge is one seed of the
#: Theorem 3.2 family (p ∈ [10n³, 100n³]), and the response echoes the
#: seed plus two field elements.  Theorem 1.1's O(log n) headline is
#: the fitted total.
COST_DECLARATIONS = (
    CostDeclaration(
        key="sym-dmam", title="Protocol 1 — Sym ∈ dMAM(log n)",
        pattern="MAM", asymptotic="O(log n)",
        reference="Theorem 1.1 / Protocol 1 (Section 3)",
        phases=(
            phase("M0", "merlin", "4 * log2(n)",
                  "Protocol 1 step 1: rho(v), rho-image, successor, "
                  "root flag — four identifier fields"),
            phase("A1", "arthur", "log2(100 * n^3)",
                  "Protocol 1 step 2: one seed of the Theorem 3.2 "
                  "family, p in [10n^3, 100n^3]"),
            phase("M2", "merlin", "3 * log2(100 * n^3)",
                  "Protocol 1 step 3: echoed seed + aggregates "
                  "a_v, b_v in F_p"),
        ),
        total=phase("total", "merlin", "c * log2(n)",
                    "Theorem 1.1: O(log n) bits per node"),
    ),
)
