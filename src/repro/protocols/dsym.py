"""The O(log n)-bit dAM protocol for Dumbbell Symmetry (Section 3.3).

Theorem 1.2 / Theorem 3.6: the language DSym (Definition 5) is decided
by a *one-round* Arthur–Merlin protocol with O(log n) bits per node,
while any Locally Checkable Proof needs Ω(n²) bits — the exponential
separation between distributed NP and distributed AM.

Why one round suffices here but not for full Sym: DSym fixes the
automorphism σ (halves swap, path reverses), so the prover has nothing
to commit to — the first Merlin round of Protocol 1 disappears.  The
hash comparison is between two matrices *determined by the graph
alone*, so the prover learning the seed before responding gains
nothing, and Protocol 1's small prime ``p ∈ [10·N³, 100·N³]`` still
gives soundness ≤ m/p with no union bound.

Structurally the protocol is the general
:class:`~repro.protocols.fixed_map.FixedMappingProtocol` — "certify
the public σ is an automorphism" — plus Definition 5's purely-local
structure checks (conditions 2 and 3: the connecting path is present
and no stray edges exist), which need no prover at all.  This module
wires the two together; σ is computed by every node from the public
layout (Definition 5's map swaps the halves and reverses the path).
"""

from __future__ import annotations

from typing import Optional

from ..core.model import LocalView
from ..graphs.dumbbell import DSymLayout, dsym_automorphism
from ..hashing.linear import LinearHashFamily
from .fixed_map import FixedMappingProtocol, ForcedMappingProver

#: σ moves vertex 0 (to n), so the fixed root 0 satisfies σ(root) ≠ root.
DSYM_ROOT = 0


def _dsym_structure_check(layout: DSymLayout) -> "callable":
    """Definition 5's conditions 2 and 3 as a node-local predicate."""
    path = layout.path_sequence()
    position = {u: idx for idx, u in enumerate(path)}
    half_a = set(layout.half_a)
    half_b = set(layout.half_b)

    def check(view: LocalView) -> bool:
        v = view.node
        neighbors = view.neighbors
        required = set()
        if v in position:
            idx = position[v]
            if idx > 0:
                required.add(path[idx - 1])
            if idx + 1 < len(path):
                required.add(path[idx + 1])
        if not required <= set(neighbors):
            return False
        # Every non-required neighbor must live in v's own half
        # (neighbors ⊆ half ∪ required \ {v}); per-neighbor membership
        # keeps the predicate O(deg) instead of materializing the
        # O(n)-sized allowed set at every node.
        half = half_a if v in half_a else half_b if v in half_b else ()
        return all(u in required or u in half for u in neighbors)

    return check


class DSymDAMProtocol(FixedMappingProtocol):
    """The dAM protocol for DSym with public layout (n, r)."""

    name = "dsym-dam"

    def __init__(self, layout: DSymLayout,
                 family: Optional[LinearHashFamily] = None) -> None:
        if layout.n < 1 or layout.r < 0:
            raise ValueError("invalid DSym layout")
        self.layout = layout
        super().__init__(sigma=dsym_automorphism(layout), root=DSYM_ROOT,
                         structure_check=_dsym_structure_check(layout),
                         family=family)

    @property
    def total_n(self) -> int:
        return self.layout.total_n


#: The DSym prover is exactly the generic forced prover: honest on YES
#: instances, optimal (collision-only) cheater on NO instances.
DSymForcedProver = ForcedMappingProver


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: DSym rides the fixed-mapping verifier over the full layout (the
#: lab's ``size`` column, evaluated here as ``n``): one Theorem 3.2
#: seed down, then seed echo + spanning fields + two aggregates back.
COST_DECLARATIONS = (
    CostDeclaration(
        key="dsym-dam", title="DSym ∈ dAM(log n)",
        pattern="AM", asymptotic="O(log n)",
        reference="Theorem 1.2 / Section 5",
        phases=(
            phase("A0", "arthur", "log2(100 * n^3)",
                  "one seed of the Theorem 3.2 family over the layout"),
            phase("M1", "merlin",
                  "3 * log2(100 * n^3) + 2 * log2(n)",
                  "seed echo + two aggregates + parent/dist fields"),
        ),
        total=phase("total", "merlin", "c * log2(n)",
                    "Theorem 1.2: O(log n) bits per node"),
    ),
)
