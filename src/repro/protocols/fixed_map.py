"""Certifying a *public* mapping: the reusable core of the DSym result.

Section 3.3's key observation generalizes: whenever the automorphism
to check is fixed and publicly known (rather than existentially
quantified), the prover has nothing to commit to, so Protocol 1's
verification collapses to a single Arthur–Merlin exchange with the
*small* prime — O(log n) bits — even though the prover answers after
seeing the challenge.  Soundness needs no union bound because both
hashed matrices, ``Σ[v, N(v)]`` and ``Σ[σ(v), σ(N(v))]``, are
determined by the graph alone.

:class:`FixedMappingProtocol` implements exactly that: a dAM protocol
deciding the language "σ is an automorphism of G" for a fixed public
permutation σ.  The DSym protocol of Theorem 1.2 is this protocol plus
Definition 5's purely-local structure checks (see
``repro.protocols.dsym``); other uses include certifying replication
layouts, ring rotations, or any designed-in symmetry.

Practical use: a system that *constructs* its network with a known
symmetry can have the construction certified with logarithmic
communication, which is the "certifying distributed algorithms"
motivation from the paper's introduction.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Sequence

from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DAM,
                          bits_for_identifier, bits_for_value, field_cost)
from ..hashing.linear import LinearHashFamily
from ..hashing.primes import theorem32_prime_window
from ..hashing.rowmatrix import image_bits
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, tree_check)
from ._tree_hash import check_aggregate, closed_row_bits, honest_aggregates

FIELD_SEED = "seed"
FIELD_A = "a"
FIELD_B = "b"

ROUND_A0 = 0
ROUND_M1 = 1


class FixedMappingProtocol(Protocol):
    """dAM[O(log n)] protocol for "σ ∈ Aut(G)", σ fixed and public.

    Parameters
    ----------
    sigma:
        The public permutation to certify (a tuple/list over ``0..n-1``;
        it need not move the root — there is no non-triviality check
        here, that is the caller's business if it has one).
    root:
        The (public) spanning-tree root; defaults to vertex 0.
    structure_check:
        Optional extra node-local predicate (``view -> bool``) ANDed
        into every node's decision — how DSym adds Definition 5's
        conditions 2 and 3.
    family:
        Hash family override for ablations; defaults to the paper's
        ``p ∈ [10n³, 100n³]`` window with m = n².
    """

    name = "fixed-map-dam"
    pattern = PATTERN_DAM

    def __init__(self, sigma: Sequence[int], root: int = 0,
                 structure_check: Optional[
                     Callable[[LocalView], bool]] = None,
                 family: Optional[LinearHashFamily] = None) -> None:
        n = len(sigma)
        if n < 1:
            raise ValueError("mapping must cover at least one vertex")
        if sorted(sigma) != list(range(n)):
            raise ValueError("sigma must be a permutation of 0..n-1")
        if not 0 <= root < n:
            raise ValueError("root out of range")
        self.n = n
        self.sigma = tuple(sigma)
        self.root = root
        self.structure_check = structure_check
        self.family = family or LinearHashFamily(
            m=n * n, p=theorem32_prime_window(n, exponent=3))
        if self.family.m < n * n:
            raise ValueError("hash dimension must cover the n×n matrix")

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")

    # -- Arthur ----------------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> int:
        return self.family.sample_seed(rng)

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        return self.family.seed_bits

    # -- Merlin ----------------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_SEED})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_SEED, FIELD_PARENT, FIELD_DIST,
                          FIELD_A, FIELD_B})

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        id_bits = bits_for_identifier(self.n)
        value_bits = bits_for_value(self.family.p)
        # Per-field charging: malformed fields cost 0 bits (they ride
        # the codec escape lane and make the node reject).
        return (field_cost(message, FIELD_SEED, self.family.seed_bits)
                + field_cost(message, FIELD_PARENT, id_bits)
                + field_cost(message, FIELD_DIST, id_bits)
                + field_cost(message, FIELD_A, value_bits)
                + field_cost(message, FIELD_B, value_bits))

    # -- decision ----------------------------------------------------------

    def decide(self, view: LocalView) -> bool:
        if self.structure_check is not None \
                and not self.structure_check(view):
            return False
        if not tree_check(view, ROUND_M1, self.root):
            return False

        m1 = view.own_message(ROUND_M1)
        seed = m1[FIELD_SEED]
        if not isinstance(seed, int) or not 0 <= seed < self.family.p:
            return False

        own_row = closed_row_bits(view)
        a_term = self.family.hash_row_matrix(seed, view.n, view.node,
                                             own_row)
        b_row = image_bits(own_row, self.sigma, view.n)
        b_term = self.family.hash_row_matrix(seed, view.n,
                                             self.sigma[view.node], b_row)

        if not check_aggregate(view, ROUND_M1, ROUND_M1, self.root, FIELD_A,
                               a_term, self.family.p):
            return False
        if not check_aggregate(view, ROUND_M1, ROUND_M1, self.root, FIELD_B,
                               b_term, self.family.p):
            return False

        if view.node == self.root:
            if m1[FIELD_A] != m1[FIELD_B]:
                return False
            if seed != view.own_randomness(ROUND_A0):
                return False
        return True

    # -- provers -----------------------------------------------------------

    def honest_prover(self) -> Prover:
        return ForcedMappingProver(self)


class ForcedMappingProver(Prover):
    """The unique sensible prover: echo the root's seed and report
    truthful aggregates — the tree and aggregation checks leave no
    other strategy alive.  On YES instances (σ really is an
    automorphism) it always wins; on NO instances it wins exactly on a
    hash collision (≤ m/p), making it simultaneously the completeness
    witness and the optimal cheater.
    """

    def __init__(self, protocol: FixedMappingProtocol) -> None:
        self.protocol = protocol

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        if round_idx != ROUND_M1:
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        protocol = self.protocol
        graph = instance.graph
        n = graph.n
        family = protocol.family
        sigma = protocol.sigma
        seed = randomness[ROUND_A0][protocol.root]
        advice = self.acquire_context(instance).tree_advice(protocol.root)

        def a_term(v: int) -> int:
            return family.hash_row_matrix(seed, n, v, graph.closed_row(v))

        def b_term(v: int) -> int:
            row = image_bits(graph.closed_row(v), sigma, n)
            return family.hash_row_matrix(seed, n, sigma[v], row)

        a_values = honest_aggregates(graph, advice, a_term, family.p)
        b_values = honest_aggregates(graph, advice, b_term, family.p)
        return {
            v: {FIELD_SEED: seed,
                FIELD_PARENT: advice[v].parent,
                FIELD_DIST: advice[v].dist,
                FIELD_A: a_values[v],
                FIELD_B: b_values[v]}
            for v in graph.vertices
        }


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: The generic fixed-mapping verifier every dAM reduction rides
#: (DSym instantiates it over the layout graph): same phase bill as
#: ``dsym-dam``, declared once for the primitive itself.
COST_DECLARATIONS = (
    CostDeclaration(
        key="fixed-map-dam",
        title="Fixed-mapping verification (Protocol 3 core)",
        pattern="AM", asymptotic="O(log n)",
        reference="Section 5 (fixed-mapping verification)",
        phases=(
            phase("A0", "arthur", "log2(100 * n^3)",
                  "one seed of the Theorem 3.2 family"),
            phase("M1", "merlin",
                  "3 * log2(100 * n^3) + 2 * log2(n)",
                  "seed echo + two aggregates + parent/dist fields"),
        ),
        total=phase("total", "merlin", "c * log2(n)",
                    "O(log n) bits per node"),
    ),
)
