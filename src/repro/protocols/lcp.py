"""Distributed NP baselines: Locally Checkable Proofs (LCPs).

The non-interactive "distributed NP" model the paper generalizes: the
prover hands each node a single advice string (one Merlin round, no
randomness) and nodes verify locally.  These baselines anchor the
separations:

* :class:`SymLCP` — the Θ(n²)-bit scheme for Sym, matching the
  Göös–Suomela lower bound [17] that makes Theorem 1.1's O(log n)
  dMAM protocol an exponential improvement.
* :class:`DSymLCP` — the same scheme restricted to DSym, the baseline
  against which the O(log n) dAM protocol of Theorem 1.2 is measured.
* :class:`ConnectivityLCP` — the O(log n) spanning-tree labeling
  scheme of Korman–Kutten–Peleg [23] (the substrate every interactive
  protocol in this library reuses), shown here in its classical
  standalone role: certifying connectivity with subtree counts.

All three have *perfect* completeness and soundness (they are
deterministic), which is exactly what distributed NP buys at the price
of advice length.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DNP,
                          bits_for_identifier, field_cost, tuple_field_cost)
from ..graphs.automorphism import find_nontrivial_automorphism
from ..graphs.dumbbell import DSymLayout, dsym_automorphism
from ..graphs.graph import Graph
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, FIELD_ROOT,
                                     honest_tree_advice, tree_check)

FIELD_MATRIX = "matrix"
FIELD_RHO = "rho"
FIELD_SIZE = "size"

ROUND_M0 = 0


def _matrix_row(matrix_bits: int, n: int, v: int) -> int:
    """Row ``v`` of an n×n closed adjacency matrix packed in an int."""
    return (matrix_bits >> (v * n)) & ((1 << n) - 1)


def _is_automorphism_of_bits(matrix_bits: int, n: int,
                             rho: Sequence[int]) -> bool:
    """Whether ``rho`` is an automorphism of the matrix-encoded graph."""
    if sorted(rho) != list(range(n)):
        return False
    for u in range(n):
        row = _matrix_row(matrix_bits, n, u)
        for v in range(n):
            bit = (row >> v) & 1
            image = (_matrix_row(matrix_bits, n, rho[u]) >> rho[v]) & 1
            if bit != image:
                return False
    return True


class SymLCP(Protocol):
    """The Θ(n²)-bit locally checkable proof for Sym.

    Advice (identical everywhere, enforced by the broadcast check): the
    full closed adjacency matrix plus a non-trivial automorphism table.
    Node v checks that the matrix's row v matches its actual
    neighborhood — over a connected graph this pins the matrix to the
    real one — and that the advice's ρ is a non-trivial automorphism of
    the advice's matrix.  Advice length n² + n·⌈log n⌉ bits.
    """

    name = "sym-lcp"
    pattern = PATTERN_DNP

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("Sym needs at least 2 vertices")
        self.n = n

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_MATRIX, FIELD_RHO})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_MATRIX, FIELD_RHO})

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        # Matrix (n² bits) + mapping table; malformed fields cost 0.
        return (field_cost(message, FIELD_MATRIX, self.n * self.n)
                + tuple_field_cost(message, FIELD_RHO, self.n,
                                   bits_for_identifier(self.n)))

    def decide(self, view: LocalView) -> bool:
        msg = view.own_message(ROUND_M0)
        matrix_bits = msg[FIELD_MATRIX]
        rho = msg[FIELD_RHO]
        n = view.n
        if not isinstance(matrix_bits, int) or matrix_bits >> (n * n):
            return False
        if not isinstance(rho, tuple) or len(rho) != n:
            return False
        own_row = 0
        for u in view.closed_neighborhood:
            own_row |= 1 << u
        if _matrix_row(matrix_bits, n, view.node) != own_row:
            return False
        if all(rho[v] == v for v in range(n)):
            return False
        return _is_automorphism_of_bits(matrix_bits, n, rho)

    def honest_prover(self) -> Prover:
        return _SymLCPProver(self)


class _SymLCPProver(Prover):
    def __init__(self, protocol: SymLCP) -> None:
        self.protocol = protocol

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        graph = instance.graph
        rho = find_nontrivial_automorphism(graph)
        if rho is None:
            raise ProtocolViolation(
                "honest prover run on an asymmetric graph")
        advice = {FIELD_MATRIX: graph.adjacency_bits(), FIELD_RHO: rho}
        return {v: dict(advice) for v in graph.vertices}


class DSymLCP(Protocol):
    """The n²-bit LCP for DSym: broadcast the matrix, check rows locally
    plus Definition 5's conditions against the *fixed* σ.

    [17] shows Ω(n²) advice is necessary for DSym in this model — our
    scheme is the matching (trivial) upper bound, the non-interactive
    side of the Theorem-1.2 separation.
    """

    name = "dsym-lcp"
    pattern = PATTERN_DNP

    def __init__(self, layout: DSymLayout) -> None:
        self.layout = layout
        self.sigma = dsym_automorphism(layout)

    @property
    def total_n(self) -> int:
        return self.layout.total_n

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.total_n:
            raise ValueError("instance size does not match the layout")

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_MATRIX})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_MATRIX})

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        return field_cost(message, FIELD_MATRIX,
                          self.total_n * self.total_n)

    def decide(self, view: LocalView) -> bool:
        msg = view.own_message(ROUND_M0)
        matrix_bits = msg[FIELD_MATRIX]
        n = view.n
        if not isinstance(matrix_bits, int) or matrix_bits >> (n * n):
            return False
        own_row = 0
        for u in view.closed_neighborhood:
            own_row |= 1 << u
        if _matrix_row(matrix_bits, n, view.node) != own_row:
            return False
        # The advice matrix is globally agreed and locally pinned; each
        # node checks the whole Definition-5 predicate on its copy.
        try:
            graph = Graph.from_adjacency_bits(n, matrix_bits, closed=True)
        except ValueError:
            return False
        from ..graphs.dumbbell import in_dsym
        return in_dsym(graph, self.layout.n)

    def honest_prover(self) -> Prover:
        return _DSymLCPProver(self)


class _DSymLCPProver(Prover):
    def __init__(self, protocol: DSymLCP) -> None:
        self.protocol = protocol

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        advice = {FIELD_MATRIX: instance.graph.adjacency_bits()}
        return {v: dict(advice) for v in instance.graph.vertices}


class ConnectivityLCP(Protocol):
    """The classical O(log n) spanning-tree labeling scheme ([23]).

    Advice per node: root (broadcast), parent, distance, and subtree
    size.  Sizes are forced bottom-up exactly like the hash aggregates
    of the interactive protocols, and the root requires its size to be
    ``n`` (the vertex set is public) — so a disconnected graph cannot
    be certified even though the broadcast check only propagates
    within components.  Unlike the other protocols in this package,
    this one therefore tolerates disconnected inputs (they are
    NO instances rather than model violations).
    """

    name = "connectivity-lcp"
    pattern = PATTERN_DNP

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n

    @property
    def requires_connected(self) -> bool:
        return False

    def validate_instance(self, instance: Instance) -> None:
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_ROOT})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_ROOT, FIELD_PARENT, FIELD_DIST, FIELD_SIZE})

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        id_bits = bits_for_identifier(self.n)
        return (field_cost(message, FIELD_ROOT, id_bits)
                + field_cost(message, FIELD_PARENT, id_bits)
                + field_cost(message, FIELD_DIST, id_bits)
                + field_cost(message, FIELD_SIZE,
                             bits_for_identifier(self.n + 1)))

    def decide(self, view: LocalView) -> bool:
        msg = view.own_message(ROUND_M0)
        root = msg[FIELD_ROOT]
        if not isinstance(root, int) or not 0 <= root < view.n:
            return False
        if not tree_check(view, ROUND_M0, root):
            return False
        size = msg[FIELD_SIZE]
        if not isinstance(size, int):
            return False
        total = 1
        for u in view.neighbors:
            if u == root:
                continue
            u_msg = view.message_of(ROUND_M0, u)
            if u_msg.get(FIELD_PARENT) == view.node:
                child_size = u_msg.get(FIELD_SIZE)
                if not isinstance(child_size, int):
                    return False
                total += child_size
        if size != total:
            return False
        if view.node == root and size != view.n:
            return False
        return True

    def honest_prover(self) -> Prover:
        return _ConnectivityLCPProver(self)


class _ConnectivityLCPProver(Prover):
    def __init__(self, protocol: ConnectivityLCP) -> None:
        self.protocol = protocol

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        graph = instance.graph
        if not graph.is_connected():
            raise ProtocolViolation(
                "honest prover run on a disconnected graph (NO instance)")
        root = 0
        advice = honest_tree_advice(graph, root)
        sizes = {v: 1 for v in graph.vertices}
        order = sorted(graph.vertices, key=lambda v: advice[v].dist,
                       reverse=True)
        for v in order:
            parent = advice[v].parent
            if parent != v:
                sizes[parent] += sizes[v]
        return {
            v: {FIELD_ROOT: root,
                FIELD_PARENT: advice[v].parent,
                FIELD_DIST: advice[v].dist,
                FIELD_SIZE: sizes[v]}
            for v in graph.vertices
        }


# -- cost declarations ----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: The distributed-NP baselines: one Merlin round, no interaction.
#: Sym and DSym certificates ship an adjacency matrix — the Θ(n²)
#: floor interaction beats — while connectivity's KKP-style labels
#: stay logarithmic.
COST_DECLARATIONS = (
    CostDeclaration(
        key="sym-lcp", title="Sym LCP — the Θ(n²) distributed-NP floor",
        pattern="M", asymptotic="Θ(n²)",
        reference="Section 1.1 (Göös–Suomela LCP lower bound)",
        phases=(
            phase("M0", "merlin", "n * n + n * log2(n)",
                  "full adjacency matrix + rho table as advice"),
        ),
        total=phase("total", "merlin", "c * n^2",
                    "Θ(n²) advice per node"),
    ),
    CostDeclaration(
        key="dsym-lcp", title="DSym LCP — Θ(n²) advice",
        pattern="M", asymptotic="Θ(n²)",
        reference="Theorem 1.2 discussion (DSym LCP lower bound)",
        phases=(
            phase("M0", "merlin", "n * n",
                  "adjacency matrix of the whole layout as advice"),
        ),
        total=phase("total", "merlin", "c * n^2",
                    "Θ(n²) advice per node"),
    ),
    CostDeclaration(
        key="connectivity-lcp",
        title="Connectivity PLS — the O(log n) contrast",
        pattern="M", asymptotic="O(log n)",
        reference="Korman–Kutten–Peleg proof labeling (related work)",
        phases=(
            phase("M0", "merlin", "3 * log2(n) + log2(n + 1)",
                  "root, parent, own id + distance label in 0..n"),
        ),
        total=phase("total", "merlin", "c * log2(n)",
                    "O(log n) labels suffice for connectivity"),
    ),
)
