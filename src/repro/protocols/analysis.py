"""Exact soundness analysis for the commit-style Sym protocols.

For Protocol 1, the fixed-mapping protocol and DSym, the optimal
cheating strategy is fully characterized (see the prover docstrings):
commit to some mapping ρ, answer truthfully, and win exactly when the
random seed collides the two matrix hashes.  That makes the *exact*
acceptance probability computable — no Monte Carlo needed:

    Pr[accept | committed ρ] = #{s ∈ [p] : h_s(A) = h_s(B)} / p,

where ``A = Σ[v, N(v)]`` and ``B = Σ[ρ(v), ρ(N(v))]`` over Z_p.  The
colliding seeds are the roots of the difference polynomial, of which
Theorem 3.2 promises at most m; this module counts them by direct
evaluation over the seed space (fine for the ``p ∈ [10n³, 100n³]``
primes at simulator sizes).

These exact numbers serve three purposes: they validate the Monte
Carlo estimates in the benchmarks, they give the *optimal committed
cheater* (maximize over candidate mappings), and they make soundness
experiments reproducible to the last digit.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from ..graphs.graph import Graph
from ..hashing.linear import LinearHashFamily
from ..hashing.rowmatrix import graph_matrix_sum, mapped_matrix_sum


def difference_coefficients(graph: Graph, mapping: Sequence[int],
                            p: int) -> List[int]:
    """Flattened ``A - B (mod p)`` — the difference polynomial's
    coefficient vector (coefficient j multiplies ``s^{j+1}``)."""
    a = graph_matrix_sum(graph, p)
    b = mapped_matrix_sum(graph, mapping, p)
    coeffs = []
    for row_a, row_b in zip(a.rows, b.rows):
        coeffs.extend((x - y) % p for x, y in zip(row_a, row_b))
    return coeffs


def collision_seeds(graph: Graph, mapping: Sequence[int],
                    family: LinearHashFamily) -> List[int]:
    """All seeds on which the committed cheater with mapping ρ wins.

    Empty difference vector (ρ an automorphism) means *every* seed
    wins — the degenerate case callers should treat as completeness,
    not collision.
    """
    p = family.p
    coeffs = difference_coefficients(graph, mapping, p)
    if not any(coeffs):
        return list(range(p))
    # Evaluate the difference polynomial with a running power table:
    # one pass of O(p · #nonzero) multiplications.
    nonzero = [(j, c) for j, c in enumerate(coeffs) if c]
    seeds = []
    for s in range(p):
        acc = 0
        power = s  # s^{j+1} built incrementally over nonzero gaps
        prev_j = 0
        for j, c in nonzero:
            if j != prev_j:
                power = power * pow(s, j - prev_j, p) % p
                prev_j = j
            acc = (acc + c * power) % p
        if acc == 0:
            seeds.append(s)
    return seeds


def exact_commit_acceptance(graph: Graph, mapping: Sequence[int],
                            family: LinearHashFamily) -> Fraction:
    """Exact acceptance probability of the committed cheater with ρ."""
    return Fraction(len(collision_seeds(graph, mapping, family)), family.p)


def all_swaps(n: int) -> Iterable[Tuple[int, ...]]:
    """All transpositions on ``0..n-1`` (the default candidate set)."""
    identity = tuple(range(n))
    for u in range(n):
        for w in range(u + 1, n):
            mapping = list(identity)
            mapping[u], mapping[w] = w, u
            yield tuple(mapping)


def optimal_committed_cheater(
        graph: Graph, family: LinearHashFamily,
        candidates: Optional[Iterable[Sequence[int]]] = None
) -> Tuple[Tuple[int, ...], Fraction]:
    """The best committed mapping over a candidate set, with its exact
    acceptance probability.

    Default candidates: all transpositions.  On an asymmetric graph
    every candidate's probability is ≤ m/p; on a symmetric graph a
    candidate that happens to be an automorphism returns probability 1
    (the "cheater" is then just honest).
    """
    best_mapping: Optional[Tuple[int, ...]] = None
    best_probability = Fraction(-1)
    pool = candidates if candidates is not None else all_swaps(graph.n)
    for mapping in pool:
        probability = exact_commit_acceptance(graph, mapping, family)
        if probability > best_probability:
            best_probability = probability
            best_mapping = tuple(mapping)
        if best_probability == 1:
            break
    if best_mapping is None:
        raise ValueError("empty candidate set")
    return best_mapping, best_probability


def exact_soundness_bound(graph: Graph, family: LinearHashFamily,
                          exhaustive_limit: int = 6) -> Fraction:
    """The exact optimum over *all* non-identity permutations for tiny
    graphs (n ≤ exhaustive_limit), else over all transpositions.

    This is the exact soundness error of Protocol 1 against committed
    strategies on the given asymmetric instance.
    """
    n = graph.n
    if n <= exhaustive_limit:
        identity = tuple(range(n))
        candidates = (perm for perm in itertools.permutations(range(n))
                      if perm != identity)
        return optimal_committed_cheater(graph, family, candidates)[1]
    return optimal_committed_cheater(graph, family)[1]
