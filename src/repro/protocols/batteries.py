"""Canonical instance batteries for each language.

Experiments, tests and downstream users all need the same thing:
curated YES and NO instances with known ground truth, at a given size.
These builders are the single source of truth for "a representative
battery", so every consumer measures against the same instances.

Each battery is a list of :class:`LabeledInstance` — instance, truth
bit, and a human-readable label for reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.model import Instance
from ..graphs.dumbbell import DSymLayout, dsym_graph, dsym_no_instance
from ..graphs.families import rigid_family
from ..graphs.generators import (cycle_graph, gnp_random_graph,
                                 symmetric_doubled_graph)
from ..graphs.dumbbell import lower_bound_dumbbell
from .gni import gni_instance


@dataclass(frozen=True)
class LabeledInstance:
    """An instance with ground truth attached."""

    label: str
    instance: Instance
    is_yes: bool


def sym_battery(inner_n: int = 6,
                rng: Optional[random.Random] = None) -> List[LabeledInstance]:
    """Sym instances on ``2·inner_n + 2`` vertices: dumbbells over a
    rigid family (the paper's own hard family) plus a structured
    symmetric graph.

    YES instances are ``G(F, F)`` dumbbells and a doubled random graph;
    NO instances are ``G(F_i, F_j)`` with ``i ≠ j``.
    """
    rng = rng or random.Random(0)
    family = rigid_family(inner_n, 4, rng)
    items = [
        LabeledInstance(
            "dumbbell G(F0,F0)",
            Instance(lower_bound_dumbbell(family[0], family[0])), True),
        LabeledInstance(
            "dumbbell G(F1,F1)",
            Instance(lower_bound_dumbbell(family[1], family[1])), True),
        LabeledInstance(
            "dumbbell G(F0,F1)",
            Instance(lower_bound_dumbbell(family[0], family[1])), False),
        LabeledInstance(
            "dumbbell G(F2,F3)",
            Instance(lower_bound_dumbbell(family[2], family[3])), False),
    ]
    doubled = symmetric_doubled_graph(gnp_random_graph(inner_n, 0.4, rng),
                                      bridge_length=2)
    if doubled.is_connected():
        items.append(LabeledInstance("doubled random graph",
                                     Instance(doubled), True))
    return items


def dsym_battery(layout: DSymLayout,
                 rng: Optional[random.Random] = None
                 ) -> List[LabeledInstance]:
    """DSym instances for a given layout: equal halves (YES), different
    and relabeled halves (NO)."""
    rng = rng or random.Random(1)
    n = layout.n
    half = gnp_random_graph(n, 0.5, rng)
    while not dsym_graph(half, layout.r).is_connected():
        half = gnp_random_graph(n, 0.5, rng)
    other = gnp_random_graph(n, 0.5, rng)
    items = [
        LabeledInstance("equal random halves",
                        Instance(dsym_graph(half, layout.r)), True),
        LabeledInstance("equal cyclic halves",
                        Instance(dsym_graph(cycle_graph(n), layout.r)),
                        True),
    ]
    if other != half:
        no_graph = dsym_no_instance(half, other, layout.r)
        if no_graph.is_connected():
            items.append(LabeledInstance(
                "different halves", Instance(no_graph), False))
    perm = list(range(n))
    rng.shuffle(perm)
    relabeled = half.relabel(perm)
    if relabeled != half:
        no_graph = dsym_no_instance(half, relabeled, layout.r)
        if no_graph.is_connected():
            items.append(LabeledInstance(
                "relabeled half", Instance(no_graph), False))
    return items


def gni_battery(n: int = 6,
                rng: Optional[random.Random] = None) -> List[LabeledInstance]:
    """GNI instances over rigid graphs (the base protocol's domain):
    non-isomorphic pairs (YES), relabelings and identical pairs (NO)."""
    rng = rng or random.Random(2)
    family = rigid_family(n, 3, rng)
    perm = list(range(n))
    rng.shuffle(perm)
    if perm == list(range(n)):
        perm = [1, 0] + list(range(2, n))
    return [
        LabeledInstance("rigid F0 vs F1",
                        gni_instance(family[0], family[1]), True),
        LabeledInstance("rigid F1 vs F2",
                        gni_instance(family[1], family[2]), True),
        LabeledInstance("F0 vs relabeled F0",
                        gni_instance(family[0], family[0].relabel(perm)),
                        False),
        LabeledInstance("F0 vs itself",
                        gni_instance(family[0], family[0]), False),
    ]
