"""Protocol 2: the O(n log n)-bit dAM protocol for Graph Symmetry.

Theorem 1.3 / Section 3.2 of the paper.  Round structure:

* **A₀** — each node sends a uniformly random hash index
  ``i_v ∈ [|H|]``, where ``H`` is the Theorem-3.2 family for
  ``m = n²`` and a prime ``p ∈ [10·n^{n+2}, 100·n^{n+2}]`` — so a seed
  index costs Θ(n log n) bits.
* **M₁** — the prover broadcasts the *entire* mapping
  ``ρ : V → V`` (n identifiers), an index ``i`` (claimed ``i_r``) and
  the root ``r``; it unicasts the spanning-tree advice ``t_v, d_v``
  and the two subtree aggregates ``a_v, b_v``.

Because the prover moves *after* seeing the challenge, it can choose ρ
adaptively; soundness instead comes from a union bound over all ``n^n``
mappings (Lemma 3.1 holds for arbitrary mappings, which is why the
nodes never need to check that ρ is a permutation): for each fixed
non-identity σ the collision probability is ≤ m/p ≤ 1/(10·n^n), so
even the best adaptive prover succeeds with probability ≤ 1/10.

The ``family`` parameter exists for experiment E6: running this
protocol with Protocol 1's small prime hands the adaptive prover a
feasible collision search and demonstrably *breaks* soundness —
the reason interaction order matters.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DAM,
                          bits_for_identifier, bits_for_value, field_cost,
                          tuple_field_cost)
from ..graphs.graph import Graph
from ..hashing.linear import LinearHashFamily
from ..hashing.primes import prime_in_range
from ..hashing.rowmatrix import image_bits
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, FIELD_ROOT,
                                     honest_tree_advice, tree_check)
from ._tree_hash import check_aggregate, closed_row_bits, honest_aggregates

FIELD_RHO_TABLE = "rho_table"
FIELD_SEED = "seed"
FIELD_A = "a"
FIELD_B = "b"

ROUND_A0 = 0
ROUND_M1 = 1


def protocol2_hash_family(n: int) -> LinearHashFamily:
    """The paper's Protocol-2 family: prime in [10·n^(n+2), 100·n^(n+2)].

    The union bound over all n^n mappings leaves total soundness error
    ≤ n^n · n²/p ≤ 1/10.
    """
    base = n ** (n + 2)
    return LinearHashFamily(m=n * n, p=prime_in_range(10 * base, 100 * base))


class SymDAMProtocol(Protocol):
    """Protocol 2 (dAM for Sym) on ``n`` vertices."""

    name = "sym-dam"
    pattern = PATTERN_DAM

    def __init__(self, n: int,
                 family: Optional[LinearHashFamily] = None) -> None:
        if n < 2:
            raise ValueError("Sym needs at least 2 vertices")
        self.n = n
        self.family = family or protocol2_hash_family(n)
        if self.family.m < n * n:
            raise ValueError("hash dimension must cover the n×n matrix")

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")

    # -- Arthur ----------------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> int:
        return self.family.sample_seed(rng)

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        return self.family.seed_bits

    # -- Merlin ----------------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_RHO_TABLE, FIELD_SEED, FIELD_ROOT})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_RHO_TABLE, FIELD_SEED, FIELD_ROOT,
                          FIELD_PARENT, FIELD_DIST, FIELD_A, FIELD_B})

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        id_bits = bits_for_identifier(self.n)
        value_bits = bits_for_value(self.family.p)
        # The full mapping table plus tree/aggregate fields; each field
        # is charged only if wire-encodable (malformed costs 0 bits).
        return (tuple_field_cost(message, FIELD_RHO_TABLE, self.n, id_bits)
                + field_cost(message, FIELD_SEED, self.family.seed_bits)
                + field_cost(message, FIELD_ROOT, id_bits)
                + field_cost(message, FIELD_PARENT, id_bits)
                + field_cost(message, FIELD_DIST, id_bits)
                + field_cost(message, FIELD_A, value_bits)
                + field_cost(message, FIELD_B, value_bits))

    # -- decision ----------------------------------------------------------

    def decide(self, view: LocalView) -> bool:
        m1 = view.own_message(ROUND_M1)
        root = m1[FIELD_ROOT]
        if not isinstance(root, int) or not 0 <= root < view.n:
            return False
        rho = m1[FIELD_RHO_TABLE]
        if (not isinstance(rho, tuple) or len(rho) != view.n
                or any(not isinstance(x, int) or not 0 <= x < view.n
                       for x in rho)):
            return False
        seed = m1[FIELD_SEED]
        if not isinstance(seed, int) or not 0 <= seed < self.family.p:
            return False
        if not tree_check(view, ROUND_M1, root):
            return False

        own_row = closed_row_bits(view)
        a_term = self.family.hash_row_matrix(seed, view.n, view.node, own_row)
        # With the full table broadcast, each node computes ρ(N(v))
        # directly (no need to read neighbors' unicasts for ρ).
        b_row = image_bits(own_row, rho, view.n)
        b_term = self.family.hash_row_matrix(seed, view.n, rho[view.node],
                                             b_row)

        if not check_aggregate(view, ROUND_M1, ROUND_M1, root, FIELD_A,
                               a_term, self.family.p):
            return False
        if not check_aggregate(view, ROUND_M1, ROUND_M1, root, FIELD_B,
                               b_term, self.family.p):
            return False

        if view.node == root:
            if m1[FIELD_A] != m1[FIELD_B]:
                return False
            if rho[root] == root:
                return False
            if seed != view.own_randomness(ROUND_A0):
                return False
        return True

    # -- provers -----------------------------------------------------------

    def honest_prover(self) -> Prover:
        return HonestSymDAMProver(self)


def _mapping_response(protocol: SymDAMProtocol, graph: Graph,
                      rho: Tuple[int, ...], seed: int,
                      context=None,
                      root: Optional[int] = None) -> Dict[int, NodeMessage]:
    """Build the full M₁ response for a committed mapping: truthful
    spanning tree and truthful aggregates (the prover has no slack in
    the aggregates; see Protocol 1's cheating-prover docstring).

    ``context`` is an optional :class:`~repro.core.context
    .InstanceContext` supplying the cached spanning tree.  ``root``
    overrides the canonical choice (the smallest moved vertex) — the
    root determines whose challenge is echoed, so adaptive callers may
    prefer a different moved vertex."""
    n = graph.n
    family = protocol.family
    if root is None:
        root = min(v for v in graph.vertices if rho[v] != v)
    if context is not None:
        advice = context.tree_advice(root)
    else:
        advice = honest_tree_advice(graph, root)

    def a_term(v: int) -> int:
        return family.hash_row_matrix(seed, n, v, graph.closed_row(v))

    def b_term(v: int) -> int:
        row = image_bits(graph.closed_row(v), rho, n)
        return family.hash_row_matrix(seed, n, rho[v], row)

    a_values = honest_aggregates(graph, advice, a_term, family.p)
    b_values = honest_aggregates(graph, advice, b_term, family.p)
    return {
        v: {FIELD_RHO_TABLE: rho,
            FIELD_SEED: seed,
            FIELD_ROOT: root,
            FIELD_PARENT: advice[v].parent,
            FIELD_DIST: advice[v].dist,
            FIELD_A: a_values[v],
            FIELD_B: b_values[v]}
        for v in graph.vertices
    }


class HonestSymDAMProver(Prover):
    """Completeness witness for Protocol 2."""

    def __init__(self, protocol: SymDAMProtocol) -> None:
        self.protocol = protocol

    def batch_plan(self, context):
        """The numpy batch engine's description of this strategy (same
        contract as ``HonestSymDMAMProver.batch_plan``)."""
        rho = context.nontrivial_automorphism()
        if rho is None:
            raise ProtocolViolation(
                "honest prover run on an asymmetric graph — "
                "completeness only applies to YES instances")
        root = min(v for v in context.graph.vertices if rho[v] != v)
        return {"rho": rho, "root": root}

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        if round_idx != ROUND_M1:
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        graph = instance.graph
        ctx = self.acquire_context(instance)
        rho = ctx.nontrivial_automorphism()
        if rho is None:
            raise ProtocolViolation(
                "honest prover run on an asymmetric graph — "
                "completeness only applies to YES instances")
        root = min(v for v in graph.vertices if rho[v] != v)
        seed = randomness[ROUND_A0][root]
        return _mapping_response(self.protocol, graph, rho, seed,
                                 context=ctx)


class CommittedDAMProver(Prover):
    """Protocol 2's analogue of Protocol 1's ``CommittedMappingProver``:
    plays one fixed non-identity mapping regardless of the challenge.

    Deliberately *non-adaptive* — it echoes the root's challenge and
    reports truthful aggregates for its committed ρ, so its acceptance
    probability is exactly the collision probability of the two fixed
    matrices (``analysis.exact_commit_acceptance``).  This is the
    per-candidate oracle the coordinate-ascent search climbs with, and
    the committed baseline the adaptive game value is compared against.
    """

    def __init__(self, protocol: SymDAMProtocol, mapping: Sequence[int],
                 root: Optional[int] = None) -> None:
        rho = tuple(mapping)
        if len(rho) != protocol.n:
            raise ValueError("mapping must cover every vertex")
        moved = [v for v in range(protocol.n) if rho[v] != v]
        if not moved:
            raise ValueError("committed cheating mapping must move a vertex")
        chosen_root = root if root is not None else min(moved)
        if rho[chosen_root] == chosen_root:
            raise ValueError("root must be moved by the mapping")
        self.protocol = protocol
        self.mapping = rho
        self.root = chosen_root

    def batch_plan(self, context):
        """The committed (ρ, root) pair — validated at construction,
        and challenge-independent by design, so the numpy batch engine
        can replay this prover wholesale."""
        return {"rho": self.mapping, "root": self.root}

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        if round_idx != ROUND_M1:
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        seed = randomness[ROUND_A0][self.root]
        return _mapping_response(self.protocol, instance.graph,
                                 self.mapping, seed,
                                 context=self.acquire_context(instance),
                                 root=self.root)


def _hash_of_mapping(family: LinearHashFamily, graph: Graph, seed: int,
                     rho: Sequence[int]) -> int:
    """``h_seed(Σ_v [ρ(v), ρ(N(v))])`` computed row by row."""
    n = graph.n
    total = 0
    for v in graph.vertices:
        row = image_bits(graph.closed_row(v), rho, n)
        total = (total + family.hash_row_matrix(seed, n, rho[v], row)) \
            % family.p
    return total


class AdaptiveCollisionProver(Prover):
    """The adaptive cheating prover for Protocol 2 (experiment E6).

    Unlike Protocol 1's prover, this one sees the root's hash index
    *before* committing to a mapping, so it searches a candidate set of
    non-identity mappings for one whose permuted matrix collides with
    the adjacency matrix under ``h_{i_r}``.  With the paper's huge
    prime the search fails (soundness holds); with a small prime it
    frequently succeeds — quantifying why dAM needs the union-bound
    sized hash while dMAM does not.

    ``search``:
      * ``"swaps"`` — all transpositions (n·(n-1)/2 candidates);
      * ``"permutations"`` — all n! permutations (tiny n only);
      * ``"mappings"`` — all n^n mappings (tinier n only).
    """

    def __init__(self, protocol: SymDAMProtocol,
                 search: str = "swaps",
                 candidate_cap: int = 200_000) -> None:
        if search not in ("swaps", "permutations", "mappings"):
            raise ValueError(f"unknown search mode {search!r}")
        self.protocol = protocol
        self.search = search
        self.candidate_cap = candidate_cap
        #: Set by each respond() call: did the collision search succeed?
        self.last_search_succeeded = False

    def _candidates(self, n: int) -> Iterable[Tuple[int, ...]]:
        identity = tuple(range(n))
        if self.search == "swaps":
            for u in range(n):
                for w in range(u + 1, n):
                    mapping = list(identity)
                    mapping[u], mapping[w] = w, u
                    yield tuple(mapping)
        elif self.search == "permutations":
            for perm in itertools.permutations(range(n)):
                if perm != identity:
                    yield perm
        else:
            for mapping in itertools.product(range(n), repeat=n):
                if mapping != identity:
                    yield mapping

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, int]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        if round_idx != ROUND_M1:
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        graph = instance.graph
        family = self.protocol.family
        n = graph.n

        fallback: Optional[Tuple[int, ...]] = None
        self.last_search_succeeded = False
        chosen: Optional[Tuple[int, ...]] = None
        chosen_seed: Optional[int] = None
        count = 0
        for rho in self._candidates(n):
            if fallback is None:
                fallback = rho
            count += 1
            if count > self.candidate_cap:
                break
            # The root is determined by the candidate (the protocol's
            # root check ties the seed to the root's challenge).
            root = min(v for v in range(n) if rho[v] != v)
            seed = randomness[ROUND_A0][root]
            a_total = 0
            for v in graph.vertices:
                a_total = (a_total + family.hash_row_matrix(
                    seed, n, v, graph.closed_row(v))) % family.p
            if _hash_of_mapping(family, graph, seed, rho) == a_total:
                chosen = rho
                chosen_seed = seed
                self.last_search_succeeded = True
                break

        if chosen is None:
            assert fallback is not None
            chosen = fallback
            root = min(v for v in range(n) if chosen[v] != v)
            chosen_seed = randomness[ROUND_A0][root]
        assert chosen_seed is not None
        return _mapping_response(self.protocol, graph, chosen, chosen_seed,
                                 context=self.acquire_context(instance))


# -- cost declarations ----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: Protocol 2 hashes the whole mapping at once, so the prime window is
#: [10n^(n+2), 100n^(n+2)] and one seed costs
#: log2(p) ≤ 7 + (n+2)·log2(n) bits (+1 for the width convention);
#: Merlin's reply carries the full ρ table (n identifiers), the seed
#: echo and two field elements, plus parent/dist spanning fields.  The
#: ``sym-dam-smallprime`` variant is the E6 ablation: Protocol 2's
#: machinery with Protocol 1's ~3·log n-bit prime.
COST_DECLARATIONS = (
    CostDeclaration(
        key="sym-dam", title="Protocol 2 — Sym ∈ dAM(n log n)",
        pattern="AM", asymptotic="O(n log n)",
        reference="Theorem 1.3 / Protocol 2 (Section 3.4)",
        phases=(
            phase("A0", "arthur", "(n + 2) * log2(n) + 8",
                  "Protocol 2: one seed over p in "
                  "[10n^(n+2), 100n^(n+2)]"),
            phase("M1", "merlin",
                  "n * log2(n) + 3 * log2(n) "
                  "+ 3 * ((n + 2) * log2(n) + 8)",
                  "Protocol 2: full rho table, spanning fields, "
                  "seed echo + two field elements"),
        ),
        total=phase("total", "merlin", "c * n * log2(n)",
                    "Theorem 1.3: O(n log n) bits per node"),
    ),
    CostDeclaration(
        key="sym-dam-smallprime",
        title="Protocol 2 with Protocol 1's prime (E6 ablation)",
        pattern="AM", asymptotic="O(n log n)",
        reference="E6 round-order ablation (Theorem 3.1 vs 3.2 window)",
        phases=(
            phase("A0", "arthur", "log2(100 * n^3)",
                  "one seed of the Theorem 3.2 family"),
            phase("M1", "merlin",
                  "n * log2(n) + 3 * log2(n) + 3 * log2(100 * n^3)",
                  "full rho table, spanning fields, seed echo + two "
                  "field elements"),
        ),
        total=phase("total", "merlin", "c * n * log2(n)",
                    "dominated by the rho table: O(n log n)"),
    ),
)
