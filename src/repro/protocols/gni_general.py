"""GNI for *general* graphs: the automorphism-compensated protocol.

The base protocol (:mod:`repro.protocols.gni`) follows the paper's
Section 4 in restricting attention to asymmetric inputs: for symmetric
graphs the orbit ``{σ(G_b)}`` has only ``n!/|Aut(G_b)|`` members, the
set-size gap shrinks, and the Goldwasser–Sipser estimation loses its
teeth (the ablation in ``benchmarks/bench_gni_general.py`` measures
exactly this collapse).

The paper points at the classical fix from [15]: count *pairs* instead
of graphs —

    S = { (H, α) : H ≅ G_b for some b, α ∈ Aut(H) }.

For every graph, symmetric or not, each ``b`` contributes exactly
``n!`` pairs (``n!/|Aut|`` graphs × ``|Aut|`` automorphisms each), so
``|S| = 2·n!`` iff ``G₀ ≇ G₁`` and ``n!`` otherwise — the clean gap is
restored.  The paper defers the distributed details to its full
version ("to solve the unrestricted GNI problem, we utilize the dAM
protocol for Symmetry constructed in Section 3.2"); this module works
them out:

* the prover's claim per repetition becomes ``(b, σ, α)`` with the
  pair encoded as the ``n²``-bit matrix of ``H = σ(G_b)`` followed by
  an ``n·⌈log n⌉``-bit block for α; the ε-API hash runs over the
  extended domain, with the α-block contributed by the root (α is
  broadcast, so the root can hash it as part of its own term);
* ``α ∈ Aut(H)`` is verified distributedly with exactly Protocol 2's
  machinery — and this is where Section 3.2 enters, as the paper
  says: ``α ∈ Aut(σ(G_b))`` iff ``τ = σ⁻¹ ∘ α ∘ σ ∈ Aut(G_b)``
  (every node computes τ locally from the broadcast tables), which the
  nodes check by hash-comparing ``Σ[v, N_b(v)]`` against
  ``Σ[τ(v), τ(N_b(v))]`` up the spanning tree.  The prover chooses α
  *after* seeing the seed, so the check needs Protocol 2's union-bound
  prime; we widen it to ``[10³·n^{n+2}, 10⁴·n^{n+2}]`` so the cheat
  probability (≤ n^n · n²/p₂ ≤ 10⁻³) is negligible against the GS gap
  rather than merely < 1/10.

Cost stays Θ(n log n) per repetition: the α and σ tables and the p₂
hash values are all Θ(n log n)-bit objects.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.amplify import choose_threshold, threshold_guarantees
from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DAMAM,
                          bits_for_identifier, bits_for_value, field_cost,
                          sequence_field, uint_fits, uint_tuple_fits)
from ..graphs.automorphism import all_automorphisms
from ..graphs.graph import Graph
from ..hashing.api import APIChallenge, DistributedAPIHash, gs_output_modulus
from ..hashing.linear import LinearHashFamily
from ..hashing.primes import prime_in_range
from ..hashing.rowmatrix import image_bits
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, tree_check)
from ._tree_hash import closed_row_bits, honest_aggregates
from .gni import GNIGuarantees

FIELD_ECHO = "echo"
FIELD_CLAIMS = "claims"
FIELD_PARTIALS = "partials"
FIELD_AUT_LEFT = "aut_left"
FIELD_AUT_RIGHT = "aut_right"

ROUND_A0 = 0
ROUND_M1 = 1
ROUND_A2 = 2
ROUND_M3 = 3

GNI_ROOT = 0


def _alpha_block(alpha: Sequence[int], n: int, id_bits: int) -> int:
    """The α table packed as bits at offsets ``n² + u·id_bits``."""
    bits = 0
    base = n * n
    for u in range(n):
        bits |= alpha[u] << (base + u * id_bits)
    return bits


def _compose(outer: Sequence[int], inner: Sequence[int]) -> Tuple[int, ...]:
    """``(outer ∘ inner)(v) = outer[inner[v]]``."""
    return tuple(outer[x] for x in inner)


def _inverse(perm: Sequence[int]) -> Tuple[int, ...]:
    inv = [0] * len(perm)
    for i, x in enumerate(perm):
        inv[x] = i
    return tuple(inv)


def pair_catalog(g0: Graph, g1: Graph
                 ) -> Dict[int, Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
    """The compensated set S with witnesses: encoding ↦ (b, σ, α).

    Exactly ``2·n!`` entries when the graphs are non-isomorphic and
    ``n!`` when isomorphic, for *any* graphs (the whole point).
    """
    n = g0.n
    id_bits = bits_for_identifier(n)
    catalog: Dict[int, Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = {}
    for b, graph in ((0, g0), (1, g1)):
        auts = list(all_automorphisms(graph))
        for sigma in itertools.permutations(range(n)):
            matrix_bits = 0
            for v in range(n):
                row = image_bits(graph.closed_row(v), sigma, n)
                matrix_bits |= row << (sigma[v] * n)
            sigma_inv = _inverse(sigma)
            for tau in auts:
                alpha = _compose(sigma, _compose(tau, sigma_inv))
                encoding = matrix_bits | _alpha_block(alpha, n, id_bits)
                catalog.setdefault(encoding, (b, sigma, alpha))
    return catalog


class GeneralGNIProtocol(Protocol):
    """dAMAM GNI protocol valid for arbitrary (also symmetric) inputs."""

    name = "gni-general-damam"
    pattern = PATTERN_DAMAM

    def __init__(self, n: int, repetitions: int = 60,
                 q: Optional[int] = None, big_q: Optional[int] = None,
                 aut_prime: Optional[int] = None,
                 threshold: Optional[int] = None) -> None:
        if n < 2:
            raise ValueError("GNI needs at least 2 vertices")
        if repetitions < 2:
            raise ValueError("need at least one repetition per batch")
        self.n = n
        self.id_bits = bits_for_identifier(n)
        self.set_size_yes = 2 * math.factorial(n)
        self.q = q if q is not None else gs_output_modulus(self.set_size_yes)
        # ε-API hash over (matrix, α) encodings.
        self.encoding_bits = n * n + n * self.id_bits
        self.hash = DistributedAPIHash(m=self.encoding_bits, q=self.q,
                                       big_q=big_q)
        # The α-validity hash: Protocol 2's family, widened by 100× so
        # the adaptive cheat probability is negligible (see module doc).
        base = n ** (n + 2)
        self.aut_family = LinearHashFamily(
            m=n * n,
            p=aut_prime if aut_prime is not None
            else prime_in_range(1000 * base, 10000 * base))
        self.batch_sizes = (repetitions - repetitions // 2,
                            repetitions // 2)
        p_yes, p_no = self.repetition_bounds()
        self.threshold = (threshold if threshold is not None
                          else choose_threshold(repetitions, p_yes, p_no))

    # -- analysis ----------------------------------------------------------

    @property
    def repetitions(self) -> int:
        return sum(self.batch_sizes)

    @property
    def aut_cheat_bound(self) -> float:
        """Per-repetition probability of slipping a non-automorphism α
        past the union-bounded hash check."""
        return (self.n ** self.n) * (self.n * self.n) / self.aut_family.p

    def repetition_bounds(self) -> Tuple[float, float]:
        """As in the base protocol, with the α-cheat slack added to the
        NO side (a bogus pair must still hit ``h(x) = y``, so this is
        conservative)."""
        eps, delta = self.hash.epsilon, self.hash.delta
        s_yes = self.set_size_yes
        s_no = s_yes // 2
        p_yes = (s_yes * (1 - delta) / self.q
                 - (1 + eps) * s_yes * s_yes / (2 * self.q * self.q))
        p_no = s_no * (1 + delta) / self.q + self.aut_cheat_bound
        return p_yes, p_no

    def guarantees(self) -> GNIGuarantees:
        p_yes, p_no = self.repetition_bounds()
        completeness, soundness = threshold_guarantees(
            self.repetitions, self.threshold, p_yes, p_no)
        return GNIGuarantees(
            p_yes_lower=p_yes, p_no_upper=p_no,
            repetitions=self.repetitions, threshold=self.threshold,
            completeness=completeness, soundness_error=soundness)

    # -- model -------------------------------------------------------------

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")
        if instance.inputs is None:
            raise ValueError("GNI instances carry G₁ rows as node inputs")
        for v in instance.graph.vertices:
            row = instance.input_of(v)
            if (not isinstance(row, int) or row >> self.n
                    or not (row >> v) & 1):
                raise ValueError(
                    f"node {v} input is not a closed G₁ adjacency row")

    def _batch(self, a_round: int) -> int:
        return 0 if a_round == ROUND_A0 else 1

    # -- Arthur ----------------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> Tuple[Tuple[int, ...], ...]:
        """Per repetition: (c_v, s, a, b, y, s₂) — the base challenge
        plus the α-check seed s₂ (only the root's is used)."""
        reps = self.batch_sizes[self._batch(round_idx)]
        values = []
        for _ in range(reps):
            c = self.hash.sample_node_offset(rng)
            s, a, b, y = self.hash.sample_root_part(rng)
            s2 = self.aut_family.sample_seed(rng)
            values.append((c, s, a, b, y, s2))
        return tuple(values)

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        reps = self.batch_sizes[self._batch(round_idx)]
        return reps * (self.hash.node_seed_bits + self.hash.root_seed_bits
                       + self.aut_family.seed_bits)

    # -- Merlin ----------------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_ECHO, FIELD_CLAIMS})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        fields = {FIELD_ECHO, FIELD_CLAIMS, FIELD_PARTIALS,
                  FIELD_AUT_LEFT, FIELD_AUT_RIGHT}
        if round_idx == ROUND_M1:
            fields |= {FIELD_PARENT, FIELD_DIST}
        return frozenset(fields)

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        q_bits = bits_for_value(self.hash.big_q)
        p2_bits = bits_for_value(self.aut_family.p)
        node_bits = self.hash.node_seed_bits
        echo_widths = (node_bits, node_bits, node_bits,
                       self.hash.root_seed_bits - 3 * node_bits,
                       self.aut_family.seed_bits)
        total = 0
        if round_idx == ROUND_M1:
            total += field_cost(message, FIELD_PARENT, self.id_bits)
            total += field_cost(message, FIELD_DIST, self.id_bits)
        for item in sequence_field(message, FIELD_ECHO):
            # (s, a, b, y, s2): charged only when well-formed.
            if (isinstance(item, tuple) and len(item) == len(echo_widths)
                    and all(uint_fits(part, width)
                            for part, width in zip(item, echo_widths))):
                total += (self.hash.root_seed_bits
                          + self.aut_family.seed_bits)
        for claim in sequence_field(message, FIELD_CLAIMS):
            if claim is None:
                total += 1
            elif (isinstance(claim, tuple) and len(claim) == 3
                    and uint_fits(claim[0], 1)
                    and all(uint_tuple_fits(table, self.n, self.id_bits)
                            for table in claim[1:])):
                total += 2 + 2 * self.n * self.id_bits  # σ and α tables
        for partial in sequence_field(message, FIELD_PARTIALS):
            if uint_fits(partial, q_bits):
                total += q_bits
        for field in (FIELD_AUT_LEFT, FIELD_AUT_RIGHT):
            for value in sequence_field(message, field):
                if uint_fits(value, p2_bits):
                    total += p2_bits
        return total

    # -- decision ----------------------------------------------------------

    def decide(self, view: LocalView) -> bool:
        if not tree_check(view, ROUND_M1, GNI_ROOT):
            return False
        verified = 0
        for a_round, m_round in ((ROUND_A0, ROUND_M1), (ROUND_A2, ROUND_M3)):
            count = self._check_batch(view, a_round, m_round)
            if count is None:
                return False
            verified += count
        if view.node == GNI_ROOT and verified < self.threshold:
            return False
        return True

    def _children(self, view: LocalView) -> List[int]:
        result = []
        for u in view.neighbors:
            if u == GNI_ROOT:
                continue
            if view.message_of(ROUND_M1, u).get(FIELD_PARENT) == view.node:
                result.append(u)
        return result

    def _aggregate_ok(self, view: LocalView, m_round: int, field: str,
                      rep: int, own_term: int, modulus: int,
                      children: List[int]) -> Optional[int]:
        """Check one indexed aggregate; returns the node's value or None."""
        own_value = view.own_message(m_round)[field][rep]
        if not isinstance(own_value, int) or not 0 <= own_value < modulus:
            return None
        total = own_term % modulus
        for u in children:
            child = view.message_of(m_round, u)[field][rep]
            if not isinstance(child, int) or not 0 <= child < modulus:
                return None
            total = (total + child) % modulus
        return own_value if own_value == total else None

    def _check_batch(self, view: LocalView, a_round: int,
                     m_round: int) -> Optional[int]:
        reps = self.batch_sizes[self._batch(a_round)]
        msg = view.own_message(m_round)
        echo = msg[FIELD_ECHO]
        claims = msg[FIELD_CLAIMS]
        for field in (FIELD_PARTIALS, FIELD_AUT_LEFT, FIELD_AUT_RIGHT):
            if not isinstance(msg[field], tuple) or len(msg[field]) != reps:
                return None
        if not (isinstance(echo, tuple) and isinstance(claims, tuple)):
            return None
        if not len(echo) == len(claims) == reps:
            return None

        own_random = view.own_randomness(a_round)
        if view.node == GNI_ROOT:
            for j in range(reps):
                if tuple(echo[j]) != tuple(own_random[j][1:]):
                    return None

        n = view.n
        big_q = self.hash.big_q
        p2 = self.aut_family.p
        children = self._children(view)
        claimed = 0
        for j in range(reps):
            claim = claims[j]
            if claim is None:
                continue
            graph_bit, sigma, alpha = claim
            if graph_bit not in (0, 1):
                return None
            for table in (sigma, alpha):
                if (not isinstance(table, tuple)
                        or sorted(table) != list(range(n))):
                    return None
            s, a, b, y, s2 = echo[j]
            if not (0 <= s < big_q and 0 <= a < big_q and 0 <= b < big_q
                    and 0 <= y < self.q and 0 <= s2 < p2):
                return None

            if graph_bit == 0:
                row_bits = closed_row_bits(view)
            else:
                row_bits = view.node_input
                if not isinstance(row_bits, int):
                    return None

            c = own_random[j][0]
            # (i) ε-API aggregate over the (matrix, α) encoding: the
            # root's own term also covers the broadcast α block.
            image_row = image_bits(row_bits, sigma, n)
            own_term = self.hash.row_term(s, c, n, sigma[view.node],
                                          image_row)
            if view.node == GNI_ROOT:
                block = _alpha_block(alpha, n, self.id_bits)
                own_term = (own_term
                            + self.hash.inner.hash_bits(s, block)) % big_q
            value = self._aggregate_ok(view, m_round, FIELD_PARTIALS, j,
                                       own_term, big_q, children)
            if value is None:
                return None
            if view.node == GNI_ROOT \
                    and self.hash.finalize(a, b, value) != y:
                return None

            # (ii) α ∈ Aut(σ(G_b)) ⟺ τ = σ⁻¹∘α∘σ ∈ Aut(G_b):
            # Protocol 2's two aggregates over the b-side rows.
            sigma_inv = _inverse(sigma)
            tau = _compose(sigma_inv, _compose(alpha, sigma))
            left_term = self.aut_family.hash_row_matrix(
                s2, n, view.node, row_bits)
            tau_row = image_bits(row_bits, tau, n)
            right_term = self.aut_family.hash_row_matrix(
                s2, n, tau[view.node], tau_row)
            left = self._aggregate_ok(view, m_round, FIELD_AUT_LEFT, j,
                                      left_term, p2, children)
            right = self._aggregate_ok(view, m_round, FIELD_AUT_RIGHT, j,
                                       right_term, p2, children)
            if left is None or right is None:
                return None
            if view.node == GNI_ROOT and left != right:
                return None
            claimed += 1
        return claimed

    # -- provers -----------------------------------------------------------

    def honest_prover(self) -> Prover:
        return GeneralGSProver(self)


class GeneralGSProver(Prover):
    """Honest-and-optimal prover for the compensated protocol: claims a
    pair exactly when one hashes to the target (bogus claims are
    deterministically caught, up to the negligible α-check collision).
    """

    def __init__(self, protocol: GeneralGNIProtocol) -> None:
        self.protocol = protocol
        self._catalog = None
        self._advice = None
        self.last_claim_flags: List[bool] = []

    def reset(self) -> None:
        self._catalog = None
        self._advice = None
        self.last_claim_flags = []

    def _g1_from_inputs(self, instance: Instance) -> Graph:
        n = instance.graph.n
        edges = []
        for v in range(n):
            row = instance.input_of(v)
            for u in range(v + 1, n):
                if (row >> u) & 1:
                    edges.append((v, u))
        return Graph(n, edges)

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Tuple]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        if round_idx not in (ROUND_M1, ROUND_M3):
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        protocol = self.protocol
        graph = instance.graph
        n = graph.n
        ctx = self.acquire_context(instance)
        if self._catalog is None:
            # 2·n! pair enumeration — memoized per instance on the
            # batch context.
            self._catalog = ctx.memo(
                "gni_general.pair_catalog",
                lambda: pair_catalog(graph, self._g1_from_inputs(instance)))
        if self._advice is None:
            self._advice = ctx.tree_advice(GNI_ROOT)

        a_round = ROUND_A0 if round_idx == ROUND_M1 else ROUND_A2
        reps = protocol.batch_sizes[protocol._batch(a_round)]
        batch_random = randomness[a_round]
        echo = tuple(tuple(batch_random[GNI_ROOT][j][1:])
                     for j in range(reps))

        claims = []
        partials_per_rep = []
        left_per_rep = []
        right_per_rep = []
        for j in range(reps):
            s, a, b, y, s2 = echo[j]
            offsets = tuple(batch_random[v][j][0] for v in range(n))
            challenge = APIChallenge(s=s, a=a, b=b, y=y, offsets=offsets)
            encoding = protocol.hash.preimage_exists(
                challenge, self._catalog.keys())
            if encoding is None:
                claims.append(None)
                partials_per_rep.append(None)
                left_per_rep.append(None)
                right_per_rep.append(None)
                self.last_claim_flags.append(False)
                continue
            graph_bit, sigma, alpha = self._catalog[encoding]
            claims.append((graph_bit, sigma, alpha))
            self.last_claim_flags.append(True)

            def row_of(v: int, _bit=graph_bit) -> int:
                if _bit == 0:
                    return graph.closed_row(v)
                return instance.input_of(v)

            def partial_term(v: int, _sigma=sigma, _alpha=alpha, _s=s,
                             _offsets=offsets, _row=row_of) -> int:
                term = protocol.hash.row_term(
                    _s, _offsets[v], n, _sigma[v],
                    image_bits(_row(v), _sigma, n))
                if v == GNI_ROOT:
                    block = _alpha_block(_alpha, n, protocol.id_bits)
                    term = (term + protocol.hash.inner.hash_bits(_s, block)) \
                        % protocol.hash.big_q
                return term

            sigma_inv = _inverse(sigma)
            tau = _compose(sigma_inv, _compose(alpha, sigma))

            def left_term(v: int, _s2=s2, _row=row_of) -> int:
                return protocol.aut_family.hash_row_matrix(
                    _s2, n, v, _row(v))

            def right_term(v: int, _s2=s2, _tau=tau, _row=row_of) -> int:
                return protocol.aut_family.hash_row_matrix(
                    _s2, n, _tau[v], image_bits(_row(v), _tau, n))

            partials_per_rep.append(honest_aggregates(
                graph, self._advice, partial_term, protocol.hash.big_q))
            left_per_rep.append(honest_aggregates(
                graph, self._advice, left_term, protocol.aut_family.p))
            right_per_rep.append(honest_aggregates(
                graph, self._advice, right_term, protocol.aut_family.p))

        response: Dict[int, NodeMessage] = {}
        for v in graph.vertices:
            msg: NodeMessage = {
                FIELD_ECHO: echo,
                FIELD_CLAIMS: tuple(claims),
                FIELD_PARTIALS: tuple(
                    None if per is None else per[v]
                    for per in partials_per_rep),
                FIELD_AUT_LEFT: tuple(
                    None if per is None else per[v]
                    for per in left_per_rep),
                FIELD_AUT_RIGHT: tuple(
                    None if per is None else per[v]
                    for per in right_per_rep),
            }
            if round_idx == ROUND_M1:
                msg[FIELD_PARENT] = self._advice[v].parent
                msg[FIELD_DIST] = self._advice[v].dist
            response[v] = msg
        return response


def pair_rate(g0: Graph, g1: Graph, protocol: GeneralGNIProtocol,
              samples: int, rng: random.Random) -> float:
    """Monte-Carlo per-repetition success rate for the compensated set."""
    catalog = pair_catalog(g0, g1)
    encodings = list(catalog.keys())
    hits = 0
    for _ in range(samples):
        challenge = protocol.hash.sample_challenge(g0.n, rng)
        if protocol.hash.preimage_exists(challenge, encodings) is not None:
            hits += 1
    return hits / samples


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: Same GS skeleton as ``gni-damam-8`` plus the automorphism-count
#: compensation fields (two more Θ(n log n) aggregates per batch) —
#: the asymptotic phase bill is unchanged.
COST_DECLARATIONS = (
    CostDeclaration(
        key="gni-general-8",
        title="GNI without asymmetry promise (8 repetitions)",
        pattern="AMAM", asymptotic="O(n log n)",
        reference="Section 4 (automorphism-compensated variant)",
        phases=(
            phase("A0", "arthur", "c * n * log2(n)",
                  "batch-1 eps-API seeds"),
            phase("M1", "merlin", "c * n * log2(n)",
                  "batch-1 echo, claims, aggregates + automorphism "
                  "counts"),
            phase("A2", "arthur", "c * n * log2(n)",
                  "batch-2 eps-API seeds"),
            phase("M3", "merlin", "c * n * log2(n)",
                  "batch-2 echo, claims, aggregates + automorphism "
                  "counts"),
        ),
        total=phase("total", "merlin", "c * n * log2(n)",
                    "O(n log n) bits per node for constant "
                    "repetitions"),
    ),
)
