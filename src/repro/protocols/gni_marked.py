"""The paper's *alternative* GNI definition: marked induced subgraphs.

Section 2.3, after Definition 4: "we have only one graph, the network
graph G.  Each node in the graph is marked with an input from
{0, 1, ⊥}, and the goal is to determine whether the subgraph induced
by the nodes marked 0 is not isomorphic to the subgraph induced by the
nodes marked 1."  The nodes communicate over all of G (this is what
makes the variant weaker than Definition 4, which forbids using G₁'s
edges).

This protocol decides that language and, unlike our base GNI protocol,
makes *essential* use of all four dAMAM rounds:

* **A₀** — the Goldwasser–Sipser challenges (ε-API seed parts,
  targets), exactly as in the base protocol.
* **M₁** — the prover reveals the structure the nodes cannot see
  locally: each node's claimed mark (self-verified: a node rejects if
  its own mark is misstated, so neighbors may trust what they read),
  spanning-tree advice, per-mark *subtree counts* (forced bottom-up,
  giving the root the true sizes k₀, k₁), and per repetition a claim
  ``(b, labeling)``: a bijection π from the marked-b vertices onto
  ``{0..k-1}``, unicast as each node's own label.  ``σ(H_b)`` is then
  determined: node v's row of the relabeled induced subgraph is
  ``{π_u : u ∈ N(v), mark_u = b}`` (+ self-loop), all locally
  computable from *neighbors'* labels and verified marks.
* **A₂** — a fresh distinctness challenge ``z``: π was committed in
  M₁, so a random-evaluation identity test is now sound.
* **M₂** — per claimed repetition, two tree aggregates: the ε-API
  partials of the relabeled matrix, and ``Σ_{marked b} z^{π_v}``,
  which the root compares against ``Σ_{i<k} z^i`` — equal iff the
  multiset of labels is exactly ``{0..k-1}``, i.e. π is a genuine
  bijection (error ≤ n/P for the prime P of the test).

Decision at the root: if the verified counts differ (k₀ ≠ k₁) the
subgraphs are trivially non-isomorphic — accept.  Otherwise count the
surviving GS claims against the usual threshold.

Size promise: the GS output range must be calibrated to ``|S| = 2·k!``,
so the protocol is parameterized by the *declared* common size ``k``
(instances whose equal mark-counts differ from ``k`` are outside the
promise; unequal counts are always handled correctly).  As in the
paper's Section 4 we restrict to asymmetric induced subgraphs; the
compensation of :mod:`repro.protocols.gni_general` composes the same
way if needed.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.amplify import choose_threshold, threshold_guarantees
from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DAMAM,
                          bits_for_identifier, bits_for_value, field_cost,
                          sequence_field, uint_fits)
from ..graphs.graph import Graph
from ..hashing.api import APIChallenge, DistributedAPIHash, gs_output_modulus
from ..hashing.primes import prime_in_range
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, tree_check)
from ._tree_hash import honest_aggregates
from .gni import GNIGuarantees

MARK_ZERO = 0
MARK_ONE = 1
MARK_NONE = 2

FIELD_MARK = "mark"
FIELD_COUNT0 = "count0"
FIELD_COUNT1 = "count1"
FIELD_CLAIMS = "claims"
FIELD_LABELS = "labels"
FIELD_ECHO = "echo"
FIELD_ZECHO = "zecho"
FIELD_PARTIALS = "partials"
FIELD_ZSUMS = "zsums"

ROUND_A0 = 0
ROUND_M1 = 1
ROUND_A2 = 2
ROUND_M3 = 3

ROOT = 0


def marked_instance(graph: Graph, marks: Mapping[int, int]) -> Instance:
    """Build a marked-GNI instance; every vertex needs a mark in
    {MARK_ZERO, MARK_ONE, MARK_NONE}."""
    for v in graph.vertices:
        if marks.get(v) not in (MARK_ZERO, MARK_ONE, MARK_NONE):
            raise ValueError(f"vertex {v} needs a mark in {{0, 1, ⊥}}")
    return Instance(graph=graph, inputs=dict(marks))


def marked_subgraph(graph: Graph, marks: Mapping[int, int],
                    mark: int) -> Tuple[Graph, List[int]]:
    """The induced subgraph on ``mark``-marked vertices, plus the
    vertex list mapping subgraph index → original vertex."""
    vertices = [v for v in graph.vertices if marks[v] == mark]
    return graph.induced_subgraph(vertices), vertices


def relabeled_encoding(sub: Graph, labeling: Sequence[int],
                       stride: int) -> int:
    """The n-stride closed adjacency encoding of ``sub`` relabeled by
    ``labeling`` (bit ``π_v·stride + π_u``)."""
    bits = 0
    for v in range(sub.n):
        row = 0
        mask = sub.closed_row(v)
        for u in range(sub.n):
            if (mask >> u) & 1:
                row |= 1 << labeling[u]
        bits |= row << (labeling[v] * stride)
    return bits


class MarkedGNIProtocol(Protocol):
    """dAMAM protocol for marked-subgraph non-isomorphism.

    ``n`` is the network size; ``k`` the declared common size of the
    two marked sets (the size promise — see module docstring).
    """

    name = "gni-marked-damam"
    pattern = PATTERN_DAMAM

    def __init__(self, n: int, k: int, repetitions: int = 60,
                 q: Optional[int] = None, big_q: Optional[int] = None,
                 z_prime: Optional[int] = None,
                 threshold: Optional[int] = None) -> None:
        if n < 2:
            raise ValueError("need at least 2 network nodes")
        if not 0 <= k <= n:
            raise ValueError("declared size must fit the network")
        self.n = n
        self.k = k
        self.set_size_yes = 2 * math.factorial(k)
        self.q = q if q is not None else gs_output_modulus(self.set_size_yes)
        # Encodings use stride n, so the hash domain is n² bits.
        self.hash = DistributedAPIHash(m=n * n, q=self.q, big_q=big_q)
        # The label-distinctness test: degree < n polynomial identity,
        # generous prime so the per-repetition slack is ~1e-6.
        self.z_prime = z_prime if z_prime is not None \
            else prime_in_range(10 * n ** 6, 100 * n ** 6)
        self.batch_sizes = (repetitions - repetitions // 2,
                            repetitions // 2)
        p_yes, p_no = self.repetition_bounds()
        self.threshold = (threshold if threshold is not None
                          else choose_threshold(repetitions, p_yes, p_no))

    # -- analysis ----------------------------------------------------------

    @property
    def repetitions(self) -> int:
        return sum(self.batch_sizes)

    @property
    def z_test_slack(self) -> float:
        """Per-repetition probability of a bogus labeling surviving."""
        return self.n / self.z_prime

    def repetition_bounds(self) -> Tuple[float, float]:
        eps, delta = self.hash.epsilon, self.hash.delta
        s_yes = self.set_size_yes
        s_no = s_yes // 2
        p_yes = (s_yes * (1 - delta) / self.q
                 - (1 + eps) * s_yes * s_yes / (2 * self.q * self.q))
        p_no = s_no * (1 + delta) / self.q + self.z_test_slack
        return p_yes, p_no

    def guarantees(self) -> GNIGuarantees:
        p_yes, p_no = self.repetition_bounds()
        completeness, soundness = threshold_guarantees(
            self.repetitions, self.threshold, p_yes, p_no)
        return GNIGuarantees(
            p_yes_lower=p_yes, p_no_upper=p_no,
            repetitions=self.repetitions, threshold=self.threshold,
            completeness=completeness, soundness_error=soundness)

    # -- model -------------------------------------------------------------

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")
        if instance.inputs is None:
            raise ValueError("marked GNI instances carry marks as inputs")
        for v in instance.graph.vertices:
            if instance.input_of(v) not in (MARK_ZERO, MARK_ONE, MARK_NONE):
                raise ValueError(f"vertex {v} has an invalid mark")

    def _batch(self, a_round: int) -> int:
        return 0 if a_round == ROUND_A0 else 1

    # -- Arthur ----------------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random):
        reps = self.batch_sizes[self._batch(round_idx)]
        if round_idx == ROUND_A0:
            # GS challenges for both batches are drawn here; the z
            # challenges come later (they must postdate the labelings).
            total = self.repetitions
            return tuple(
                (self.hash.sample_node_offset(rng),)
                + self.hash.sample_root_part(rng)
                for _ in range(total))
        # A2: one distinctness evaluation point per repetition.
        return tuple(rng.randrange(self.z_prime)
                     for _ in range(self.repetitions))

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        if round_idx == ROUND_A0:
            return self.repetitions * (self.hash.node_seed_bits
                                       + self.hash.root_seed_bits)
        return self.repetitions * bits_for_value(self.z_prime)

    # -- Merlin ----------------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        if round_idx == ROUND_M1:
            return frozenset({FIELD_ECHO, FIELD_CLAIMS})
        return frozenset({FIELD_ZECHO})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        if round_idx == ROUND_M1:
            return frozenset({FIELD_MARK, FIELD_PARENT, FIELD_DIST,
                              FIELD_COUNT0, FIELD_COUNT1, FIELD_ECHO,
                              FIELD_CLAIMS, FIELD_LABELS})
        return frozenset({FIELD_ZECHO, FIELD_PARTIALS, FIELD_ZSUMS})

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        id_bits = bits_for_identifier(self.n)
        count_bits = bits_for_identifier(self.n + 1)
        total = 0
        if round_idx == ROUND_M1:
            node_bits = self.hash.node_seed_bits
            echo_widths = (node_bits, node_bits, node_bits,
                           self.hash.root_seed_bits - 3 * node_bits)
            total += field_cost(message, FIELD_MARK, 2)
            total += field_cost(message, FIELD_PARENT, id_bits)
            total += field_cost(message, FIELD_DIST, id_bits)
            total += field_cost(message, FIELD_COUNT0, count_bits)
            total += field_cost(message, FIELD_COUNT1, count_bits)
            for item in sequence_field(message, FIELD_ECHO):
                # (s, a, b, y): charged only when well-formed.
                if (isinstance(item, tuple)
                        and len(item) == len(echo_widths)
                        and all(uint_fits(part, width)
                                for part, width in zip(item, echo_widths))):
                    total += self.hash.root_seed_bits
            for claim in sequence_field(message, FIELD_CLAIMS):
                if claim is None:
                    total += 1
                elif (isinstance(claim, tuple) and len(claim) == 1
                        and uint_fits(claim[0], 1)):
                    total += 2  # pass bit + the graph bit
            for label in sequence_field(message, FIELD_LABELS):
                if uint_fits(label, id_bits):
                    total += id_bits
        else:
            q_bits = bits_for_value(self.hash.big_q)
            z_bits = bits_for_value(self.z_prime)
            for zvalue in sequence_field(message, FIELD_ZECHO):
                if uint_fits(zvalue, z_bits):
                    total += z_bits
            for partial in sequence_field(message, FIELD_PARTIALS):
                if uint_fits(partial, q_bits):
                    total += q_bits
            for zsum in sequence_field(message, FIELD_ZSUMS):
                if uint_fits(zsum, z_bits):
                    total += z_bits
        return total

    # -- decision ----------------------------------------------------------

    def decide(self, view: LocalView) -> bool:
        m1 = view.own_message(ROUND_M1)
        # Self-verified mark: a prover that misstates any node's mark
        # loses that node immediately, so neighbors may trust marks.
        if m1[FIELD_MARK] != view.node_input:
            return False
        if not tree_check(view, ROUND_M1, ROOT):
            return False

        children = self._children(view)
        counts = self._check_counts(view, children)
        if counts is None:
            return False

        verified = self._check_claims(view, children)
        if verified is None:
            return False

        if view.node == ROOT:
            k0, k1 = counts
            if k0 != k1:
                return True   # unequal sizes: trivially non-isomorphic
            if k0 != self.k:
                return False  # outside the size promise: reject
            if verified < self.threshold:
                return False
        return True

    def _children(self, view: LocalView) -> List[int]:
        result = []
        for u in view.neighbors:
            if u == ROOT:
                continue
            if view.message_of(ROUND_M1, u).get(FIELD_PARENT) == view.node:
                result.append(u)
        return result

    def _check_counts(self, view: LocalView,
                      children: List[int]) -> Optional[Tuple[int, int]]:
        """Verify the per-mark subtree counts; returns the root's pair."""
        m1 = view.own_message(ROUND_M1)
        totals = []
        for mark, field in ((MARK_ZERO, FIELD_COUNT0),
                            (MARK_ONE, FIELD_COUNT1)):
            own = m1[field]
            if not isinstance(own, int) or not 0 <= own <= view.n:
                return None
            expected = 1 if view.node_input == mark else 0
            for u in children:
                child = view.message_of(ROUND_M1, u)[field]
                if not isinstance(child, int) or not 0 <= child <= view.n:
                    return None
                expected += child
            if own != expected:
                return None
            totals.append(own)
        return (totals[0], totals[1])

    def _check_claims(self, view: LocalView,
                      children: List[int]) -> Optional[int]:
        m1 = view.own_message(ROUND_M1)
        m3 = view.own_message(ROUND_M3)
        reps = self.repetitions
        echo = m1[FIELD_ECHO]
        claims = m1[FIELD_CLAIMS]
        labels = m1[FIELD_LABELS]
        zecho = m3[FIELD_ZECHO]
        partials = m3[FIELD_PARTIALS]
        zsums = m3[FIELD_ZSUMS]
        for seq in (echo, claims, labels, zecho, partials, zsums):
            if not isinstance(seq, tuple) or len(seq) != reps:
                return None

        own_random0 = view.own_randomness(ROUND_A0)
        own_random2 = view.own_randomness(ROUND_A2)
        if view.node == ROOT:
            for j in range(reps):
                if tuple(echo[j]) != tuple(own_random0[j][1:]):
                    return None
                if zecho[j] != own_random2[j]:
                    return None

        n = view.n
        big_q = self.hash.big_q
        p_z = self.z_prime
        verified = 0
        for j in range(reps):
            claim = claims[j]
            if claim is None:
                continue
            (graph_bit,) = claim
            if graph_bit not in (0, 1):
                return None
            s, a, b, y = echo[j]
            z = zecho[j]
            if not (0 <= s < big_q and 0 <= a < big_q and 0 <= b < big_q
                    and 0 <= y < self.q and 0 <= z < p_z):
                return None

            in_side = view.node_input == graph_bit
            own_label = labels[j]
            if in_side:
                if not isinstance(own_label, int) \
                        or not 0 <= own_label < n:
                    return None
            elif own_label is not None:
                return None

            # Own ε-API term: the relabeled row if we are in the
            # subgraph, else just our seed offset.
            c = own_random0[j][0]
            if in_side:
                row = 1 << own_label
                for u in view.neighbors:
                    u_m1 = view.message_of(ROUND_M1, u)
                    if u_m1.get(FIELD_MARK) == graph_bit:
                        u_label = u_m1[FIELD_LABELS][j]
                        if not isinstance(u_label, int) \
                                or not 0 <= u_label < n:
                            return None
                        row |= 1 << u_label
                own_term = self.hash.row_term(s, c, n, own_label, row)
            else:
                own_term = c % big_q

            own_partial = partials[j]
            if not isinstance(own_partial, int) \
                    or not 0 <= own_partial < big_q:
                return None
            total = own_term
            for u in children:
                child = view.message_of(ROUND_M3, u)[FIELD_PARTIALS][j]
                if not isinstance(child, int) or not 0 <= child < big_q:
                    return None
                total = (total + child) % big_q
            if own_partial != total:
                return None

            # Distinctness aggregate: Σ z^{π_v} over marked-b vertices.
            own_zsum = zsums[j]
            if not isinstance(own_zsum, int) or not 0 <= own_zsum < p_z:
                return None
            z_total = pow(z, own_label, p_z) if in_side else 0
            for u in children:
                child = view.message_of(ROUND_M3, u)[FIELD_ZSUMS][j]
                if not isinstance(child, int) or not 0 <= child < p_z:
                    return None
                z_total = (z_total + child) % p_z
            if own_zsum != z_total:
                return None

            if view.node == ROOT:
                if self.hash.finalize(a, b, own_partial) != y:
                    return None
                target = sum(pow(z, i, p_z)
                             for i in range(self.k)) % p_z
                if own_zsum != target:
                    return None
            verified += 1
        return verified

    # -- provers -----------------------------------------------------------

    def honest_prover(self) -> Prover:
        return MarkedGSProver(self)


class MarkedGSProver(Prover):
    """Honest-and-optimal prover for the marked protocol."""

    def __init__(self, protocol: MarkedGNIProtocol) -> None:
        self.protocol = protocol
        self._state = None
        self.last_claim_flags: List[bool] = []

    def reset(self) -> None:
        self._state = None
        self.last_claim_flags = []

    def _prepare(self, instance: Instance,
                 randomness: Mapping[int, Mapping[int, tuple]]) -> None:
        """Everything M₁ needs, plus the per-repetition witnesses."""
        protocol = self.protocol
        graph = instance.graph
        n = graph.n
        ctx = self.acquire_context(instance)
        marks = {v: instance.input_of(v) for v in graph.vertices}
        advice = ctx.tree_advice(ROOT)

        sub0, verts0 = marked_subgraph(graph, marks, MARK_ZERO)
        sub1, verts1 = marked_subgraph(graph, marks, MARK_ONE)
        sides = ((sub0, verts0), (sub1, verts1))

        reps = protocol.repetitions
        batch0 = randomness[ROUND_A0]
        echo = tuple(tuple(batch0[ROOT][j][1:]) for j in range(reps))

        claims: List[Optional[Tuple[int]]] = [None] * reps
        labelings: List[Optional[Dict[int, int]]] = [None] * reps
        if sub0.n == sub1.n and sub0.n == protocol.k:
            k = protocol.k

            def build_catalog() -> Dict[int, Tuple[int, Tuple[int, ...]]]:
                # The witness catalog (encoding -> (b, labeling)): a
                # 2·k! enumeration, memoized per instance on the batch
                # context (the key carries k — a protocol parameter).
                result: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
                for b, (sub, _verts) in enumerate(sides):
                    for labeling in itertools.permutations(range(k)):
                        encoding = relabeled_encoding(sub, labeling, n)
                        result.setdefault(encoding, (b, labeling))
                return result

            catalog = ctx.memo(("gni_marked.catalog", k), build_catalog)
            for j in range(reps):
                s, a, b_aff, y = echo[j]
                offsets = tuple(batch0[v][j][0] for v in range(n))
                challenge = APIChallenge(s=s, a=a, b=b_aff, y=y,
                                         offsets=offsets)
                encoding = protocol.hash.preimage_exists(
                    challenge, catalog.keys())
                if encoding is None:
                    self.last_claim_flags.append(False)
                    continue
                graph_bit, labeling = catalog[encoding]
                claims[j] = (graph_bit,)
                _sub, verts = sides[graph_bit]
                labelings[j] = {verts[i]: labeling[i]
                                for i in range(len(verts))}
                self.last_claim_flags.append(True)
        else:
            self.last_claim_flags = [False] * reps

        def build_counts() -> Dict[int, Tuple[int, int]]:
            acc = {v: [1 if marks[v] == MARK_ZERO else 0,
                       1 if marks[v] == MARK_ONE else 0]
                   for v in graph.vertices}
            order = sorted(graph.vertices, key=lambda v: advice[v].dist,
                           reverse=True)
            for v in order:
                parent = advice[v].parent
                if parent != v:
                    acc[parent][0] += acc[v][0]
                    acc[parent][1] += acc[v][1]
            return {v: (c[0], c[1]) for v, c in acc.items()}

        counts = ctx.memo("gni_marked.counts", build_counts)

        self._state = {
            "marks": marks, "advice": advice, "echo": echo,
            "claims": claims, "labelings": labelings, "counts": counts,
        }

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, tuple]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        protocol = self.protocol
        graph = instance.graph
        n = graph.n
        if round_idx == ROUND_M1:
            self._prepare(instance, randomness)
            state = self._state
            reps = protocol.repetitions
            response = {}
            for v in graph.vertices:
                labels = tuple(
                    state["labelings"][j][v]
                    if (state["labelings"][j] is not None
                        and v in state["labelings"][j]) else None
                    for j in range(reps))
                response[v] = {
                    FIELD_MARK: state["marks"][v],
                    FIELD_PARENT: state["advice"][v].parent,
                    FIELD_DIST: state["advice"][v].dist,
                    FIELD_COUNT0: state["counts"][v][0],
                    FIELD_COUNT1: state["counts"][v][1],
                    FIELD_ECHO: state["echo"],
                    FIELD_CLAIMS: tuple(state["claims"]),
                    FIELD_LABELS: labels,
                }
            return response

        if round_idx != ROUND_M3:
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        state = self._state
        assert state is not None
        reps = protocol.repetitions
        batch0 = randomness[ROUND_A0]
        z_values = randomness[ROUND_A2][ROOT]

        partials_per_rep: List[Optional[Dict[int, int]]] = []
        zsums_per_rep: List[Optional[Dict[int, int]]] = []
        for j in range(reps):
            claim = state["claims"][j]
            if claim is None:
                partials_per_rep.append(None)
                zsums_per_rep.append(None)
                continue
            (graph_bit,) = claim
            labeling = state["labelings"][j]
            s = state["echo"][j][0]
            z = z_values[j]
            marks = state["marks"]

            def term(v: int, _s=s, _bit=graph_bit, _labeling=labeling,
                     _marks=marks) -> int:
                c = batch0[v][j][0]
                if _marks[v] != _bit:
                    return c % protocol.hash.big_q
                row = 1 << _labeling[v]
                for u in graph.neighbors(v):
                    if _marks[u] == _bit:
                        row |= 1 << _labeling[u]
                return protocol.hash.row_term(_s, c, n, _labeling[v], row)

            def zterm(v: int, _z=z, _bit=graph_bit, _labeling=labeling,
                      _marks=marks) -> int:
                if _marks[v] != _bit:
                    return 0
                return pow(_z, _labeling[v], protocol.z_prime)

            partials_per_rep.append(honest_aggregates(
                graph, state["advice"], term, protocol.hash.big_q))
            zsums_per_rep.append(honest_aggregates(
                graph, state["advice"], zterm, protocol.z_prime))

        response = {}
        for v in graph.vertices:
            response[v] = {
                FIELD_ZECHO: tuple(z_values),
                FIELD_PARTIALS: tuple(
                    None if per is None else per[v]
                    for per in partials_per_rep),
                FIELD_ZSUMS: tuple(
                    None if per is None else per[v]
                    for per in zsums_per_rep),
            }
        return response


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: The marked-graph variant adds per-node mark/count fields
#: (identifier-width) to the GS skeleton; every phase stays
#: Θ(n log n) for constant repetitions.
COST_DECLARATIONS = (
    CostDeclaration(
        key="gni-marked-8",
        title="GNI on marked graphs (8 repetitions)",
        pattern="AMAM", asymptotic="O(n log n)",
        reference="Section 4 (marked-graph reduction)",
        phases=(
            phase("A0", "arthur", "c * n * log2(n)",
                  "batch-1 eps-API seeds"),
            phase("M1", "merlin", "c * n * log2(n)",
                  "batch-1 echo, marks/counts, claims + aggregates"),
            phase("A2", "arthur", "c * n * log2(n)",
                  "batch-2 eps-API seeds"),
            phase("M3", "merlin", "c * n * log2(n)",
                  "batch-2 echo, claims + aggregates"),
        ),
        total=phase("total", "merlin", "c * n * log2(n)",
                    "O(n log n) bits per node for constant "
                    "repetitions"),
    ),
)
