"""The distributed Goldwasser–Sipser protocol for Graph Non-Isomorphism.

Theorem 1.5 / Section 4 of the paper: ``GNI ∈ dAMAM[O(n log n)]``.

Setting (Definition 4): the network graph is ``G₀``; each node ``v``
additionally receives its closed neighborhood in a second graph ``G₁``
on the same vertex set.  The prover claims ``G₀ ≇ G₁``.  As in the
paper's Section 4 we restrict attention to *asymmetric* ``G₀, G₁``
(the automorphism-compensated variant is discussed in DESIGN.md).

The classical GS insight: let ``S = {σ(G_b) : σ ∈ S_n, b ∈ {0,1}}``.
For asymmetric graphs, ``|S| = 2·n!`` if ``G₀ ≇ G₁`` and ``|S| = n!``
otherwise.  Arthur sends a random hash ``h : {0,1}^{n²} → [q]``
(``q`` a prime just above ``4·n!``) and target ``y``; Merlin exhibits
``x ∈ S`` with ``h(x) = y``, which it can do with probability ≈ 3/8 on
YES instances but only ≤ ~1/4 on NO instances.

Distributed instantiation (per repetition):

* **A rounds** — every node sends its private ε-API seed part ``c_v``;
  the root (fixed to vertex 0 — GNI has no root constraint, so no
  prover choice is needed) also supplies the shared parts
  ``(s, a, b)`` and the target ``y``.  All of it goes to the prover:
  the protocol is public-coin, which is exactly the regime
  Goldwasser–Sipser was designed for.
* **M rounds** — the prover broadcasts an echo of the root's parts
  (the root verifies the echo, the broadcast check spreads it), and
  per repetition either "pass" or a witness ``(b, σ)`` with σ a full
  permutation table; it unicasts spanning-tree advice and, for each
  claimed repetition, the subtree aggregates of
  ``H_s(σ(G_b)) + Σ c_v``, which each node checks against its own
  recomputable term — so by Lemma 3.3 the root's value is forced, and
  a claimed repetition survives only if genuinely ``h(σ(G_b)) = y``.
  The root counts surviving claims against a threshold.

The threshold amplification is performed *inside* the protocol by the
root over globally-verified successes; see ``repro.core.amplify`` for
why naive per-node majority voting across executions would be unsound.

Round pattern: the paper specifies dAMAM.  Our ε-API construction is
verifiable in a single Merlin round, so one Arthur–Merlin exchange
would already suffice; to exercise (and honestly use) the paper's
four-round pattern we split the repetitions into two sequential
batches — challenges for batch 2 are drawn *after* the prover answers
batch 1, which only helps soundness (the analysis treats batches
independently).

Per-node cost: Θ(n log n) bits per repetition —
seeds and aggregates live in fields of ~log(n!) bits and σ tables are
n identifiers — with a constant number of repetitions.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core.amplify import choose_threshold, threshold_guarantees
from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, PATTERN_DAMAM,
                          bits_for_identifier, bits_for_value, field_cost,
                          sequence_field, uint_fits, uint_tuple_fits)
from ..graphs.graph import Graph
from ..hashing.api import APIChallenge, DistributedAPIHash, gs_output_modulus
from ..hashing.rowmatrix import image_bits
from ..network.spanning_tree import (FIELD_DIST, FIELD_PARENT, tree_check)
from ._tree_hash import closed_row_bits, honest_aggregates

FIELD_ECHO = "echo"
FIELD_CLAIMS = "claims"
FIELD_PARTIALS = "partials"

ROUND_A0 = 0
ROUND_M1 = 1
ROUND_A2 = 2
ROUND_M3 = 3

#: The spanning tree root is fixed publicly; the prover picks nothing.
GNI_ROOT = 0


def gni_instance(g0: Graph, g1: Graph) -> Instance:
    """Build a GNI instance: network ``G₀``, node inputs = ``G₁`` rows."""
    if g0.n != g1.n:
        raise ValueError("both graphs must share the vertex set")
    return Instance(graph=g0, inputs={v: g1.closed_row(v)
                                      for v in g1.vertices})


def isomorphism_closure_encodings(g0: Graph,
                                  g1: Graph) -> Dict[int, Tuple[int, Tuple[int, ...]]]:
    """The GS set ``S`` with witnesses: encoding ↦ (b, σ).

    Enumerates all ``2·n!`` pairs; identical encodings (which occur
    exactly when the graphs are isomorphic, given asymmetry) keep the
    first witness found.
    """
    n = g0.n
    catalog: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    for sigma in itertools.permutations(range(n)):
        for b, graph in ((0, g0), (1, g1)):
            bits = 0
            for v in range(n):
                row = image_bits(graph.closed_row(v), sigma, n)
                bits |= row << (sigma[v] * n)
            catalog.setdefault(bits, (b, sigma))
    return catalog


@dataclass(frozen=True)
class GNIGuarantees:
    """Analytic per-repetition bounds and the amplified guarantee."""

    p_yes_lower: float
    p_no_upper: float
    repetitions: int
    threshold: int
    completeness: float
    soundness_error: float


class GNIGoldwasserSipserProtocol(Protocol):
    """The dAMAM GNI protocol on ``n`` vertices.

    ``repetitions`` is the total GS repetition count, split across the
    two Arthur–Merlin batches.  The default threshold is the exact-
    binomial optimum for the analytic per-repetition bounds.
    """

    name = "gni-damam"
    pattern = PATTERN_DAMAM

    def __init__(self, n: int, repetitions: int = 60,
                 q: Optional[int] = None, big_q: Optional[int] = None,
                 threshold: Optional[int] = None) -> None:
        if n < 2:
            raise ValueError("GNI needs at least 2 vertices")
        if repetitions < 2:
            raise ValueError("need at least one repetition per batch")
        self.n = n
        self.set_size_yes = 2 * math.factorial(n)
        self.q = q if q is not None else gs_output_modulus(self.set_size_yes)
        self.hash = DistributedAPIHash(m=n * n, q=self.q, big_q=big_q)
        self.batch_sizes = self._split_batches(repetitions)
        p_yes, p_no = self.repetition_bounds()
        self.threshold = (threshold if threshold is not None
                          else choose_threshold(repetitions, p_yes, p_no))

    def _split_batches(self, repetitions: int) -> Tuple[int, ...]:
        """One batch per Arthur–Merlin exchange in the pattern."""
        return (repetitions - repetitions // 2, repetitions // 2)

    def round_pairs(self) -> Tuple[Tuple[int, int], ...]:
        """The (Arthur round, Merlin round) pairs, one per batch."""
        return ((ROUND_A0, ROUND_M1), (ROUND_A2, ROUND_M3))

    # -- analysis ----------------------------------------------------------

    @property
    def repetitions(self) -> int:
        return sum(self.batch_sizes)

    def repetition_bounds(self) -> Tuple[float, float]:
        """(YES lower bound, NO upper bound) on per-repetition success.

        Inclusion–exclusion with the ε-API axioms:
        ``Pr[∃x ∈ S : h(x) = y] ≥ |S|(1−δ)/q − (1+ε)|S|²/(2q²)`` and
        ``≤ |S|(1+δ)/q``.
        """
        eps, delta = self.hash.epsilon, self.hash.delta
        s_yes = self.set_size_yes
        s_no = s_yes // 2
        p_yes = (s_yes * (1 - delta) / self.q
                 - (1 + eps) * s_yes * s_yes / (2 * self.q * self.q))
        p_no = s_no * (1 + delta) / self.q
        return p_yes, p_no

    def guarantees(self) -> GNIGuarantees:
        """The analytic completeness / soundness of this configuration."""
        p_yes, p_no = self.repetition_bounds()
        completeness, soundness = threshold_guarantees(
            self.repetitions, self.threshold, p_yes, p_no)
        return GNIGuarantees(
            p_yes_lower=p_yes, p_no_upper=p_no,
            repetitions=self.repetitions, threshold=self.threshold,
            completeness=completeness, soundness_error=soundness)

    # -- model -------------------------------------------------------------

    def validate_instance(self, instance: Instance) -> None:
        super().validate_instance(instance)
        if instance.n != self.n:
            raise ValueError(
                f"protocol built for n={self.n}, instance has n={instance.n}")
        if instance.inputs is None:
            raise ValueError("GNI instances carry G₁ rows as node inputs")
        for v in instance.graph.vertices:
            row = instance.input_of(v)
            if (not isinstance(row, int) or row >> self.n
                    or not (row >> v) & 1):
                raise ValueError(
                    f"node {v} input is not a closed G₁ adjacency row")

    def _batch(self, a_round: int) -> int:
        for index, (arthur, _merlin) in enumerate(self.round_pairs()):
            if arthur == a_round:
                return index
        raise ValueError(f"round {a_round} is not an Arthur round")

    # -- Arthur ----------------------------------------------------------

    def arthur_value(self, instance: Instance, round_idx: int, v: int,
                     rng: random.Random) -> Tuple[Tuple[int, ...], ...]:
        """Per repetition: (c_v, s, a, b, y).

        Every node samples the full tuple so challenges are identically
        distributed; the shared parts (s, a, b, y) are only *used* from
        the root's challenge, as in Protocol 1's root-randomness trick.
        """
        reps = self.batch_sizes[self._batch(round_idx)]
        values = []
        for _ in range(reps):
            c = self.hash.sample_node_offset(rng)
            s, a, b, y = self.hash.sample_root_part(rng)
            values.append((c, s, a, b, y))
        return tuple(values)

    def arthur_bits(self, instance: Instance, round_idx: int) -> int:
        reps = self.batch_sizes[self._batch(round_idx)]
        return reps * (self.hash.node_seed_bits + self.hash.root_seed_bits)

    # -- Merlin ----------------------------------------------------------

    def broadcast_fields(self, round_idx: int) -> FrozenSet[str]:
        return frozenset({FIELD_ECHO, FIELD_CLAIMS})

    def merlin_fields(self, round_idx: int) -> FrozenSet[str]:
        fields = {FIELD_ECHO, FIELD_CLAIMS, FIELD_PARTIALS}
        if round_idx == ROUND_M1:
            fields |= {FIELD_PARENT, FIELD_DIST}
        return frozenset(fields)

    def merlin_bits(self, instance: Instance, round_idx: int,
                    message: NodeMessage) -> int:
        id_bits = bits_for_identifier(self.n)
        q_bits = bits_for_value(self.hash.big_q)
        node_bits = self.hash.node_seed_bits
        echo_widths = (node_bits, node_bits, node_bits,
                       self.hash.root_seed_bits - 3 * node_bits)
        total = 0
        if round_idx == ROUND_M1:
            total += field_cost(message, FIELD_PARENT, id_bits)
            total += field_cost(message, FIELD_DIST, id_bits)
        for item in sequence_field(message, FIELD_ECHO):
            # An echo entry (s, a, b, y) is charged root_seed_bits when
            # well-formed; malformed entries cost 0 (escape lane).
            if (isinstance(item, tuple) and len(item) == len(echo_widths)
                    and all(uint_fits(part, width)
                            for part, width in zip(item, echo_widths))):
                total += self.hash.root_seed_bits
        for claim in sequence_field(message, FIELD_CLAIMS):
            if claim is None:
                total += 1  # the found/pass bit
            elif (isinstance(claim, tuple) and len(claim) == 2
                    and uint_fits(claim[0], 1)
                    and uint_tuple_fits(claim[1], self.n, id_bits)):
                total += 2 + self.n * id_bits  # pass + graph bit + σ table
        for partial in sequence_field(message, FIELD_PARTIALS):
            if uint_fits(partial, q_bits):
                total += q_bits
        return total

    # -- decision ----------------------------------------------------------

    def decide(self, view: LocalView) -> bool:
        if not tree_check(view, ROUND_M1, GNI_ROOT):
            return False
        verified_claims = 0
        for a_round, m_round in self.round_pairs():
            count = self._check_batch(view, a_round, m_round)
            if count is None:
                return False
            verified_claims += count
        if view.node == GNI_ROOT and verified_claims < self.threshold:
            return False
        return True

    def _check_batch(self, view: LocalView, a_round: int,
                     m_round: int) -> Optional[int]:
        """Verify one batch at this node; None = reject, else the number
        of claims this node could verify (final hash check root-only)."""
        reps = self.batch_sizes[self._batch(a_round)]
        msg = view.own_message(m_round)
        echo = msg[FIELD_ECHO]
        claims = msg[FIELD_CLAIMS]
        partials = msg[FIELD_PARTIALS]
        if not (isinstance(echo, tuple) and isinstance(claims, tuple)
                and isinstance(partials, tuple)):
            return None
        if not len(echo) == len(claims) == len(partials) == reps:
            return None

        own_random = view.own_randomness(a_round)
        if view.node == GNI_ROOT:
            # The root pins the shared challenge parts to its own coins.
            for j in range(reps):
                if tuple(echo[j]) != tuple(own_random[j][1:]):
                    return None

        n = view.n
        big_q = self.hash.big_q
        claimed = 0
        for j in range(reps):
            claim = claims[j]
            if claim is None:
                continue
            graph_bit, sigma = claim
            if graph_bit not in (0, 1):
                return None
            if (not isinstance(sigma, tuple)
                    or sorted(sigma) != list(range(n))):
                return None  # σ must be a genuine permutation
            s, a, b, y = echo[j]
            if not (0 <= s < big_q and 0 <= a < big_q and 0 <= b < big_q
                    and 0 <= y < self.q):
                return None

            if graph_bit == 0:
                row_bits = closed_row_bits(view)
            else:
                row_bits = view.node_input
                if not isinstance(row_bits, int):
                    return None
            image_row = image_bits(row_bits, sigma, n)
            c = own_random[j][0]
            own_term = self.hash.row_term(s, c, n, sigma[view.node],
                                          image_row)

            # Aggregation check over the (round-M1) spanning tree.
            own_value = partials[j]
            if not isinstance(own_value, int) or not 0 <= own_value < big_q:
                return None
            total = own_term
            for u in view.neighbors:
                if u == GNI_ROOT:
                    continue
                u_msg = view.message_of(ROUND_M1, u)
                if u_msg.get(FIELD_PARENT) != view.node:
                    continue
                child_partial = view.message_of(m_round, u)[FIELD_PARTIALS][j]
                if (not isinstance(child_partial, int)
                        or not 0 <= child_partial < big_q):
                    return None
                total = (total + child_partial) % big_q
            if own_value != total:
                return None

            if view.node == GNI_ROOT:
                if self.hash.finalize(a, b, own_value) != y:
                    return None  # a false claim is an immediate reject
            claimed += 1
        return claimed

    # -- provers -----------------------------------------------------------

    def honest_prover(self) -> Prover:
        return GoldwasserSipserProver(self)


class GoldwasserSipserProver(Prover):
    """The canonical GS prover — honest on YES instances and *optimal*
    on NO instances alike: per repetition it claims a witness exactly
    when one exists (all other behavior is dominated: a false claim is
    rejected by the root deterministically, and forged aggregates are
    caught by the tree checks)."""

    def __init__(self, protocol: GNIGoldwasserSipserProtocol) -> None:
        self.protocol = protocol
        self._catalog: Optional[Dict[int, Tuple[int, Tuple[int, ...]]]] = None
        self._advice = None
        #: Per-repetition success flags of the last execution (for tests).
        self.last_claim_flags: List[bool] = []

    def reset(self) -> None:
        self._catalog = None
        self._advice = None
        self.last_claim_flags = []

    def _ensure_catalog(self, instance: Instance) -> None:
        if self._catalog is not None:
            return

        def build() -> Dict[int, Tuple[int, Tuple[int, ...]]]:
            g0 = instance.graph
            n = g0.n
            edges = []
            for v in range(n):
                row = instance.input_of(v)
                for u in range(v + 1, n):
                    if (row >> u) & 1:
                        edges.append((v, u))
            g1 = Graph(n, edges)
            return isomorphism_closure_encodings(g0, g1)

        # The 2·n! enumeration is by far the dominant cost; memoized on
        # the batch context so it is built once per instance, not per
        # trial.
        self._catalog = self.acquire_context(instance).memo(
            "gni.catalog", build)

    def respond(self, instance: Instance, round_idx: int,
                randomness: Mapping[int, Mapping[int, Tuple]],
                own_messages: Mapping[int, Mapping[int, NodeMessage]],
                rng: random.Random) -> Dict[int, NodeMessage]:
        pair_lookup = {merlin: arthur
                       for arthur, merlin in self.protocol.round_pairs()}
        if round_idx not in pair_lookup:
            raise ProtocolViolation(f"unexpected Merlin round {round_idx}")
        self._ensure_catalog(instance)
        protocol = self.protocol
        graph = instance.graph
        n = graph.n
        a_round = pair_lookup[round_idx]
        reps = protocol.batch_sizes[protocol._batch(a_round)]
        batch_random = randomness[a_round]

        if self._advice is None:
            self._advice = self.acquire_context(instance).tree_advice(
                GNI_ROOT)

        echo = tuple(tuple(batch_random[GNI_ROOT][j][1:])
                     for j in range(reps))
        claims: List[Optional[Tuple[int, Tuple[int, ...]]]] = []
        per_rep_partials: List[Optional[Dict[int, int]]] = []
        assert self._catalog is not None
        for j in range(reps):
            s, a, b, y = echo[j]
            offsets = tuple(batch_random[v][j][0] for v in range(n))
            challenge = APIChallenge(s=s, a=a, b=b, y=y, offsets=offsets)
            encoding = protocol.hash.preimage_exists(
                challenge, self._catalog.keys())
            if encoding is None:
                claims.append(None)
                per_rep_partials.append(None)
                self.last_claim_flags.append(False)
                continue
            graph_bit, sigma = self._catalog[encoding]
            claims.append((graph_bit, sigma))
            self.last_claim_flags.append(True)

            def term(v: int, _sigma=sigma, _bit=graph_bit, _s=s,
                     _offsets=offsets) -> int:
                if _bit == 0:
                    row = graph.closed_row(v)
                else:
                    row = instance.input_of(v)
                image_row = image_bits(row, _sigma, n)
                return protocol.hash.row_term(_s, _offsets[v], n,
                                              _sigma[v], image_row)

            per_rep_partials.append(honest_aggregates(
                graph, self._advice, term, protocol.hash.big_q))

        response: Dict[int, NodeMessage] = {}
        for v in graph.vertices:
            partials = tuple(
                None if per_rep is None else per_rep[v]
                for per_rep in per_rep_partials)
            msg: NodeMessage = {
                FIELD_ECHO: echo,
                FIELD_CLAIMS: tuple(claims),
                FIELD_PARTIALS: partials,
            }
            if round_idx == ROUND_M1:
                msg[FIELD_PARENT] = self._advice[v].parent
                msg[FIELD_DIST] = self._advice[v].dist
            response[v] = msg
        return response


def per_repetition_success_rate(g0: Graph, g1: Graph,
                                protocol: GNIGoldwasserSipserProtocol,
                                samples: int,
                                rng: random.Random) -> float:
    """Monte-Carlo estimate of a single repetition's success probability
    (the chance a random challenge has a preimage in S).

    This is the quantity the analytic bounds of
    :meth:`GNIGoldwasserSipserProtocol.repetition_bounds` sandwich;
    the amplified acceptance probability is its exact binomial tail.
    """
    catalog = isomorphism_closure_encodings(g0, g1)
    encodings = list(catalog.keys())
    hits = 0
    for _ in range(samples):
        challenge = protocol.hash.sample_challenge(g0.n, rng)
        if protocol.hash.preimage_exists(challenge, encodings) is not None:
            hits += 1
    return hits / samples


class GNIDAMProtocol(GNIGoldwasserSipserProtocol):
    """A *two-round* (dAM) variant: GNI ∈ dAM[O(n log n)] with this
    library's ε-API hash.

    The paper states Theorem 1.5 for dAMAM because its (full-version)
    hash needs an extra Arthur–Merlin exchange to verify; our concrete
    construction is verifiable within a single Merlin response, so the
    whole protocol collapses to one Arthur round (seeds + targets) and
    one Merlin round (claims + tree + aggregates).  Everything else —
    challenges, analysis, threshold — is inherited unchanged; this
    class just declares a single batch.  The result is strictly
    stronger than the paper's statement (dAM ⊆ dAMAM), at identical
    per-repetition cost; see DESIGN.md for the discussion.
    """

    name = "gni-dam"
    pattern = "AM"

    def _split_batches(self, repetitions: int) -> Tuple[int, ...]:
        return (repetitions,)

    def round_pairs(self) -> Tuple[Tuple[int, int], ...]:
        return ((ROUND_A0, ROUND_M1),)


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: The GS repetitions hash n²-bit graph encodings into [q] with
#: q ~ 4·n!, so every seed, echo and aggregate is Θ(n log n) bits and
#: σ witness tables are n identifiers — Θ(n log n) per repetition,
#: with the constant repetition count absorbed into each phase's
#: fitted leading constant.
COST_DECLARATIONS = (
    CostDeclaration(
        key="gni-damam-8",
        title="GNI ∈ dAMAM (Goldwasser–Sipser, 8 repetitions)",
        pattern="AMAM", asymptotic="O(n log n)",
        reference="Theorem 1.5 / Section 4",
        phases=(
            phase("A0", "arthur", "c * n * log2(n)",
                  "batch-1 eps-API seeds: node offset + root part "
                  "per repetition"),
            phase("M1", "merlin", "c * n * log2(n)",
                  "batch-1 echo, spanning fields, claims (sigma "
                  "tables) + subtree aggregates"),
            phase("A2", "arthur", "c * n * log2(n)",
                  "batch-2 eps-API seeds"),
            phase("M3", "merlin", "c * n * log2(n)",
                  "batch-2 echo, claims + aggregates"),
        ),
        total=phase("total", "merlin", "c * n * log2(n)",
                    "Theorem 1.5: O(n log n) bits per node for "
                    "constant repetitions"),
    ),
)
