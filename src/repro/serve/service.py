"""The asyncio verification service: admission control, batching,
dispatch, drain.

Request lifecycle
-----------------
1. **Parse** — the raw payload goes through
   :func:`repro.serve.schema.parse_request`; any rejection is an
   immediate error response (``malformed`` / ``unsupported``), nothing
   enters the queue.
2. **Admit** — a bounded :class:`asyncio.Queue` is the only buffer in
   the service.  A full queue (or a draining service) rejects with
   ``overloaded`` *immediately* — backpressure is explicit 429-style
   rejection, never unbounded buffering.
3. **Batch** — the batcher task drains whatever is queued (up to
   ``batch_max`` jobs), groups it by the jobs' content address
   (:attr:`JobSpec.identity_key`), and dispatches one executor task
   per group.  Jobs in a group run back-to-back on one warm
   :class:`InstanceContext` from the sharded cache — coalescing shares
   *static structure*, never randomness, so results are byte-identical
   to direct :func:`run_trials` calls (gated in ``tests/serve``).
4. **Deadline** — each request carries a deadline (its ``timeout`` or
   the service default), checked when its group reaches the executor:
   expired jobs report ``timeout`` without running.  A ``run_trials``
   batch already underway is never interrupted.
5. **Drain** — :meth:`VerifyService.drain` stops admission and waits
   for the queue and all in-flight groups; :meth:`close` then fails
   anything still pending and shuts the executor down.  A service
   stopped this way leaves no orphan tasks behind (the soak tier
   asserts exactly that).

Observability: with an ambient :mod:`repro.obs` session installed the
service records one ``serve.request`` span per completed request and
``serve/*`` counters/timers.  All of them are marked non-deterministic
— admission outcomes, batch shapes and cache hits depend on arrival
timing — so serve traffic never pollutes the strict deterministic
diff gates.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..obs.live import MetricsRing, TraceRing, prometheus_text
from ..obs.session import (Collected, active, adopt_context,
                           export_collected, merge_collected)
from .cache import ShardedCache
from .jobs import ResolvedInstance, execute_job, resolve_instance
from .schema import (ERR_INTERNAL, ERR_OVERLOADED, ERR_TIMEOUT,
                     VerifyRequest, WireError, error_response,
                     ok_response, parse_request)


@dataclass(frozen=True)
class ServeConfig:
    """Operational knobs of one service instance."""

    host: str = "127.0.0.1"
    port: int = 8478
    #: admission-control bound: queued-but-undispatched requests.
    queue_limit: int = 256
    #: most jobs one batcher sweep coalesces.
    batch_max: int = 32
    #: executor threads running ``run_trials`` batches.
    pool_threads: int = 2
    #: ``workers=`` forwarded to ``run_trials`` (1 = in-thread).
    run_workers: int = 1
    #: engine for jobs that did not name one explicitly.
    default_engine: str = "python"
    #: default per-request deadline, seconds.
    timeout: float = 30.0
    #: how long :meth:`VerifyService.drain` waits before giving up.
    drain_timeout: float = 10.0
    #: resolved-instance cache geometry.
    cache_capacity: int = 256
    cache_shards: int = 8
    #: live-exposition throttle: at most one metrics-ring snapshot per
    #: this many seconds (the ``GET /v1/metrics`` backing store).
    metrics_interval: float = 0.25
    #: finished request traces retained for ``GET /v1/trace/<id>``.
    trace_capacity: int = 256

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if self.batch_max < 1:
            raise ValueError("batch_max must be positive")
        if self.pool_threads < 1:
            raise ValueError("pool_threads must be positive")
        if self.run_workers < 1:
            raise ValueError("run_workers must be positive")
        if self.timeout <= 0 or self.drain_timeout <= 0:
            raise ValueError("timeouts must be positive")
        if self.metrics_interval < 0:
            raise ValueError("metrics_interval must be >= 0")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be positive")


@dataclass
class _Pending:
    """One admitted request waiting for its result."""

    request: VerifyRequest
    future: "asyncio.Future[Dict[str, Any]]"
    enqueued: float
    deadline: float
    #: propagated trace context (None = observability off at admission)
    #: plus the ambient session's switches, so the executor thread's
    #: adopted buffer mirrors them exactly.
    ctx: Optional[Dict[str, Optional[str]]] = field(default=None)
    obs_trace: bool = field(default=False)
    obs_metrics: bool = field(default=False)
    #: filled by the executor: (response, run_seconds, collected) — the
    #: event loop attaches queue timing and resolves the future.
    outcome: Optional[Tuple[Dict[str, Any], float, Collected]] = \
        field(default=None)


class VerifyService:
    """The long-running verification service (transport-agnostic).

    Transports — HTTP (:mod:`repro.serve.http`) and ndjson
    (:mod:`repro.serve.stdio`) — call :meth:`handle` with raw payloads
    and write back whatever response object they get.  The service
    never raises on client input; every failure mode is a classified
    error response.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache = ShardedCache(capacity=self.config.cache_capacity,
                                  shards=self.config.cache_shards)
        self.queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=self.config.queue_limit)
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.pool_threads,
            thread_name_prefix="repro-serve")
        self._accepting = True
        self._batcher: Optional[asyncio.Task] = None
        self._dispatches: Set[asyncio.Task] = set()
        self._counts: Dict[str, int] = {
            "requests": 0, "ok": 0, "rejected": 0, "batches": 0,
            "batched_jobs": 0, "timeouts": 0,
        }
        #: live telemetry: bounded snapshot ring + finished traces.
        self.live = MetricsRing(interval=self.config.metrics_interval)
        self.traces = TraceRing(capacity=self.config.trace_capacity)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Start the batcher; idempotent."""
        if self._batcher is None:
            self._batcher = asyncio.create_task(self._batch_loop(),
                                                name="repro-serve-batcher")

    @property
    def accepting(self) -> bool:
        return self._accepting and self._batcher is not None \
            and not self._batcher.done()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admission and wait for all admitted work to finish.

        Returns True when the service drained cleanly within
        ``timeout`` (default: the configured ``drain_timeout``).
        """
        self._accepting = False
        limit = self.config.drain_timeout if timeout is None else timeout
        deadline = time.monotonic() + limit
        while self.queue.qsize() or self._dispatches:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    async def close(self) -> None:
        """Drain, then tear down: cancel the batcher, fail anything
        still pending with ``overloaded``, shut the executor down."""
        await self.drain()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        while not self.queue.empty():
            pending = self.queue.get_nowait()
            self._resolve(pending, error_response(
                pending.request.id, ERR_OVERLOADED,
                "service shut down before the job ran"))
        if self._dispatches:
            await asyncio.gather(*self._dispatches,
                                 return_exceptions=True)
        self.executor.shutdown(wait=True)

    # -- request path ----------------------------------------------------

    async def handle(self, payload: Any) -> Dict[str, Any]:
        """The full pipeline for one raw payload: parse, admit, await
        the result.  Always returns a response object."""
        started = time.monotonic()
        try:
            request = parse_request(
                payload, default_engine=self.config.default_engine)
        except WireError as exc:
            return self._reject(None, exc.code, exc.message, started)
        return await self.submit(request, started=started)

    async def submit(self, request: VerifyRequest, *,
                     started: Optional[float] = None) -> Dict[str, Any]:
        """Admit one parsed request and await its response."""
        if started is None:
            started = time.monotonic()
        if not self.accepting:
            return self._reject(request.id, ERR_OVERLOADED,
                                "service is draining", started)
        if self.queue.full():
            return self._reject(
                request.id, ERR_OVERLOADED,
                f"queue full ({self.config.queue_limit} jobs); "
                "back off and retry", started)
        timeout = request.timeout if request.timeout is not None \
            else self.config.timeout
        pending = _Pending(request=request,
                           future=asyncio.get_running_loop()
                           .create_future(),
                           enqueued=started,
                           deadline=started + timeout)
        sess = active()
        if sess is not None:
            # Mint the request's trace context up front: the executor
            # thread adopts it (buffer roots link back to the span id
            # minted here) and the post-hoc ``serve.request`` span
            # records itself under the very same ids.
            pending.ctx = sess.new_context("req")
            pending.ctx["span"] = sess.tracer.mint_span_id()
            pending.obs_trace = sess.tracer.enabled
            pending.obs_metrics = sess.metrics_enabled
        self.queue.put_nowait(pending)
        return await pending.future

    def _reject(self, request_id: Optional[str], code: str,
                message: str, started: float) -> Dict[str, Any]:
        response = error_response(request_id, code, message)
        self._observe(request_id, response, started, run_seconds=0.0)
        return response

    def _resolve(self, pending: _Pending, response: Dict[str, Any],
                 run_seconds: float = 0.0,
                 collected: Optional[Collected] = None) -> None:
        self._observe(pending.request.id, response, pending.enqueued,
                      run_seconds, ctx=pending.ctx, collected=collected)
        if not pending.future.done():
            pending.future.set_result(response)

    # -- batching --------------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            first = await self.queue.get()
            batch = [first]
            while (len(batch) < self.config.batch_max
                   and not self.queue.empty()):
                batch.append(self.queue.get_nowait())
            groups: Dict[str, List[_Pending]] = {}
            for pending in batch:
                key = pending.request.job.identity_key
                groups.setdefault(key, []).append(pending)
            self._counts["batches"] += len(groups)
            self._counts["batched_jobs"] += len(batch)
            for key, group in groups.items():
                task = asyncio.create_task(self._dispatch(key, group))
                self._dispatches.add(task)
                task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, key: str, group: List[_Pending]) -> None:
        """Run one coalesced group on the executor and resolve every
        request in it."""
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                self.executor, self._run_group, key, group)
        except Exception as exc:  # pragma: no cover - executor death
            outcomes = [(error_response(p.request.id, ERR_INTERNAL,
                                        f"dispatch failed: {exc}"),
                         0.0, None)
                        for p in group]
        for pending, (response, run_seconds, collected) in zip(group,
                                                               outcomes):
            self._resolve(pending, response, run_seconds, collected)

    def _run_group(self, key: str,
                   group: List[_Pending]
                   ) -> List[Tuple[Dict[str, Any], float,
                                   Optional[Collected]]]:
        """Executor-side: resolve the group's shared instance once,
        then run each job sequentially on the warm context.  Runs in a
        worker thread — no event-loop state is touched here; spans and
        metrics land in a per-request adopted buffer (the executor
        thread has no ambient session of its own) which ships back with
        the outcome for the event loop to merge."""
        outcomes: List[Tuple[Dict[str, Any], float,
                             Optional[Collected]]] = []
        resolved: Optional[ResolvedInstance] = None
        resolve_error: Optional[WireError] = None
        cache_hit = False
        for pending in group:
            request = pending.request
            now = time.monotonic()
            if now >= pending.deadline:
                self._counts["timeouts"] += 1
                outcomes.append((error_response(
                    request.id, ERR_TIMEOUT,
                    f"deadline expired after "
                    f"{now - pending.enqueued:.3f}s in queue"),
                    0.0, None))
                continue
            if resolved is None and resolve_error is None:
                try:
                    resolved, cache_hit = self.cache.get_or_build(
                        key, lambda: resolve_instance(request.job))
                except WireError as exc:
                    resolve_error = exc
            if resolve_error is not None:
                outcomes.append((error_response(
                    request.id, resolve_error.code,
                    resolve_error.message), 0.0, None))
                continue
            tick = time.monotonic()
            try:
                with adopt_context(pending.ctx,
                                   trace=pending.obs_trace,
                                   metrics=pending.obs_metrics) as buf:
                    result, estimate = execute_job(
                        request.job, resolved,
                        workers=self.config.run_workers)
            except WireError as exc:
                outcomes.append((error_response(request.id, exc.code,
                                                exc.message), 0.0, None))
                continue
            except Exception as exc:
                outcomes.append((error_response(
                    request.id, ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}"), 0.0, None))
                continue
            collected = export_collected(buf) if buf is not None \
                else None
            run_seconds = time.monotonic() - tick
            meta = {
                "engine": estimate.engine,
                "workers": estimate.workers,
                "cache_hit": cache_hit,
                "batch": len(group),
                "context_key": key,
                "queue_ms": round((tick - pending.enqueued) * 1000, 3),
                "run_ms": round(run_seconds * 1000, 3),
            }
            outcomes.append((ok_response(request.id, result, meta),
                             run_seconds, collected))
        return outcomes

    # -- observability ---------------------------------------------------

    def _observe(self, request_id: Optional[str],
                 response: Dict[str, Any], started: float,
                 run_seconds: float,
                 ctx: Optional[Dict[str, Optional[str]]] = None,
                 collected: Optional[Collected] = None) -> None:
        self._counts["requests"] += 1
        ok = bool(response.get("ok"))
        code = None if ok else response["error"]["code"]
        if ok:
            self._counts["ok"] += 1
        else:
            self._counts["rejected"] += 1
        sess = active()
        if sess is None:
            return
        total = time.monotonic() - started
        with sess.span("serve.request", id=request_id or "-",
                       ok=ok, code=code or "-") as span:
            if span is not None:
                if ok:
                    span.note(run_ms=response["meta"]["run_ms"])
                if ctx is not None:
                    # The exact ids the executor buffer linked to at
                    # admission — the request's spans stitch into one
                    # connected tree under this root.
                    span.meta["trace"] = ctx["trace"]
                    span.meta["span"] = ctx["span"]
            if collected is not None:
                merge_collected(sess, collected)
        if span is not None and ctx is not None and sess.tracer.enabled:
            aliases = [request_id] if request_id else []
            self.traces.push(ctx["trace"], span.export(), aliases)
        if sess.metrics_enabled:
            metrics = sess.metrics
            metrics.counter("serve/requests", deterministic=False).inc()
            if ok:
                metrics.counter("serve/ok", deterministic=False).inc()
                result = response["result"]
                metrics.counter("serve/trials",
                                deterministic=False).inc(result["trials"])
                metrics.timer("serve/seconds/run").inc(run_seconds)
                if response["meta"]["cache_hit"]:
                    metrics.counter("serve/cache/hits",
                                    deterministic=False).inc()
                else:
                    metrics.counter("serve/cache/misses",
                                    deterministic=False).inc()
            else:
                metrics.counter(f"serve/rejected/{code}",
                                deterministic=False).inc()
            metrics.timer("serve/seconds/total").inc(total)
            metrics.histogram("serve/latency_ms",
                              deterministic=False).observe(total * 1000)
        self.live.maybe_push(sess)

    # -- introspection ---------------------------------------------------

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /v1/metrics``: the
        latest ring snapshot of the ambient registry plus service-level
        gauges (queue depth, counts, cache) — non-empty and well-formed
        even with observability off."""
        sess = active()
        if sess is not None:
            self.live.maybe_push(sess)
        slot = self.live.latest()
        snapshot = slot["metrics"] if slot is not None else {}
        stats = self.stats()
        extra: Dict[str, Any] = {
            "serve/up": 1,
            "serve/accepting": int(stats["accepting"]),
            "serve/queue/depth": stats["queue"]["depth"],
            "serve/queue/limit": stats["queue"]["limit"],
            "serve/inflight_groups": stats["inflight_groups"],
            "serve/traces/retained": len(self.traces),
        }
        for name, value in stats["counts"].items():
            extra[f"serve/counts/{name}"] = value
        for name, value in stats["cache"].items():
            if isinstance(value, (int, float)):
                extra[f"serve/cache_stats/{name}"] = value
        return prometheus_text(snapshot, extra)

    def trace_tree(self, key: str) -> Optional[Dict[str, Any]]:
        """A finished request's span tree by trace id or request id
        (``GET /v1/trace/<id>``), or None when unknown/evicted."""
        return self.traces.get(key)

    def stats(self) -> Dict[str, Any]:
        """Health/metrics payload for the transports."""
        return {
            "accepting": self.accepting,
            "queue": {"depth": self.queue.qsize(),
                      "limit": self.config.queue_limit},
            "inflight_groups": len(self._dispatches),
            "counts": dict(self._counts),
            "cache": self.cache.stats(),
            "config": {
                "batch_max": self.config.batch_max,
                "pool_threads": self.config.pool_threads,
                "run_workers": self.config.run_workers,
                "default_engine": self.config.default_engine,
                "timeout": self.config.timeout,
            },
        }
