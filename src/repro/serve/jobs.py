"""Job resolution and execution: from a :class:`JobSpec` to a
deterministic result payload.

Resolution maps the job's registry keys through the lab registries
(:mod:`repro.lab.spec`) — the same protocol constructors, instance
families and prover panel every experiment uses — or decodes a literal
graph6 payload, and binds a warm :class:`InstanceContext` to the pair.
The resolved triple is what the sharded service cache stores under the
job's :attr:`~repro.serve.schema.JobSpec.identity_key`: protocols,
instances and contexts are randomness-free and shared across jobs;
provers are built fresh per job.

Execution is one :func:`repro.core.runner.run_trials` call with the
job's own ``(trials, seed)``, so a service response is byte-identical
to what a direct library call produces: batching and caching share
static structure across jobs, never randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..core.context import InstanceContext
from ..core.model import Instance, Protocol
from ..core.runner import AcceptanceEstimate, run_trials
from .schema import (CERT_CLOPPER_PEARSON, CERT_NONE, CERT_WILSON,
                     ERR_UNSUPPORTED, JobSpec, WireError)


@dataclass(frozen=True)
class ResolvedInstance:
    """The cacheable part of a job: its ``(protocol, instance)`` pair
    and the shared per-instance structural cache.  Everything here is
    a pure function of the job's identity fields (protocol, n, graph /
    graph6) — see :attr:`JobSpec.identity_key`."""

    protocol: Protocol
    instance: Instance
    context: InstanceContext


def resolve_instance(job: JobSpec) -> ResolvedInstance:
    """Instantiate the job's protocol and instance, bind a context.

    A job that parsed cleanly can still be unservable — a fixed-size
    graph family at the wrong ``n``, a graph6 payload that does not
    decode, or an instance the protocol's model rejects (e.g. a
    disconnected network for a spanning-tree protocol).  All of those
    surface as ``WireError(unsupported)``.
    """
    from ..lab.spec import GRAPHS, PROTOCOLS

    try:
        protocol = PROTOCOLS[job.protocol](job.n)
    except (ValueError, KeyError) as exc:
        raise WireError(ERR_UNSUPPORTED,
                        f"protocol {job.protocol!r} rejects n={job.n}: "
                        f"{exc}") from None

    if job.graph6 is not None:
        from ..graphs.graph6 import graph_from_graph6
        try:
            graph = graph_from_graph6(job.graph6)
        except ValueError as exc:
            raise WireError(ERR_UNSUPPORTED,
                            f"graph6 payload does not decode: "
                            f"{exc}") from None
        if graph.n != job.n:
            raise WireError(ERR_UNSUPPORTED,
                            f"graph6 payload has n={graph.n}, job says "
                            f"n={job.n}")
        instance = Instance(graph)
    else:
        try:
            instance = GRAPHS[job.graph](job.n)
        except (ValueError, KeyError) as exc:
            raise WireError(ERR_UNSUPPORTED,
                            f"graph family {job.graph!r} rejects "
                            f"n={job.n}: {exc}") from None

    try:
        protocol.validate_instance(instance)
    except ValueError as exc:
        raise WireError(ERR_UNSUPPORTED,
                        f"instance rejected by {protocol.name}: "
                        f"{exc}") from None

    context = InstanceContext(instance, protocol)
    return ResolvedInstance(protocol=protocol, instance=instance,
                            context=context)


def result_payload(job: JobSpec,
                   estimate: AcceptanceEstimate) -> Dict[str, Any]:
    """The deterministic ``result`` object of a success response.

    A pure function of ``(job, estimate)`` with every field independent
    of wall time, worker count and cache state — the byte-identity gate
    compares this object between service and direct library runs.
    """
    result: Dict[str, Any] = {
        "accepted": estimate.accepted,
        "trials": estimate.trials,
        "probability": estimate.probability,
    }
    if job.cert == CERT_WILSON:
        lo, hi = estimate.wilson_interval()
        result["interval"] = [lo, hi]
    elif job.cert == CERT_CLOPPER_PEARSON:
        result["upper"] = estimate.clopper_pearson_upper(job.alpha)
        result["lower"] = estimate.clopper_pearson_lower(job.alpha)
        result["alpha"] = job.alpha
    else:
        assert job.cert == CERT_NONE
    return result


def execute_job(job: JobSpec, resolved: ResolvedInstance, *,
                workers: int = 1
                ) -> Tuple[Dict[str, Any], AcceptanceEstimate]:
    """Run one job on a (shared, possibly cached) resolved instance.

    Builds the job's prover fresh — provers may carry search state —
    and returns the deterministic result payload plus the estimate
    (whose instrumentation fields feed the response's ``meta``).
    """
    from ..lab.spec import PROVERS
    prover = PROVERS[job.prover](resolved.protocol)
    estimate = run_trials(resolved.protocol, resolved.instance, prover,
                          job.trials, job.seed, workers=workers,
                          context=resolved.context, engine=job.engine)
    return result_payload(job, estimate), estimate
