"""The serve wire schema: versioned requests, responses, and the
error taxonomy.

Every message on the wire — HTTP bodies and ndjson lines alike — is
one JSON object.  Requests carry an explicit schema version (``"v"``)
so the service can refuse payloads from the future instead of
misreading them, and every rejection is classified by a small, closed
error taxonomy:

``malformed``
    The payload is not a JSON object of the documented shape (bad
    JSON, wrong types, missing or unknown fields, out-of-range
    numbers).  HTTP 400.
``unsupported``
    The payload is well-formed but asks for something this service
    does not provide: an unknown schema version, protocol, graph
    family, prover or engine, or a graph a protocol's model rejects.
    HTTP 422.
``overloaded``
    Admission control refused the job: the bounded queue is full, or
    the service is draining.  Clients should back off and retry —
    nothing was executed.  HTTP 429.
``timeout``
    The job's deadline expired before a result was produced.  HTTP
    504.
``internal``
    An unexpected failure inside the service (a bug, by definition —
    the taxonomy above covers everything a client can cause).  HTTP
    500.

Determinism contract
--------------------
The ``result`` object of a success response is a **pure function of
the job** — byte-identical to what a direct
:func:`repro.core.runner.run_trials` call with the same seeds
produces (see :func:`repro.serve.jobs.result_payload`).  Everything
that depends on load, caching or wall time lives in the sibling
``meta`` object, so clients (and the byte-identity gate in
``tests/serve``) can compare results across service and library runs
verbatim.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

#: The wire schema version this module speaks.
WIRE_VERSION = 1

#: Error taxonomy codes and their HTTP status projections.
ERR_MALFORMED = "malformed"
ERR_UNSUPPORTED = "unsupported"
ERR_OVERLOADED = "overloaded"
ERR_TIMEOUT = "timeout"
ERR_INTERNAL = "internal"

ERROR_STATUS = {
    ERR_MALFORMED: 400,
    ERR_UNSUPPORTED: 422,
    ERR_OVERLOADED: 429,
    ERR_TIMEOUT: 504,
    ERR_INTERNAL: 500,
}

#: Certification levels a job may request.
CERT_NONE = "none"
CERT_WILSON = "wilson"
CERT_CLOPPER_PEARSON = "clopper-pearson"
CERT_LEVELS = (CERT_NONE, CERT_WILSON, CERT_CLOPPER_PEARSON)

#: Admission-control bounds on job parameters.  These are *schema*
#: limits (anything beyond them is malformed, not merely slow): they
#: keep a single request from monopolizing the service.
MAX_TRIALS = 100_000
MAX_N = 4096
MAX_SEED = 2 ** 63 - 1
MAX_ID_LEN = 128
MAX_GRAPH6_LEN = 8192

_JOB_FIELDS = frozenset({"protocol", "n", "graph", "graph6", "prover",
                         "trials", "seed", "engine", "cert", "alpha"})
_REQUEST_FIELDS = frozenset({"v", "id", "job", "timeout"})


class WireError(Exception):
    """A classified wire-level rejection (never crashes the service)."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_STATUS:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def status(self) -> int:
        return ERROR_STATUS[self.code]


@dataclass(frozen=True)
class JobSpec:
    """One verification job: which protocol to run against which
    instance, with which prover, for how many trials.

    ``graph`` names a family from the lab registry
    (:data:`repro.lab.spec.GRAPHS`) instantiated at ``n``;
    ``graph6`` carries a literal graph6-encoded network instead.
    Exactly one of the two must be set.
    """

    protocol: str
    n: int
    prover: str = "honest"
    trials: int = 1
    seed: int = 0
    graph: Optional[str] = None
    graph6: Optional[str] = None
    engine: str = "python"
    cert: str = CERT_NONE
    alpha: float = 0.01

    @property
    def identity_key(self) -> str:
        """Content address of the job's ``(protocol, instance)`` pair —
        the sharded context cache's key, in the same style as the lab
        spec identity hash.  Prover, trials, seed, engine and cert are
        deliberately excluded: the cached :class:`InstanceContext` is
        shared across all of them."""
        identity = {
            "protocol": self.protocol,
            "n": self.n,
            "graph": self.graph,
            "graph6": self.graph6,
        }
        digest = hashlib.sha256(
            json.dumps(identity, sort_keys=True).encode("utf-8"))
        return digest.hexdigest()[:16]


@dataclass(frozen=True)
class VerifyRequest:
    """One parsed wire request."""

    id: str
    job: JobSpec
    #: client deadline in seconds (None = the service default).
    timeout: Optional[float] = None


def _require(condition: bool, code: str, message: str) -> None:
    if not condition:
        raise WireError(code, message)


def _int_field(obj: Dict[str, Any], name: str, default: Optional[int],
               lo: int, hi: int) -> int:
    value = obj.get(name, default)
    _require(value is not None, ERR_MALFORMED,
             f"job field {name!r} is required")
    # bool is an int subclass; reject it explicitly.
    _require(isinstance(value, int) and not isinstance(value, bool),
             ERR_MALFORMED, f"job field {name!r} must be an integer")
    _require(lo <= value <= hi, ERR_MALFORMED,
             f"job field {name!r} must be in [{lo}, {hi}] (got {value})")
    return value


def parse_job(obj: Any, *, default_engine: str = "python") -> JobSpec:
    """Validate and parse the ``job`` object of a request.

    Shape errors raise ``WireError(malformed)``; well-formed jobs
    naming unknown registry keys raise ``WireError(unsupported)`` —
    the registry check happens here (not at resolution time) so a
    client learns *which* field the service cannot serve.

    ``default_engine`` applies to jobs that omit the ``engine`` field
    (a service configured with ``--engine numpy`` upgrades engine-
    agnostic clients transparently; engines are byte-equivalent by the
    kernel contract, so this never changes a result).
    """
    _require(isinstance(obj, dict), ERR_MALFORMED,
             "job must be a JSON object")
    unknown = set(obj) - _JOB_FIELDS
    _require(not unknown, ERR_MALFORMED,
             f"unknown job fields: {sorted(unknown)}")

    protocol = obj.get("protocol")
    _require(isinstance(protocol, str), ERR_MALFORMED,
             "job field 'protocol' must be a string")

    n = _int_field(obj, "n", None, 1, MAX_N)
    trials = _int_field(obj, "trials", 1, 0, MAX_TRIALS)
    seed = _int_field(obj, "seed", 0, 0, MAX_SEED)

    graph = obj.get("graph")
    graph6 = obj.get("graph6")
    _require(graph is None or isinstance(graph, str), ERR_MALFORMED,
             "job field 'graph' must be a string")
    _require(graph6 is None or isinstance(graph6, str), ERR_MALFORMED,
             "job field 'graph6' must be a string")
    _require((graph is None) != (graph6 is None), ERR_MALFORMED,
             "exactly one of 'graph' and 'graph6' must be set")
    if graph6 is not None:
        _require(len(graph6) <= MAX_GRAPH6_LEN, ERR_MALFORMED,
                 f"graph6 payload exceeds {MAX_GRAPH6_LEN} characters")

    prover = obj.get("prover", "honest")
    _require(isinstance(prover, str), ERR_MALFORMED,
             "job field 'prover' must be a string")
    engine = obj.get("engine", default_engine)
    _require(isinstance(engine, str), ERR_MALFORMED,
             "job field 'engine' must be a string")
    cert = obj.get("cert", CERT_NONE)
    _require(isinstance(cert, str), ERR_MALFORMED,
             "job field 'cert' must be a string")
    alpha = obj.get("alpha", 0.01)
    _require(isinstance(alpha, float) and 0.0 < alpha < 1.0, ERR_MALFORMED,
             "job field 'alpha' must be a float in (0, 1)")

    # Registry membership: well-formed but unknown -> unsupported.
    from ..core.runner import ENGINES
    from ..lab.spec import GRAPHS, PROTOCOLS, PROVERS
    _require(protocol in PROTOCOLS, ERR_UNSUPPORTED,
             f"unknown protocol {protocol!r}; known: "
             f"{sorted(PROTOCOLS)}")
    if graph is not None:
        _require(graph in GRAPHS, ERR_UNSUPPORTED,
                 f"unknown graph family {graph!r}; known: "
                 f"{sorted(GRAPHS)}")
    _require(prover in PROVERS, ERR_UNSUPPORTED,
             f"unknown prover {prover!r}; known: {sorted(PROVERS)}")
    _require(engine in ENGINES, ERR_UNSUPPORTED,
             f"unknown engine {engine!r}; known: {list(ENGINES)}")
    _require(cert in CERT_LEVELS, ERR_UNSUPPORTED,
             f"unknown cert level {cert!r}; known: {list(CERT_LEVELS)}")

    return JobSpec(protocol=protocol, n=n, prover=prover, trials=trials,
                   seed=seed, graph=graph, graph6=graph6, engine=engine,
                   cert=cert, alpha=alpha)


def parse_request(payload: Any, *,
                  default_engine: str = "python") -> VerifyRequest:
    """Parse one wire request from raw text/bytes or a decoded object.

    Every rejection is a :class:`WireError` — the service never sees a
    raw exception from a client payload.
    """
    if isinstance(payload, (str, bytes, bytearray)):
        try:
            payload = json.loads(payload)
        except (ValueError, UnicodeDecodeError) as exc:
            raise WireError(ERR_MALFORMED,
                            f"request is not valid JSON: {exc}") from None
    _require(isinstance(payload, dict), ERR_MALFORMED,
             "request must be a JSON object")
    unknown = set(payload) - _REQUEST_FIELDS
    _require(not unknown, ERR_MALFORMED,
             f"unknown request fields: {sorted(unknown)}")

    version = payload.get("v")
    _require(isinstance(version, int) and not isinstance(version, bool),
             ERR_MALFORMED, "request field 'v' (schema version) must be "
             "an integer")
    _require(version == WIRE_VERSION, ERR_UNSUPPORTED,
             f"unsupported wire version {version} (this service speaks "
             f"v{WIRE_VERSION})")

    request_id = payload.get("id")
    _require(isinstance(request_id, str) and request_id, ERR_MALFORMED,
             "request field 'id' must be a non-empty string")
    _require(len(request_id) <= MAX_ID_LEN, ERR_MALFORMED,
             f"request field 'id' exceeds {MAX_ID_LEN} characters")

    timeout = payload.get("timeout")
    if timeout is not None:
        _require(isinstance(timeout, (int, float))
                 and not isinstance(timeout, bool), ERR_MALFORMED,
                 "request field 'timeout' must be a number")
        timeout = float(timeout)
        _require(0.0 <= timeout <= 3600.0, ERR_MALFORMED,
                 "request field 'timeout' must be in [0, 3600] seconds")

    _require("job" in payload, ERR_MALFORMED,
             "request field 'job' is required")
    job = parse_job(payload["job"], default_engine=default_engine)
    return VerifyRequest(id=request_id, job=job, timeout=timeout)


def request_to_jsonable(request: VerifyRequest) -> Dict[str, Any]:
    """The wire form of a request — ``parse_request`` round-trips it."""
    job = {k: v for k, v in asdict(request.job).items() if v is not None}
    payload: Dict[str, Any] = {"v": WIRE_VERSION, "id": request.id,
                               "job": job}
    if request.timeout is not None:
        payload["timeout"] = request.timeout
    return payload


def ok_response(request_id: str, result: Dict[str, Any],
                meta: Dict[str, Any]) -> Dict[str, Any]:
    """A success response: deterministic ``result``, wall-clock and
    provenance in ``meta``."""
    return {"v": WIRE_VERSION, "id": request_id, "ok": True,
            "result": result, "meta": meta}


def error_response(request_id: Optional[str], code: str,
                   message: str) -> Dict[str, Any]:
    """An error response; ``id`` is None when the request was too
    malformed to carry one."""
    return {"v": WIRE_VERSION, "id": request_id, "ok": False,
            "error": {"code": code, "status": ERROR_STATUS[code],
                      "message": message}}


def encode_response(response: Dict[str, Any]) -> str:
    """The canonical one-line wire encoding of a response."""
    return json.dumps(response, sort_keys=True, separators=(",", ":"))
