"""Minimal HTTP/1.1 transport for the verification service.

The container philosophy of this repo is zero runtime dependencies,
so the HTTP layer is a small hand-rolled server on asyncio streams:
request-line + headers, a ``Content-Length`` body (bounded), and
keep-alive.  It deliberately implements only what the wire schema
needs — chunked encoding, pipelining beyond keep-alive, TLS and
compression are out of scope (front a real proxy for those; see
docs/SERVE.md's runbook).

Routes
------
``POST /v1/verify``      one wire request in, one wire response out.
``GET  /v1/health``      service stats (queue depth, cache, counters).
``GET  /v1/schema``      the schema version and registry keys clients
                         may use — service discovery for load
                         generators.
``GET  /v1/metrics``     Prometheus text exposition: the ambient
                         registry's latest ring snapshot plus
                         service-level gauges (scrape target).
``GET  /v1/trace/<id>``  a finished request's span tree (JSON), by
                         trace id or request id, from the bounded
                         trace ring.

The HTTP status of an error response comes straight from the error
taxonomy (:data:`repro.serve.schema.ERROR_STATUS`): ``malformed`` is
400, ``unsupported`` 422, ``overloaded`` 429, ``timeout`` 504,
``internal`` 500.  Transport-level garbage (an unparsable request
line, an oversized body) maps onto the same taxonomy so clients see
exactly one error vocabulary.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from .schema import (ERR_MALFORMED, ERR_UNSUPPORTED, WIRE_VERSION,
                     encode_response, error_response)
from .service import VerifyService

#: Transport bounds — requests beyond them are malformed, not buffered.
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 16 << 10

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """Transport-level rejection, rendered as a taxonomy response."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


#: Exposition content type (the Prometheus text format version).
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json"


def _render(status: int, body: str, keep_alive: bool,
            content_type: str = JSON_CONTENT_TYPE) -> bytes:
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body.encode('utf-8'))}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n")
    return head.encode("ascii") + body.encode("utf-8")


def response_status(response: Dict[str, Any]) -> int:
    """The HTTP status a wire response carries (200 for successes)."""
    if response.get("ok"):
        return 200
    return int(response["error"].get("status", 500))


async def _read_request(reader: asyncio.StreamReader
                        ) -> Optional[Tuple[str, str, Dict[str, str],
                                            bytes]]:
    """One parsed request: ``(method, path, headers, body)``, or None
    on a cleanly closed connection."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _HttpError(400, ERR_MALFORMED,
                         "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(400, ERR_MALFORMED,
                         "request line too long") from None
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, ERR_MALFORMED, "malformed request line")
    method, path, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            raise _HttpError(400, ERR_MALFORMED,
                             "truncated headers") from None
        if raw == b"\r\n":
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise _HttpError(413, ERR_MALFORMED, "headers too large")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise _HttpError(400, ERR_MALFORMED,
                             f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise _HttpError(400, ERR_MALFORMED,
                         "chunked bodies are not supported; send "
                         "Content-Length")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise _HttpError(400, ERR_MALFORMED,
                             "invalid Content-Length") from None
        if size < 0:
            raise _HttpError(400, ERR_MALFORMED,
                             "invalid Content-Length")
        if size > MAX_BODY_BYTES:
            raise _HttpError(413, ERR_MALFORMED,
                             f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(size)
        except asyncio.IncompleteReadError:
            raise _HttpError(400, ERR_MALFORMED,
                             "body shorter than Content-Length") \
                from None
    return method, path, headers, body


def _schema_payload() -> Dict[str, Any]:
    from ..core.runner import ENGINES
    from ..lab.spec import GRAPHS, PROTOCOLS, PROVERS
    from .schema import CERT_LEVELS, MAX_N, MAX_TRIALS
    return {
        "v": WIRE_VERSION,
        "protocols": sorted(PROTOCOLS),
        "graphs": sorted(GRAPHS),
        "provers": sorted(PROVERS),
        "engines": list(ENGINES),
        "cert_levels": list(CERT_LEVELS),
        "limits": {"max_trials": MAX_TRIALS, "max_n": MAX_N},
    }


async def _route(service: VerifyService, method: str, path: str,
                 body: bytes) -> Tuple[int, str, str]:
    """Dispatch one request; returns (status, body, content type)."""
    def as_json(status: int, payload: Dict[str, Any]
                ) -> Tuple[int, str, str]:
        return status, json.dumps(payload, sort_keys=True), \
            JSON_CONTENT_TYPE

    if path == "/v1/verify":
        if method != "POST":
            raise _HttpError(405, ERR_UNSUPPORTED,
                             "/v1/verify only accepts POST")
        response = await service.handle(body)
        return as_json(response_status(response), response)
    if path == "/v1/health":
        if method != "GET":
            raise _HttpError(405, ERR_UNSUPPORTED,
                             "/v1/health only accepts GET")
        return as_json(200, {"v": WIRE_VERSION, "ok": True,
                             "stats": service.stats()})
    if path == "/v1/schema":
        if method != "GET":
            raise _HttpError(405, ERR_UNSUPPORTED,
                             "/v1/schema only accepts GET")
        return as_json(200, _schema_payload())
    if path == "/v1/metrics":
        if method != "GET":
            raise _HttpError(405, ERR_UNSUPPORTED,
                             "/v1/metrics only accepts GET")
        return 200, service.metrics_text(), METRICS_CONTENT_TYPE
    if path.startswith("/v1/trace/"):
        if method != "GET":
            raise _HttpError(405, ERR_UNSUPPORTED,
                             "/v1/trace only accepts GET")
        key = path[len("/v1/trace/"):]
        entry = service.trace_tree(key)
        if entry is None:
            raise _HttpError(404, ERR_UNSUPPORTED,
                             f"no retained trace for {key!r}")
        return as_json(200, {"v": WIRE_VERSION, "ok": True, **entry})
    raise _HttpError(404, ERR_UNSUPPORTED, f"unknown path {path!r}")


async def handle_connection(service: VerifyService,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """One client connection: serve requests until close/EOF."""
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except _HttpError as exc:
                payload = error_response(None, exc.code, exc.message)
                writer.write(_render(exc.status,
                                     encode_response(payload), False))
                await writer.drain()
                return
            if parsed is None:
                return
            method, path, headers, body = parsed
            keep_alive = headers.get("connection", "keep-alive") \
                .lower() != "close"
            try:
                status, rendered, content_type = await _route(
                    service, method, path, body)
            except _HttpError as exc:
                status = exc.status
                rendered = json.dumps(
                    error_response(None, exc.code, exc.message),
                    sort_keys=True)
                content_type = JSON_CONTENT_TYPE
            writer.write(_render(status, rendered, keep_alive,
                                 content_type))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve_http(service: VerifyService, host: str,
                     port: int) -> "asyncio.Server":
    """Bind the HTTP transport; returns the listening server (use
    ``server.sockets[0].getsockname()`` for the bound port when
    ``port=0``)."""
    async def _client(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(_client, host, port,
                                      limit=MAX_HEADER_BYTES)
