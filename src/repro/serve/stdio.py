"""ndjson transport: one wire request per line, one response per line.

This is the pipe-friendly face of the service — the same schema as the
HTTP transport, minus the framing.  Blank lines are ignored; any other
line is handed to :meth:`VerifyService.handle` verbatim, so malformed
lines come back as ``malformed`` error responses rather than killing
the loop.  EOF stops admission and the loop returns once every
submitted job has resolved, which is what makes

``generate-jobs | python -m repro serve --stdin > responses.ndjson``

drain cleanly.

Responses are written in completion order, not submission order —
clients correlate by ``id`` (that is why the schema requires one).
"""

from __future__ import annotations

import asyncio
import sys
from typing import Any, AsyncIterator, Callable, Dict, Optional, Set

from .schema import encode_response
from .service import VerifyService


async def serve_lines(service: VerifyService,
                      lines: AsyncIterator[bytes],
                      write: Callable[[str], Any],
                      *,
                      flush: Optional[Callable[[], Any]] = None
                      ) -> Dict[str, int]:
    """Pump ``lines`` through the service, writing one encoded
    response per request via ``write``.  Returns tally counters
    (``requests``/``ok``/``errors``)."""
    pending: Set["asyncio.Task"] = set()
    counts = {"requests": 0, "ok": 0, "errors": 0}
    lock = asyncio.Lock()

    async def _one(payload: bytes) -> None:
        response = await service.handle(payload)
        if response.get("ok"):
            counts["ok"] += 1
        else:
            counts["errors"] += 1
        async with lock:  # lines must not interleave
            write(encode_response(response) + "\n")
            if flush is not None:
                flush()

    async for raw in lines:
        line = raw.strip()
        if not line:
            continue
        counts["requests"] += 1
        task = asyncio.ensure_future(_one(line))
        pending.add(task)
        task.add_done_callback(pending.discard)

    if pending:
        await asyncio.gather(*pending)
    return counts


async def _stdin_lines() -> AsyncIterator[bytes]:
    """stdin as an async line iterator without blocking the loop."""
    loop = asyncio.get_running_loop()
    while True:
        line = await loop.run_in_executor(None, sys.stdin.buffer.readline)
        if not line:
            return
        yield line


async def serve_stdio(service: VerifyService) -> Dict[str, int]:
    """Serve ndjson requests from stdin to stdout until EOF."""
    return await serve_lines(
        service, _stdin_lines(), sys.stdout.write,
        flush=sys.stdout.flush)
