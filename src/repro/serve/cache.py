"""Sharded, content-addressed cache of resolved instances.

The expensive part of a small verification job is not the trials — it
is rebuilding the static per-instance structure (automorphism search,
BFS trees, kernel tables) that :class:`InstanceContext` memoizes.  The
service therefore caches whole :class:`~repro.serve.jobs.ResolvedInstance`
triples under the job's content address
(:attr:`~repro.serve.schema.JobSpec.identity_key`), so every request
for the same ``(protocol, n, graph)`` after the first reuses a warm
context — the serve-side equivalent of what ``run_trials`` does across
the trials of one batch.

Sharding
--------
Executor threads hit the cache concurrently, so it is split into
``shards`` independently-locked LRU maps addressed by the key's
leading hex digits.  A lock is held only for the O(1) map operations —
never while *building* an entry — so two concurrent misses on the same
key may both build; the first insert wins and both callers get a
usable entry (contexts are randomness-free, so either copy is
correct).  That trade keeps the hot hit path contention-free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple, TypeVar

T = TypeVar("T")


class ShardedCache:
    """A bounded LRU cache in ``shards`` independently-locked pieces."""

    def __init__(self, capacity: int = 256, shards: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if shards < 1:
            raise ValueError("shards must be positive")
        self.shards = shards
        #: per-shard capacity; the total bound is ``capacity`` rounded
        #: up to a multiple of the shard count.
        self.per_shard = max(1, -(-capacity // shards))
        self._maps = [OrderedDict() for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def _shard(self, key: str) -> int:
        # Keys are hex content addresses, already uniform — the leading
        # digits are as good a shard index as any hash of them.
        return int(key[:8], 16) % self.shards

    def get_or_build(self, key: str,
                     build: Callable[[], T]) -> Tuple[T, bool]:
        """The cached value for ``key`` (LRU-refreshed), or ``build()``
        inserted under it.  Returns ``(value, hit)``.  ``build`` runs
        outside the shard lock; it may raise, in which case nothing is
        cached."""
        index = self._shard(key)
        shard, lock = self._maps[index], self._locks[index]
        with lock:
            if key in shard:
                shard.move_to_end(key)
                self._hits += 1
                return shard[key], True
            self._misses += 1
        value = build()
        with lock:
            if key not in shard:
                shard[key] = value
                if len(shard) > self.per_shard:
                    shard.popitem(last=False)
                    self._evictions += 1
            else:
                # A concurrent miss inserted first; keep its entry hot.
                shard.move_to_end(key)
        return value, False

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._maps)

    def clear(self) -> None:
        for shard, lock in zip(self._maps, self._locks):
            with lock:
                shard.clear()

    def stats(self) -> Dict[str, Any]:
        """Counters for the service's health/metrics endpoints."""
        return {
            "entries": len(self),
            "shards": self.shards,
            "per_shard_capacity": self.per_shard,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }
