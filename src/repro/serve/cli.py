"""``python -m repro serve`` — run the verification service.

Modes
-----
default        bind the HTTP transport and serve until SIGINT/SIGTERM,
               then drain gracefully.
``--stdin``    serve ndjson request lines from stdin to stdout until
               EOF, drain, exit.
``--smoke N``  in-process self-test: pump ``N`` generated jobs (mixed
               valid, malformed, unsupported) through the full ndjson
               pipeline, byte-check one result against a direct
               ``run_trials`` call, and assert a clean drain.  Exit 0
               only if everything holds — this is the CI smoke gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any, AsyncIterator, Dict, List, Tuple

from .service import ServeConfig, VerifyService


def _config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host, port=args.port, queue_limit=args.queue_limit,
        batch_max=args.batch_max, pool_threads=args.pool_threads,
        run_workers=args.run_workers, default_engine=args.engine,
        timeout=args.timeout, drain_timeout=args.drain_timeout,
        cache_capacity=args.cache_capacity)


async def _run_http(config: ServeConfig, as_json: bool) -> int:
    from .http import serve_http

    service = VerifyService(config)
    await service.start()
    server = await serve_http(service, config.host, config.port)
    host, port = server.sockets[0].getsockname()[:2]
    if as_json:
        print(json.dumps({"listening": f"http://{host}:{port}"}),
              flush=True)
    else:
        print(f"repro serve listening on http://{host}:{port} "
              f"(POST /v1/verify, GET /v1/health, GET /v1/schema)",
              flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    await stop.wait()

    print("draining ...", file=sys.stderr, flush=True)
    server.close()
    await server.wait_closed()
    drained = await service.drain()
    await service.close()
    print(f"drained={'clean' if drained else 'timed out'} "
          f"stats={json.dumps(service.stats()['counts'])}",
          file=sys.stderr, flush=True)
    return 0 if drained else 1


async def _run_stdio(config: ServeConfig) -> int:
    from .stdio import serve_stdio

    service = VerifyService(config)
    await service.start()
    counts = await serve_stdio(service)
    drained = await service.drain()
    await service.close()
    print(f"served {counts['requests']} requests "
          f"({counts['ok']} ok, {counts['errors']} errors), "
          f"drain={'clean' if drained else 'timed out'}",
          file=sys.stderr, flush=True)
    return 0 if drained else 1


# -- smoke self-test -----------------------------------------------------

#: (protocol, graph, n) combinations the smoke generator cycles over —
#: small instances from the lab registry that every engine serves.
_SMOKE_COMBOS: Tuple[Tuple[str, str, int], ...] = (
    ("sym-dmam", "cycle", 8),
    ("sym-dam", "cycle", 10),
    ("sym-lcp", "cycle", 8),
    ("sym-dmam", "cycle", 12),
)

_SMOKE_BAD: Tuple[Tuple[str, str], ...] = (
    # (payload, expected error code)
    ('{"this is not json', "malformed"),
    ('[1, 2, 3]', "malformed"),
    ('{"v": 1, "id": "bad-missing-job"}', "malformed"),
    ('{"v": 99, "id": "bad-version", "job": {"protocol": "sym-dmam", '
     '"n": 8, "graph": "cycle"}}', "unsupported"),
    ('{"v": 1, "id": "bad-protocol", "job": {"protocol": "no-such", '
     '"n": 8, "graph": "cycle"}}', "unsupported"),
    ('{"v": 1, "id": "bad-field", "job": {"protocol": "sym-dmam", '
     '"n": 8, "graph": "cycle", "zeal": 3}}', "malformed"),
)


def _smoke_lines(count: int, seed: int,
                 engine: str) -> Tuple[List[bytes], int, int]:
    """``count`` mixed request lines: roughly one bad payload in four.
    Returns ``(lines, expected_ok, expected_errors)``."""
    lines: List[bytes] = []
    ok = bad = 0
    for index in range(count):
        if index % 4 == 3:
            payload = _SMOKE_BAD[bad % len(_SMOKE_BAD)][0]
            bad += 1
        else:
            protocol, graph, n = _SMOKE_COMBOS[ok % len(_SMOKE_COMBOS)]
            payload = json.dumps({
                "v": 1, "id": f"smoke-{index}",
                "job": {"protocol": protocol, "graph": graph, "n": n,
                        "trials": 5, "seed": seed + index,
                        "engine": engine},
            })
            ok += 1
        lines.append(payload.encode("utf-8"))
    return lines, ok, bad


async def _http_get(host: str, port: int,
                    path: str) -> Tuple[int, str]:
    """One-shot HTTP/1.1 GET against the serve transport."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                 f"Connection: close\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode("utf-8")


def _check_exposition(text: str, failures: List[str]) -> None:
    """The mid-run scrape gate: non-empty, well-formed Prometheus
    text with the serve metrics present."""
    if not text.strip():
        failures.append("/v1/metrics exposition is empty")
        return
    lines = text.strip().splitlines()
    if not lines[0].startswith("# HELP"):
        failures.append("/v1/metrics does not start with # HELP")
    for line in lines:
        if not line.startswith("#") and " " not in line:
            failures.append(f"malformed exposition line {line!r}")
            break
    if "repro_serve_up" not in text:
        failures.append("/v1/metrics lacks repro_serve_up")


async def _run_smoke(config: ServeConfig, count: int, seed: int,
                     as_json: bool) -> int:
    from ..obs.live import stitch_spans
    from ..obs.session import active
    from .http import serve_http
    from .jobs import result_payload
    from .schema import parse_request
    from .stdio import serve_lines

    lines, expected_ok, expected_errors = _smoke_lines(
        count, seed, config.default_engine)

    async def _source() -> AsyncIterator[bytes]:
        for line in lines:
            yield line

    service = VerifyService(config)
    await service.start()
    responses: List[Dict[str, Any]] = []
    counts = await serve_lines(
        service, _source(), lambda text: responses.append(
            json.loads(text)))
    drained = await service.drain()

    # Mid-run scrape: the service is still up — bind the HTTP
    # transport and hit the exposition endpoints like a scraper would.
    failures: List[str] = []
    first_ok = next((r for r in responses if r.get("ok")), None)
    server = await serve_http(service, "127.0.0.1", 0)
    scrape_host, scrape_port = server.sockets[0].getsockname()[:2]
    status, exposition = await _http_get(scrape_host, scrape_port,
                                         "/v1/metrics")
    if status != 200:
        failures.append(f"/v1/metrics returned {status}")
    _check_exposition(exposition, failures)
    sess = active()
    if sess is not None and sess.tracer.enabled and first_ok is not None:
        status, trace_body = await _http_get(
            scrape_host, scrape_port, f"/v1/trace/{first_ok['id']}")
        if status != 200:
            failures.append(f"/v1/trace/{first_ok['id']} returned "
                            f"{status}")
        elif not json.loads(trace_body).get("span"):
            failures.append("/v1/trace returned no span tree")
    server.close()
    await server.wait_closed()
    await service.close()

    # Context-propagation gate: with tracing on, every request that
    # reached the batcher must stitch into one connected tree (the
    # serve.request span roots it; executor-buffer roots link to it).
    if sess is not None and sess.tracer.enabled:
        stitched = stitch_spans(sess.tracer.export())
        request_traces = {trace: bucket
                          for trace, bucket in stitched["traces"].items()
                          if "-req" in trace}
        if stitched["orphans"]:
            failures.append(
                f"orphan spans after stitching: {stitched['orphans']}")
        disconnected = [trace for trace, bucket in request_traces.items()
                        if len(bucket["roots"]) != 1]
        if disconnected:
            failures.append(f"request traces with != 1 root: "
                            f"{sorted(disconnected)}")
        if len(request_traces) < expected_ok:
            failures.append(
                f"expected >= {expected_ok} request traces, saw "
                f"{len(request_traces)}")
    if counts["requests"] != count or len(responses) != count:
        failures.append(f"expected {count} responses, saw "
                        f"{len(responses)}")
    if counts["ok"] != expected_ok:
        failures.append(f"expected {expected_ok} ok responses, saw "
                        f"{counts['ok']}")
    if counts["errors"] != expected_errors:
        failures.append(f"expected {expected_errors} error responses, "
                        f"saw {counts['errors']}")
    if not drained:
        failures.append("service did not drain cleanly")
    if service.queue.qsize() or service._dispatches:
        failures.append("drain left work behind")

    # Error codes must match the taxonomy the bad payloads were built
    # to exercise.
    by_id = {r["id"]: r for r in responses if r.get("id")}
    for payload, code in _SMOKE_BAD:
        try:
            decoded = json.loads(payload)
        except ValueError:
            continue
        bad_id = decoded.get("id") if isinstance(decoded, dict) else None
        if bad_id in by_id and by_id[bad_id]["ok"]:
            failures.append(f"payload {bad_id!r} should have failed")
        elif bad_id in by_id \
                and by_id[bad_id]["error"]["code"] != code:
            failures.append(
                f"payload {bad_id!r}: expected {code!r}, got "
                f"{by_id[bad_id]['error']['code']!r}")

    # Byte-identity spot check: the service result for the first ok
    # response must equal a direct run_trials call with the same job.
    if first_ok is not None:
        from ..core.runner import run_trials
        from .jobs import resolve_instance
        from ..lab.spec import PROVERS
        line = next(l for l in lines
                    if f'"id": "{first_ok["id"]}"' in l.decode())
        request = parse_request(line)
        resolved = resolve_instance(request.job)
        prover = PROVERS[request.job.prover](resolved.protocol)
        estimate = run_trials(resolved.protocol, resolved.instance,
                              prover, request.job.trials,
                              request.job.seed,
                              context=resolved.context,
                              engine=request.job.engine)
        direct = json.dumps(result_payload(request.job, estimate),
                            sort_keys=True)
        served = json.dumps(first_ok["result"], sort_keys=True)
        if direct != served:
            failures.append(f"byte-identity violated: direct {direct} "
                            f"!= served {served}")

    summary = {
        "requests": count, "ok": counts["ok"],
        "errors": counts["errors"], "drained": drained,
        "cache": service.cache.stats(), "failures": failures,
        "metrics_scraped": len(exposition.strip().splitlines()),
        "traced": bool(sess is not None and sess.tracer.enabled),
        "passed": not failures,
    }
    if as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"smoke: {count} requests, {counts['ok']} ok, "
              f"{counts['errors']} errors, drain="
              f"{'clean' if drained else 'DIRTY'}, cache hits="
              f"{service.cache.stats()['hits']}, scraped "
              f"{summary['metrics_scraped']} exposition lines")
        for failure in failures:
            print(f"  FAIL: {failure}")
        print("smoke: PASS" if not failures else "smoke: FAIL")
    return 0 if not failures else 1


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        config = _config_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.smoke is not None:
        if args.smoke < 1:
            print("error: --smoke needs a positive request count",
                  file=sys.stderr)
            return 2
        # The smoke is also the context-propagation gate: run it under
        # a traced obs session (unless the caller installed one) so the
        # stitched span-tree assertions in _run_smoke are exercised.
        from contextlib import nullcontext

        from ..obs.session import active, session as obs_session
        ambient = nullcontext() if active() is not None \
            else obs_session()
        with ambient:
            return asyncio.run(_run_smoke(config, args.smoke,
                                          args.seed, args.json))
    from contextlib import nullcontext

    from ..obs.session import active, session as obs_session
    ambient = obs_session() if args.obs and active() is None \
        else nullcontext()
    with ambient:
        if args.stdin:
            return asyncio.run(_run_stdio(config))
        return asyncio.run(_run_http(config, args.json))


def add_serve_parser(sub: "argparse._SubParsersAction") -> None:
    p = sub.add_parser(
        "serve",
        help="long-running verification service (HTTP + ndjson)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8478,
                   help="HTTP port (0 picks a free one)")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="admission bound; beyond it requests get 429")
    p.add_argument("--batch-max", type=int, default=32,
                   help="most jobs one batcher sweep coalesces")
    p.add_argument("--pool-threads", type=int, default=2,
                   help="executor threads running trial batches")
    p.add_argument("--run-workers", type=int, default=1,
                   help="run_trials worker processes per batch")
    p.add_argument("--engine", default="python",
                   choices=["python", "numpy"],
                   help="engine for jobs that do not name one")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="default per-request deadline, seconds")
    p.add_argument("--drain-timeout", type=float, default=10.0)
    p.add_argument("--cache-capacity", type=int, default=256,
                   help="resolved-instance cache entries")
    p.add_argument("--obs", action="store_true",
                   help="run under a live observability session: "
                        "/v1/metrics carries the full registry and "
                        "/v1/trace retains request span trees")
    p.add_argument("--stdin", action="store_true",
                   help="serve ndjson lines from stdin instead of HTTP")
    p.add_argument("--smoke", type=int, metavar="N", default=None,
                   help="run the in-process self-test with N requests")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.set_defaults(func=cmd_serve)
