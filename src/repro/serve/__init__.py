"""repro.serve — the long-running verification service.

A transport-agnostic asyncio service (:class:`VerifyService`) that
accepts verification jobs over a versioned JSON wire schema
(:mod:`repro.serve.schema`), admission-controls them through a bounded
queue, coalesces same-instance jobs into batches that share a cached
:class:`InstanceContext`, and dispatches them onto the existing
``run_trials`` engines.  Two transports front it: a zero-dependency
HTTP/1.1 server (:mod:`repro.serve.http`) and an ndjson pipe
(:mod:`repro.serve.stdio`).  Start it with ``python -m repro serve``.

The service's core guarantee is **byte-identity**: the ``result``
object of every success response equals what a direct
:func:`repro.core.runner.run_trials` call with the same job produces —
batching and caching share static structure, never randomness.  See
docs/SERVE.md for the wire schema and an operations runbook.
"""

from .cache import ShardedCache
from .jobs import ResolvedInstance, execute_job, resolve_instance, \
    result_payload
from .schema import (CERT_LEVELS, ERROR_STATUS, WIRE_VERSION, JobSpec,
                     VerifyRequest, WireError, encode_response,
                     error_response, ok_response, parse_job,
                     parse_request, request_to_jsonable)
from .service import ServeConfig, VerifyService

__all__ = [
    "CERT_LEVELS",
    "ERROR_STATUS",
    "WIRE_VERSION",
    "JobSpec",
    "ResolvedInstance",
    "ServeConfig",
    "ShardedCache",
    "VerifyRequest",
    "VerifyService",
    "WireError",
    "encode_response",
    "error_response",
    "execute_job",
    "ok_response",
    "parse_job",
    "parse_request",
    "request_to_jsonable",
    "resolve_instance",
    "result_payload",
]
