"""Wire-cost audit: measured frame sizes vs declared protocol costs.

The paper's cost measure is the number of proof bits a node exchanges
with the prover; the protocols *declare* it via ``arthur_bits`` /
``merlin_bits``.  netsim *measures* it: every challenge and message is
actually encoded, and the charged payload length is the wire truth.
The audit pins the two together — for every protocol, round, node and
field in the library, ``measured == declared`` — so declared costs can
be trusted as wire-exact, not just as bookkeeping.

A mismatch is reported down to the field: the audit re-computes each
field's declared marginal cost (``merlin_bits`` with and without the
field) and compares it against the field's payload span width.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..core import Instance, run_protocol
from ..core.model import (Protocol, ProtocolViolation, Prover,
                          ROUND_ARTHUR)
from ..graphs import DSymLayout
from ..protocols import (DSymDAMProtocol, DSymLCP, GNIDAMProtocol,
                         GNIGoldwasserSipserProtocol, GeneralGNIProtocol,
                         SymDAMProtocol, SymDMAMProtocol, SymLCP)
from ..protocols.batteries import (LabeledInstance, dsym_battery,
                                   gni_battery, sym_battery)
from .codecs import wire_codec
from .harness import GOLDEN_SEED, golden_cases


@dataclass(frozen=True)
class AuditEntry:
    """One audited frame that failed the measured == declared check."""

    protocol: str
    case: str
    round_idx: int
    kind: str  # "arthur" | "merlin"
    node: int
    declared: int
    measured: int
    #: field names whose marginal declared cost differs from their
    #: payload span width.
    fields: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (f"{self.protocol} [{self.case}] round {self.round_idx} "
                f"({self.kind}) node {self.node}: measured "
                f"{self.measured} bits, declared {self.declared} "
                f"(fields: {', '.join(self.fields) or '-'})")


@dataclass
class AuditReport:
    """The audit outcome for one (protocol, instance) execution."""

    protocol: str
    case: str
    n: int
    frames: int
    mismatches: List[AuditEntry]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _mismatching_fields(protocol: Protocol, instance: Instance,
                        round_idx: int, message, frame) -> Tuple[str, ...]:
    """Name the fields whose declared marginal cost (``merlin_bits``
    with minus without the field) differs from the payload span."""
    names = []
    full = protocol.merlin_bits(instance, round_idx, message)
    for name in message:
        without = {key: value for key, value in message.items()
                   if key != name}
        declared = full - protocol.merlin_bits(instance, round_idx,
                                               without)
        span = frame.span_of(name)
        measured = span[1] - span[0] if span is not None else 0
        if declared != measured:
            names.append(name)
    return tuple(names) or ("<frame>",)


def audit_execution(protocol: Protocol, instance: Instance,
                    prover: Prover, rng: random.Random,
                    case: str = "") -> AuditReport:
    """Run one execution on the abstract runner and re-encode every
    transcript frame, checking charged payload bits against the
    declared per-round costs."""
    codec = wire_codec(protocol)
    result = run_protocol(protocol, instance, prover, rng)
    transcript = result.transcript
    frames = 0
    mismatches: List[AuditEntry] = []
    for round_idx, kind in enumerate(protocol.pattern):
        if kind == ROUND_ARTHUR:
            declared = protocol.arthur_bits(instance, round_idx)
            challenge_codec = codec.challenge_codec(round_idx)
            for node in sorted(transcript.randomness[round_idx]):
                value = transcript.randomness[round_idx][node]
                frame = challenge_codec.encode(value)
                frames += 1
                if frame.charged_bits != declared:
                    mismatches.append(AuditEntry(
                        protocol=protocol.name, case=case,
                        round_idx=round_idx, kind="arthur", node=node,
                        declared=declared, measured=frame.charged_bits,
                        fields=("challenge",)))
        else:
            message_codec = codec.message_codec(round_idx)
            for node in sorted(transcript.messages[round_idx]):
                message = transcript.messages[round_idx][node]
                declared = protocol.merlin_bits(instance, round_idx,
                                                message)
                frame = message_codec.encode(message)
                frames += 1
                if frame.charged_bits != declared:
                    mismatches.append(AuditEntry(
                        protocol=protocol.name, case=case,
                        round_idx=round_idx, kind="merlin", node=node,
                        declared=declared, measured=frame.charged_bits,
                        fields=_mismatching_fields(
                            protocol, instance, round_idx, message,
                            frame)))
    return AuditReport(protocol=protocol.name, case=case, n=instance.n,
                       frames=frames, mismatches=mismatches)


def _battery_cases(sizes: Tuple[int, ...]
                   ) -> Iterable[Tuple[str, Protocol, Instance]]:
    """Every battery protocol over a grid of battery instances."""
    for inner_n in sizes:
        rng = random.Random(inner_n)
        items: List[LabeledInstance] = sym_battery(inner_n, rng)
        for item in items:
            n = item.instance.n
            for protocol in (SymDMAMProtocol(n), SymDAMProtocol(n),
                             SymLCP(n)):
                yield (f"sym[{inner_n}] {item.label}", protocol,
                       item.instance)
    for inner_n in sizes:
        layout = DSymLayout(inner_n, 2)
        for item in dsym_battery(layout, random.Random(inner_n)):
            for protocol in (DSymDAMProtocol(layout), DSymLCP(layout)):
                yield (f"dsym[{inner_n}] {item.label}", protocol,
                       item.instance)
    for n in sizes:
        for item in gni_battery(n, random.Random(n)):
            for protocol in (
                    GNIGoldwasserSipserProtocol(n, repetitions=3,
                                                threshold=0),
                    GNIDAMProtocol(n, repetitions=2, threshold=0),
                    GeneralGNIProtocol(n, repetitions=2, threshold=0)):
                yield (f"gni[{n}] {item.label}", protocol, item.instance)


def audit_cases(sizes: Tuple[int, ...] = (6, 7),
                include_golden: bool = True
                ) -> List[Tuple[str, Protocol, Instance]]:
    """The audited (case, protocol, instance) grid: the golden battery
    plus every ``protocols.batteries`` battery at each size."""
    cases: List[Tuple[str, Protocol, Instance]] = []
    if include_golden:
        cases.extend((f"golden {case.name}", case.protocol, case.instance)
                     for case in golden_cases())
    cases.extend(_battery_cases(sizes))
    return cases


def run_audit(seed: int = GOLDEN_SEED, sizes: Tuple[int, ...] = (6, 7),
              include_golden: bool = True) -> List[AuditReport]:
    """Audit the whole grid with honest provers.

    Cases where the honest prover legitimately refuses to play (a
    ``ProtocolViolation`` on a NO instance) are skipped — the audit is
    about wire costs of produced messages, not about soundness.
    """
    reports = []
    for case, protocol, instance in audit_cases(sizes, include_golden):
        try:
            reports.append(audit_execution(
                protocol, instance, protocol.honest_prover(),
                random.Random(seed), case=case))
        except ProtocolViolation:
            continue
    return reports
