"""Fault-injection policies for netsim channels and nodes.

A :class:`FaultPlan` describes everything unreliable about a run:

* per-channel :class:`ChannelPolicy` (drop / duplicate / bit-flip
  corruption rates, latency, jitter, timeout and a bounded retransmit
  budget), with a default policy and per-``(src, dst)`` overrides;
* ``crashes`` — nodes that fail-stop at the start of a given round
  (they stop sending challenges and relays, and decide ``False``);
* ``byzantine`` — nodes that garble every frame they *relay* to their
  neighbors (their own challenges to the prover stay honest; what they
  pass along during cross-checking is adversarial noise).

All fault randomness comes from a dedicated net rng, never from the
protocol rng — which is why ``FAULT_FREE`` netsim runs are
transcript-identical to the abstract runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

#: Channel endpoint naming the prover actor (vertices are >= 0).
PROVER = -1


@dataclass(frozen=True)
class ChannelPolicy:
    """Unreliability knobs for one directed channel.

    ``drop``/``duplicate``/``corrupt`` are per-transmission
    probabilities.  A dropped transmission is retried after ``timeout``
    ticks, at most ``max_retries`` times; a frame dropped on every
    attempt is lost (the trace records a terminal ``timeout`` event).
    Corruption flips ``flips`` uniformly-chosen payload bits —
    restricted to the span of ``corrupt_field`` when set — and always
    preserves frame length.  ``jitter`` adds a uniform random delay in
    ``[0, jitter]`` on top of ``latency``, which is what reorders
    deliveries.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    flips: int = 1
    latency: int = 1
    jitter: int = 0
    timeout: int = 2
    max_retries: int = 3
    corrupt_field: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "corrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1]: {rate}")
        if self.flips < 1:
            raise ValueError("corruption must flip at least one bit")
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if self.timeout < 1:
            raise ValueError("timeout must be at least one tick")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    @property
    def is_reliable(self) -> bool:
        return (self.drop == 0.0 and self.duplicate == 0.0
                and self.corrupt == 0.0)


RELIABLE = ChannelPolicy()


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault configuration of one netsim run."""

    default: ChannelPolicy = RELIABLE
    #: per-(src, dst) policy overrides; ``PROVER`` names the prover end.
    channels: Mapping[Tuple[int, int], ChannelPolicy] = \
        field(default_factory=dict)
    #: node -> round index at whose start the node fail-stops.
    crashes: Mapping[int, int] = field(default_factory=dict)
    #: nodes that garble everything they relay.
    byzantine: FrozenSet[int] = frozenset()

    def policy(self, src: int, dst: int) -> ChannelPolicy:
        return self.channels.get((src, dst), self.default)

    def crashed(self, node: int, round_idx: int) -> bool:
        crash_round = self.crashes.get(node)
        return crash_round is not None and round_idx >= crash_round

    @property
    def is_fault_free(self) -> bool:
        return (self.default.is_reliable
                and all(policy.is_reliable
                        for policy in self.channels.values())
                and not self.crashes and not self.byzantine)


FAULT_FREE = FaultPlan()
