"""Deterministic event scheduling and the replayable event trace.

netsim time is *logical*: an integer clock advanced only by the event
queue.  Events fire in ``(time, sequence)`` order — the sequence number
breaks ties by scheduling order — so a run is a pure function of its
seeds, and two runs with the same seeds produce byte-identical traces
(:meth:`EventTrace.to_json` is the canonical byte form the determinism
tests compare).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from typing import Any, Callable, Dict, List

#: Event kinds recorded in the trace.
EV_ROUND = "round"
EV_SEND = "send"
EV_DROP = "drop"
EV_RETRANSMIT = "retransmit"
EV_TIMEOUT = "timeout"
EV_DELIVER = "deliver"
EV_DUPLICATE = "duplicate"
EV_CORRUPT = "corrupt"
EV_CRASH = "crash"
EV_RELAY = "relay"
EV_VIOLATION = "violation"
EV_DECIDE = "decide"


class EventQueue:
    """A seeded-deterministic discrete-event queue.

    ``schedule`` enqueues a callback at an absolute logical time;
    ``drain`` runs everything in ``(time, seq)`` order, advancing
    ``time`` monotonically.  Rounds are synchronous: the simulation
    drains the queue at each phase boundary, then bumps the clock.
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._seq = 0
        self.time = 0

    def schedule(self, time: int, callback: Callable[[], None]) -> None:
        if time < self.time:
            time = self.time
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def drain(self) -> None:
        while self._heap:
            time, _seq, callback = heapq.heappop(self._heap)
            if time > self.time:
                self.time = time
            callback()
        self.time += 1  # phase boundary


def _canonical_event_bytes(event: Dict[str, Any]) -> bytes:
    """One event in the exact byte form :meth:`EventTrace.to_json` uses."""
    return json.dumps(event, sort_keys=True, indent=None,
                      separators=(",", ":")).encode("utf-8")


def trace_digest_of(events: List[Dict[str, Any]]) -> str:
    """The streaming digest of a materialized event list.

    ``EventTrace(stream=True).digest()`` over the same events returns
    the same hex string — the equality the streaming-mode tests (and
    the constant-memory netsim gates) rely on.
    """
    acc = hashlib.sha256()
    for event in events:
        acc.update(_canonical_event_bytes(event))
        acc.update(b"\n")
    return acc.hexdigest()


class EventTrace:
    """A structured, replayable record of everything that happened.

    Events are appended in causal order (sends before the deliveries
    they cause); each event carries its logical ``t`` for chronology.
    The trace contains no wall-clock data, so its JSON form is a
    deterministic function of the run's seeds.

    ``stream=True`` switches to hash-and-discard mode for large-n
    runs: each event is folded into a rolling sha256 over its
    canonical JSON bytes and per-kind counters, then dropped, so
    memory stays constant no matter how many frames the run produces.
    ``count``/``len`` keep working from the counters; ``of_kind`` and
    ``to_json`` need materialized events and raise instead —
    :func:`trace_digest_of` recomputes the same digest from a
    materialized trace for crosschecks.
    """

    def __init__(self, enabled: bool = True, stream: bool = False) -> None:
        self.enabled = enabled
        self.stream = stream
        self.events: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {}
        self._total = 0
        self._digest = hashlib.sha256()

    def record(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        event = {"kind": kind}
        event.update(fields)
        if self.stream:
            self._digest.update(_canonical_event_bytes(event))
            self._digest.update(b"\n")
            self._counts[kind] = self._counts.get(kind, 0) + 1
            self._total += 1
            return
        self.events.append(event)

    def count(self, kind: str) -> int:
        if self.stream:
            return self._counts.get(kind, 0)
        return sum(1 for event in self.events if event["kind"] == kind)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        if self.stream:
            raise RuntimeError(
                "streamed trace discarded its events; use count()/"
                "digest(), or run with stream=False to materialize")
        return [event for event in self.events if event["kind"] == kind]

    def to_json(self) -> str:
        """Canonical byte form (used by the determinism tests)."""
        if self.stream:
            raise RuntimeError(
                "streamed trace has no materialized events; digest() "
                "is its canonical byte form")
        return json.dumps(self.events, sort_keys=True, indent=None,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Rolling sha256 over the canonical event bytes.

        In stream mode this is the trace's only canonical form; for a
        materialized trace it equals ``trace_digest_of(self.events)``.
        """
        if self.stream:
            return self._digest.hexdigest()
        return trace_digest_of(self.events)

    def __len__(self) -> int:
        if self.stream:
            return self._total
        return len(self.events)
