"""Deterministic event scheduling and the replayable event trace.

netsim time is *logical*: an integer clock advanced only by the event
queue.  Events fire in ``(time, sequence)`` order — the sequence number
breaks ties by scheduling order — so a run is a pure function of its
seeds, and two runs with the same seeds produce byte-identical traces
(:meth:`EventTrace.to_json` is the canonical byte form the determinism
tests compare).
"""

from __future__ import annotations

import heapq
import json
from typing import Any, Callable, Dict, List

#: Event kinds recorded in the trace.
EV_ROUND = "round"
EV_SEND = "send"
EV_DROP = "drop"
EV_RETRANSMIT = "retransmit"
EV_TIMEOUT = "timeout"
EV_DELIVER = "deliver"
EV_DUPLICATE = "duplicate"
EV_CORRUPT = "corrupt"
EV_CRASH = "crash"
EV_RELAY = "relay"
EV_VIOLATION = "violation"
EV_DECIDE = "decide"


class EventQueue:
    """A seeded-deterministic discrete-event queue.

    ``schedule`` enqueues a callback at an absolute logical time;
    ``drain`` runs everything in ``(time, seq)`` order, advancing
    ``time`` monotonically.  Rounds are synchronous: the simulation
    drains the queue at each phase boundary, then bumps the clock.
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._seq = 0
        self.time = 0

    def schedule(self, time: int, callback: Callable[[], None]) -> None:
        if time < self.time:
            time = self.time
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def drain(self) -> None:
        while self._heap:
            time, _seq, callback = heapq.heappop(self._heap)
            if time > self.time:
                self.time = time
            callback()
        self.time += 1  # phase boundary


class EventTrace:
    """A structured, replayable record of everything that happened.

    Events are appended in causal order (sends before the deliveries
    they cause); each event carries its logical ``t`` for chronology.
    The trace contains no wall-clock data, so its JSON form is a
    deterministic function of the run's seeds.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[Dict[str, Any]] = []

    def record(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        event = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event["kind"] == kind)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [event for event in self.events if event["kind"] == kind]

    def to_json(self) -> str:
        """Canonical byte form (used by the determinism tests)."""
        return json.dumps(self.events, sort_keys=True, indent=None,
                          separators=(",", ":"))

    def __len__(self) -> int:
        return len(self.events)
