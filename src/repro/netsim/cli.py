"""The ``python -m repro netsim`` command group.

``netsim run``     the equivalence gate plus the wire-cost audit:
                   faults-off substrate executions must be
                   bit-identical to the abstract runner, and every
                   encoded frame must charge exactly its declared
                   ``arthur_bits``/``merlin_bits``.  Exit 1 on any
                   divergence or cost mismatch (``--smoke`` for the
                   fast CI subset, ``--json`` for machine output).
``netsim faults``  the fault-injection matrix: acceptance under
                   duplication/jitter/drops and rejection under
                   crashes, byzantine relays and targeted broadcast
                   corruption, with the hashed-equality detection
                   rate checked against its analytic bound.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict
from typing import Tuple


def cmd_netsim_run(args: argparse.Namespace) -> int:
    from .audit import run_audit
    from .harness import equivalence_report

    seed = args.seed
    equivalence = equivalence_report(seed, smoke=args.smoke)
    sizes: Tuple[int, ...] = () if args.smoke else (6, 7)
    reports = run_audit(seed, sizes=sizes)
    mismatches = [entry for report in reports
                  for entry in report.mismatches]
    audit_ok = not mismatches
    ok = equivalence["all_equivalent"] and audit_ok

    if args.json:
        payload = {
            "seed": seed,
            "smoke": args.smoke,
            "equivalence": equivalence,
            "all_equivalent": equivalence["all_equivalent"],
            "audit": {
                "cases": len(reports),
                "frames": sum(report.frames for report in reports),
                "mismatches": [asdict(entry) for entry in mismatches],
                "ok": audit_ok,
            },
            "ok": ok,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if ok else 1

    print(f"equivalence gate (seed {seed})")
    print(f"  {'case':<18} {'n':>3} {'accept':>6} {'exact':>6} "
          f"{'hashed':>6} {'cost':>5} {'overhead':>8} {'relay':>7}")
    for row in equivalence["cases"]:
        print(f"  {row['case']:<18} {row['n']:>3} "
              f"{str(row['accepted']):>6} "
              f"{'ok' if row['equivalent_exact'] else 'FAIL':>6} "
              f"{'ok' if row['equivalent_hashed'] else 'FAIL':>6} "
              f"{row['max_cost_bits']:>5} {row['overhead_bits']:>8} "
              f"{row['crosscheck_bits']:>7}")
    frames = sum(report.frames for report in reports)
    print(f"wire-cost audit: {len(reports)} cases, {frames} frames, "
          f"{len(mismatches)} mismatches")
    for entry in mismatches[:20]:
        print(f"  MISMATCH {entry.describe()}")
    print("netsim gate:", "ok" if ok else "FAILED")
    return 0 if ok else 1


def cmd_netsim_faults(args: argparse.Namespace) -> int:
    from .harness import fault_matrix

    matrix = fault_matrix(args.seed, trials=args.trials)
    if args.json:
        print(json.dumps(matrix, indent=2, sort_keys=True))
        return 0 if matrix["all_ok"] else 1

    print(f"fault matrix: {matrix['protocol']} n={matrix['n']} "
          f"({matrix['trials']} trials, seed {matrix['seed']})")
    print(f"  {'fault':<24} {'mode':<7} {'accept':>6} {'lost':>5} "
          f"{'detect':>7} {'bound':>7} {'ok':>4}")
    for row in matrix["rows"]:
        detect = (f"{row['detection_rate']:.3f}"
                  if "detection_rate" in row else "-")
        bound = (f"{row['analytic_bound']:.4f}"
                 if "analytic_bound" in row else "-")
        print(f"  {row['fault']:<24} {row['crosscheck']:<7} "
              f"{row['accept_rate']:>6.2f} {row['lost_frames']:>5} "
              f"{detect:>7} {bound:>7} "
              f"{'ok' if row['ok'] else 'FAIL':>4}")
    print("fault matrix:", "ok" if matrix["all_ok"] else "FAILED")
    return 0 if matrix["all_ok"] else 1


def add_netsim_parser(sub) -> None:
    """Register the ``netsim`` command group on the main CLI."""
    p = sub.add_parser(
        "netsim",
        help="message-passing substrate: equivalence gate and faults")
    netsim_sub = p.add_subparsers(dest="netsim_command", required=True)

    run = netsim_sub.add_parser(
        "run", help="equivalence gate + wire-cost audit")
    run.add_argument("--smoke", action="store_true",
                     help="fast subset (CI gate)")
    run.add_argument("--json", action="store_true",
                     help="machine-readable output")
    run.set_defaults(func=cmd_netsim_run)

    faults = netsim_sub.add_parser(
        "faults", help="fault-injection matrix with detection bounds")
    faults.add_argument("--trials", type=int, default=20,
                        help="netsim runs per fault configuration")
    faults.add_argument("--json", action="store_true",
                        help="machine-readable output")
    faults.set_defaults(func=cmd_netsim_faults)
