"""The event-driven message-passing substrate.

``run_netsim`` executes the *same* :class:`~repro.core.model.Protocol`
objects as the abstract runner, but as communicating actors: each node
and the prover are endpoints connected by directed channels, every
Arthur challenge and Merlin message crosses a channel as an encoded
bitstring (:mod:`repro.netsim.codec`), and neighbor cross-checking is
an explicit relay phase instead of a structural convention.

Equivalence contract
--------------------
With ``faults=FAULT_FREE`` a netsim run is **bit-identical** to
``core.runner.run_protocol`` on the same ``(protocol, instance,
prover, rng)``: same transcript, same verdicts, same per-node bit
costs.  This holds because

* the protocol rng is consumed in exactly the runner's order (all
  Arthur values sampled in vertex order at round start, prover called
  once per Merlin round with the same arguments);
* fault and fingerprint randomness comes from a *separate* net rng;
* codecs round-trip every value exactly (malformed prover values ride
  the escape lane), so decoded stores equal the sent transcript;
* charged bits are the codec payload sizes, which the wire-cost audit
  pins to the declared ``arthur_bits``/``merlin_bits``.

Cost accounting
---------------
``node_cost_bits`` charges only node↔prover proof content (payload
bits), matching the paper's Definition 1 measure: challenges at send
time, Merlin messages at first accepted delivery.  Everything else —
framing headers, relay/cross-check traffic, retransmissions,
duplicates — is substrate overhead, reported separately
(``overhead_bits``, ``crosscheck_bits``, ``channel_bits``).

Cross-check modes
-----------------
``crosscheck="exact"`` relays full decoded messages (the abstract
runner's semantics).  ``crosscheck="hashed"`` replaces each broadcast
field with a :class:`~repro.network.randomized_verification
.HashedEquality` fingerprint of its payload span — O(log) bits per
edge instead of the field width — detecting a corrupted broadcast
field with probability ≥ 1 − m/p (the fault-matrix harness measures
exactly this against the analytic bound).
"""

from __future__ import annotations

import random
import time as _time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.context import InstanceContext
from ..obs.session import (Collected, active, collecting,
                           export_collected, merge_collected)
from ..core.model import (Instance, LocalView, NodeMessage, Protocol,
                          ProtocolViolation, Prover, ROUND_ARTHUR,
                          ROUND_MERLIN)
from ..core.runner import (AcceptanceEstimate, Transcript, _decide_node,
                           _fork_pool_context, _spans)
from ..network.randomized_verification import HashedEquality
from .bits import Bits
from .codec import CodecError, EncodedFrame
from .codecs import WireCodec, wire_codec
from .events import (EV_CORRUPT, EV_CRASH, EV_DECIDE, EV_DELIVER, EV_DROP,
                     EV_DUPLICATE, EV_RELAY, EV_RETRANSMIT, EV_ROUND,
                     EV_SEND, EV_TIMEOUT, EV_VIOLATION, EventQueue,
                     EventTrace)
from .faults import FAULT_FREE, PROVER, FaultPlan

CROSSCHECK_EXACT = "exact"
CROSSCHECK_HASHED = "hashed"

#: Mixed into ``net_seed`` so the net rng stream never collides with the
#: protocol rng stream even when both are seeded from the same integer.
_NET_SALT = 0x6E657473696D  # "netsim"

#: Cache of hashed-equality schemes by value width (prime search is
#: deterministic in the width, so both channel ends agree).
_EQUALITY_SCHEMES: Dict[int, HashedEquality] = {}


def equality_scheme(width: int) -> HashedEquality:
    """The hashed cross-check scheme for a ``width``-bit field span."""
    scheme = _EQUALITY_SCHEMES.get(width)
    if scheme is None:
        scheme = HashedEquality(max(1, width))
        _EQUALITY_SCHEMES[width] = scheme
    return scheme


@dataclass
class NetExecutionResult:
    """Outcome of one netsim execution.

    Duck-types the abstract runner's ``ExecutionResult`` surface
    (``accepted`` / ``decisions`` / ``transcript`` / ``node_cost_bits``
    / ``max_cost_bits``) so reporting and the equivalence gate treat
    both uniformly, and adds the substrate observability counters.
    """

    accepted: bool
    decisions: Dict[int, bool]
    transcript: Transcript
    #: per-node node↔prover proof bits (the paper's cost measure).
    node_cost_bits: Dict[int, int]
    #: per-(src, dst) channel traffic in bits, every attempt counted.
    channel_bits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: per-round node↔prover proof bits.
    round_bits: Dict[int, int] = field(default_factory=dict)
    #: total relay/cross-check traffic in bits.
    crosscheck_bits: int = 0
    #: total uncharged framing bits across all frames.
    overhead_bits: int = 0
    #: hashed-mode broadcast mismatches detected.
    broadcast_violations: int = 0
    #: frames lost after exhausting the retransmit budget.
    lost_frames: int = 0
    #: fault-injection event counts by kind (drop, corrupt, duplicate,
    #: timeout, retransmit, crash, violation) — the same tallies the
    #: simulation publishes as ``netsim/faults/<kind>`` counters, so
    #: injected-vs-observed gates can compare all three views (result,
    #: trace, obs) exactly.
    fault_events: Dict[str, int] = field(default_factory=dict)
    trace: Optional[EventTrace] = field(default=None, compare=False)

    @property
    def max_cost_bits(self) -> int:
        return max(self.node_cost_bits.values()) if self.node_cost_bits \
            else 0

    def rejecting_nodes(self) -> List[int]:
        return sorted(v for v, ok in self.decisions.items() if not ok)


class _Simulation:
    """One netsim execution (single-use)."""

    def __init__(self, protocol: Protocol, instance: Instance,
                 prover: Prover, rng: random.Random,
                 faults: FaultPlan, crosscheck: str,
                 net_seed: int, context: InstanceContext,
                 trace: bool, stream: bool = False) -> None:
        self.protocol = protocol
        self.instance = instance
        self.prover = prover
        self.rng = rng
        self.faults = faults
        self.crosscheck = crosscheck
        self.net_rng = random.Random(net_seed ^ _NET_SALT)
        self.context = context
        self.codec: WireCodec = wire_codec(protocol)
        self.queue = EventQueue()
        self.trace = EventTrace(enabled=trace, stream=stream)
        self.vertices = tuple(instance.graph.vertices)
        self.transcript = Transcript()
        self.node_cost = dict.fromkeys(self.vertices, 0)
        self.channel_bits: Dict[Tuple[int, int], int] = {}
        self.round_bits: Dict[int, int] = {}
        self.crosscheck_bits = 0
        self.overhead_bits = 0
        self.broadcast_violations = 0
        self.lost_frames = 0
        #: what the prover has *received* (may differ from the
        #: transcript under faults on node→prover channels).
        self.prover_randomness: Dict[int, Dict[int, Any]] = {}
        self.prover_messages: Dict[int, Dict[int, NodeMessage]] = {}
        #: per-node local stores, filled only by actual deliveries.
        self.store_randomness: Dict[int, Dict[int, Dict[int, Any]]] = {
            v: {} for v in self.vertices}
        self.store_messages: Dict[
            int, Dict[int, Dict[int, NodeMessage]]] = {
            v: {} for v in self.vertices}
        #: each node's received Merlin frames (spans drive hashed mode).
        self.node_frames: Dict[int, Dict[int, EncodedFrame]] = {
            v: {} for v in self.vertices}
        #: nodes that detected a hashed-mode broadcast violation.
        self.violating: set = set()
        self._frame_ids = 0
        self._delivered_ids: set = set()
        #: fault-injection event counts by kind (drop, corrupt, ...),
        #: published as ``netsim/faults/<kind>`` at the end of the run.
        self.fault_events: Dict[str, int] = {}
        #: the ambient observability session, captured once per
        #: simulation so the hot paths pay one attribute read.
        self.obs = active()
        self._frame_hist = (
            self.obs.metrics.histogram("netsim/frame_bits")
            if self.obs is not None and self.obs.metrics_enabled
            else None)

    def _fault(self, kind: str) -> None:
        self.fault_events[kind] = self.fault_events.get(kind, 0) + 1

    # -- channel pipeline --------------------------------------------------

    def _transmit(self, src: int, dst: int, round_idx: int, kind: str,
                  frame: EncodedFrame, extra_bits: int = 0,
                  on_deliver=None) -> None:
        """Push one frame through the (src → dst) channel: byzantine
        garbling, drop/retransmit, jitter, duplication and corruption —
        every random draw comes from the net rng, at send time, in a
        deterministic order."""
        policy = self.faults.policy(src, dst)
        rng = self.net_rng
        fid = self._frame_ids
        self._frame_ids += 1
        relay = kind == EV_RELAY

        if relay and src in self.faults.byzantine and frame.payload.length:
            garbled = Bits(rng.getrandbits(frame.payload.length),
                           frame.payload.length)
            frame = frame.with_payload(garbled)
            self._fault(EV_CORRUPT)
            self.trace.record(EV_CORRUPT, t=self.queue.time, frame=fid,
                              src=src, dst=dst, round=round_idx,
                              byzantine=True)

        bits = frame.payload.length + frame.header.length + extra_bits
        self.overhead_bits += frame.header.length + extra_bits
        if self._frame_hist is not None:
            self._frame_hist.observe(bits)
        self.trace.record(EV_RELAY if relay else EV_SEND,
                          t=self.queue.time, frame=fid, src=src, dst=dst,
                          round=round_idx, bits=bits)

        send_time = self.queue.time
        channel = (src, dst)
        attempt = 0
        while True:
            self.channel_bits[channel] = \
                self.channel_bits.get(channel, 0) + bits
            if relay:
                self.crosscheck_bits += bits
            if rng.random() >= policy.drop:
                break
            self._fault(EV_DROP)
            self.trace.record(EV_DROP, t=send_time + attempt * policy.timeout,
                              frame=fid, src=src, dst=dst, round=round_idx,
                              attempt=attempt)
            if attempt >= policy.max_retries:
                self.lost_frames += 1
                self._fault(EV_TIMEOUT)
                self.trace.record(EV_TIMEOUT,
                                  t=send_time + attempt * policy.timeout,
                                  frame=fid, src=src, dst=dst,
                                  round=round_idx)
                return
            attempt += 1
            self._fault(EV_RETRANSMIT)
            self.trace.record(EV_RETRANSMIT,
                              t=send_time + attempt * policy.timeout,
                              frame=fid, src=src, dst=dst, round=round_idx,
                              attempt=attempt)

        delay = policy.latency + attempt * policy.timeout
        if policy.jitter:
            delay += rng.randrange(policy.jitter + 1)
        duplicated = rng.random() < policy.duplicate
        if rng.random() < policy.corrupt and frame.payload.length:
            if policy.corrupt_field is not None:
                # Targeted corruption: frames without the field pass
                # through untouched.
                span = frame.span_of(policy.corrupt_field)
                lo, hi = span if span is not None else (0, 0)
            else:
                lo, hi = 0, frame.payload.length
            if hi > lo:
                positions = sorted(rng.sample(
                    range(lo, hi), min(policy.flips, hi - lo)))
                frame = frame.with_payload(frame.payload.flip(positions))
                self._fault(EV_CORRUPT)
                self.trace.record(EV_CORRUPT, t=send_time, frame=fid,
                                  src=src, dst=dst, round=round_idx,
                                  positions=positions)

        def deliver(frame=frame, fid=fid) -> None:
            if fid in self._delivered_ids:
                self._fault(EV_DUPLICATE)
                self.trace.record(EV_DUPLICATE, t=self.queue.time,
                                  frame=fid, src=src, dst=dst,
                                  round=round_idx)
                return
            self._delivered_ids.add(fid)
            self.trace.record(EV_DELIVER, t=self.queue.time, frame=fid,
                              src=src, dst=dst, round=round_idx)
            if on_deliver is not None:
                on_deliver(frame)

        self.queue.schedule(send_time + delay, deliver)
        if duplicated:
            self.channel_bits[channel] += bits
            if relay:
                self.crosscheck_bits += bits
            self.queue.schedule(send_time + delay + 1, deliver)

    # -- rounds ------------------------------------------------------------

    def _record_crashes(self, round_idx: int) -> None:
        for v in sorted(self.faults.crashes):
            if self.faults.crashes[v] == round_idx:
                self._fault(EV_CRASH)
                self.trace.record(EV_CRASH, t=self.queue.time, node=v,
                                  round=round_idx)

    def _arthur_round(self, round_idx: int) -> None:
        protocol, instance = self.protocol, self.instance
        declared = protocol.arthur_bits(instance, round_idx)
        codec = self.codec.challenge_codec(round_idx)
        # Protocol rng consumption matches the abstract runner exactly:
        # all values sampled in vertex order at round start.
        values = {v: protocol.arthur_value(instance, round_idx, v, self.rng)
                  for v in self.vertices}
        self.transcript.randomness[round_idx] = values
        self.round_bits.setdefault(round_idx, 0)

        received: Dict[int, EncodedFrame] = {}
        for v in self.vertices:
            self.store_randomness[v].setdefault(round_idx, {})[v] = values[v]
            if self.faults.crashed(v, round_idx):
                continue
            frame = codec.encode(values[v])
            if frame.charged_bits != declared:
                raise CodecError(
                    f"{protocol.name} round {round_idx}: challenge "
                    f"encodes to {frame.charged_bits} bits, declared "
                    f"{declared}")
            self.node_cost[v] += frame.charged_bits
            self.round_bits[round_idx] += frame.charged_bits
            self._transmit(
                v, PROVER, round_idx, EV_SEND, frame,
                on_deliver=lambda f, v=v: received.__setitem__(v, f))
        self.queue.drain()

        view: Dict[int, Any] = {}
        for v in self.vertices:
            if v in received:
                view[v] = codec.decode(received[v])
            else:
                # Challenge lost (or node crashed): the prover proceeds
                # with the all-zeros codeword for this node.
                view[v] = codec.decode(codec.zero_frame())
        self.prover_randomness[round_idx] = view

        # Relay phase: each node shares its own coins with its
        # neighbors (substrate traffic, not proof bits).
        graph = instance.graph
        for v in self.vertices:
            if self.faults.crashed(v, round_idx):
                continue
            neighbors = graph.neighbors(v)
            if not neighbors:
                continue
            frame = codec.encode(values[v])
            for u in neighbors:
                def set_rand(f, u=u, v=v):
                    self.store_randomness[u].setdefault(
                        round_idx, {})[v] = codec.decode(f)
                self._transmit(v, u, round_idx, EV_RELAY, frame,
                               on_deliver=set_rand)
        self.queue.drain()

    def _merlin_round(self, round_idx: int) -> None:
        protocol, instance = self.protocol, self.instance
        codec = self.codec.message_codec(round_idx)
        response = self.prover.respond(
            instance, round_idx, self.prover_randomness,
            self.prover_messages, self.rng)
        missing = [v for v in self.vertices if v not in response]
        if missing:
            raise ProtocolViolation(
                f"prover left nodes without a round-{round_idx} "
                f"message: {missing[:5]}")
        sent = {v: dict(response[v]) for v in self.vertices}
        self.transcript.messages[round_idx] = sent
        self.prover_messages[round_idx] = sent
        self.round_bits.setdefault(round_idx, 0)

        delivered: Dict[int, EncodedFrame] = {}
        for v in self.vertices:
            if self.faults.crashed(v, round_idx):
                continue
            frame = codec.encode(sent[v])
            self._transmit(
                PROVER, v, round_idx, EV_SEND, frame,
                on_deliver=lambda f, v=v: delivered.__setitem__(v, f))
        self.queue.drain()

        for v in self.vertices:
            if v not in delivered:
                continue
            frame = delivered[v]
            # Corruption preserves length, so the charge equals the
            # declared merlin_bits of the *sent* message either way.
            self.node_cost[v] += frame.charged_bits
            self.round_bits[round_idx] += frame.charged_bits
            self.node_frames[v][round_idx] = frame
            self.store_messages[v].setdefault(
                round_idx, {})[v] = codec.decode(frame)

        # Cross-check relay phase.
        broadcast = protocol.broadcast_fields(round_idx)
        hashed = self.crosscheck == CROSSCHECK_HASHED and broadcast
        graph = instance.graph
        for v in self.vertices:
            if self.faults.crashed(v, round_idx) or v not in delivered:
                continue
            neighbors = graph.neighbors(v)
            if not neighbors:
                continue
            decoded = self.store_messages[v][round_idx][v]
            if not hashed:
                relay_frame = codec.encode(decoded)
                for u in neighbors:
                    def set_msg(f, u=u, v=v):
                        self.store_messages[u].setdefault(
                            round_idx, {})[v] = codec.decode(f)
                    self._transmit(v, u, round_idx, EV_RELAY, relay_frame,
                                   on_deliver=set_msg)
            else:
                self._relay_hashed(v, round_idx, codec, decoded,
                                   broadcast, neighbors)
        self.queue.drain()

    def _relay_hashed(self, v: int, round_idx: int, codec, decoded,
                      broadcast, neighbors) -> None:
        """Relay unicast fields exactly; broadcast fields travel as
        hashed-equality fingerprints over their payload spans."""
        frame_v = self.node_frames[v][round_idx]
        unicast = {name: value for name, value in decoded.items()
                   if name not in broadcast}
        uni_frame = codec.encode(unicast)
        fingerprints = []
        fingerprint_bits = 0
        for name in sorted(broadcast):
            span = frame_v.span_of(name)
            if span is None or span[1] <= span[0]:
                continue  # absent/escaped: neighbors reject on absence
            width = span[1] - span[0]
            value = frame_v.payload.slice_int(*span)
            scheme = equality_scheme(width)
            seed, fingerprint = scheme.node_message(value, self.net_rng)
            fingerprints.append((name, width, seed, fingerprint))
            fingerprint_bits += scheme.message_bits
        fps = tuple(fingerprints)

        for u in neighbors:
            def check_and_store(f, u=u, v=v, fps=fps):
                message = codec.decode(f)
                own_frame = self.node_frames[u].get(round_idx)
                own_message = self.store_messages[u].get(
                    round_idx, {}).get(u)
                ok = own_frame is not None and own_message is not None
                if ok:
                    for name, width, seed, fingerprint in fps:
                        own_span = own_frame.span_of(name)
                        if (own_span is None
                                or own_span[1] - own_span[0] != width):
                            ok = False
                            break
                        own_value = own_frame.payload.slice_int(*own_span)
                        if not equality_scheme(width).check(
                                own_value, (seed, fingerprint)):
                            ok = False
                            break
                        # Fingerprint matched: the values agree, so the
                        # receiver substitutes its own copy.
                        message[name] = own_message.get(name)
                if ok:
                    self.store_messages[u].setdefault(
                        round_idx, {})[v] = message
                else:
                    self.broadcast_violations += 1
                    self.violating.add(u)
                    self._fault(EV_VIOLATION)
                    self.trace.record(EV_VIOLATION, t=self.queue.time,
                                      node=u, src=v, round=round_idx)
            self._transmit(v, u, round_idx, EV_RELAY, uni_frame,
                           extra_bits=fingerprint_bits,
                           on_deliver=check_and_store)

    # -- decision ----------------------------------------------------------

    def _decide(self) -> Tuple[bool, Dict[int, bool]]:
        protocol = self.protocol
        plan = self.context.broadcast_plan(protocol)
        closed = self.context.closed_neighborhoods
        last_round = protocol.num_rounds - 1
        decisions: Dict[int, bool] = {}
        for v in self.vertices:
            if self.faults.crashed(v, last_round):
                decisions[v] = False
            elif v in self.violating:
                decisions[v] = False
            else:
                closed_v = closed[v]
                view = LocalView(
                    node=v,
                    n=self.instance.n,
                    closed_neighborhood=closed_v,
                    node_input=self.instance.input_of(v),
                    randomness={
                        r: {u: vals[u] for u in closed_v if u in vals}
                        for r, vals in
                        self.store_randomness[v].items()},
                    messages={
                        r: {u: msgs[u] for u in closed_v if u in msgs}
                        for r, msgs in self.store_messages[v].items()},
                )
                decisions[v] = _decide_node(protocol, view, plan)
            self.trace.record(EV_DECIDE, t=self.queue.time, node=v,
                              accept=decisions[v])
        return all(decisions.values()), decisions

    # -- top level ---------------------------------------------------------

    def _publish_obs(self, span, accepted: bool) -> None:
        """Emit the simulation's counters under ``netsim/*`` and stamp
        the ``netsim.run`` span — called once per run, observability on."""
        proof_bits = sum(self.node_cost.values())
        if span is not None:
            span.set(accepted=accepted,
                     lost_frames=self.lost_frames,
                     broadcast_violations=self.broadcast_violations)
            span.add("proof_bits", proof_bits)
        sess = self.obs
        if sess is None or not sess.metrics_enabled:
            return
        metrics = sess.metrics
        metrics.counter("netsim/runs").inc()
        metrics.counter("netsim/proof_bits").inc(proof_bits)
        metrics.counter("netsim/channel_bits").inc(
            sum(self.channel_bits.values()))
        metrics.counter("netsim/crosscheck_bits").inc(self.crosscheck_bits)
        metrics.counter("netsim/overhead_bits").inc(self.overhead_bits)
        metrics.counter("netsim/lost_frames").inc(self.lost_frames)
        metrics.counter("netsim/broadcast_violations").inc(
            self.broadcast_violations)
        for kind in sorted(self.fault_events):
            metrics.counter(f"netsim/faults/{kind}").inc(
                self.fault_events[kind])

    def run(self) -> NetExecutionResult:
        outer = nullcontext() if self.obs is None else self.obs.span(
            "netsim.run", protocol=self.protocol.name,
            n=self.instance.n, crosscheck=self.crosscheck)
        with outer as span:
            self.prover.reset()
            self.prover.bind_context(self.context)
            for round_idx, kind in enumerate(self.protocol.pattern):
                self.trace.record(EV_ROUND, t=self.queue.time,
                                  round=round_idx, type=kind)
                self._record_crashes(round_idx)
                if kind == ROUND_ARTHUR:
                    self._arthur_round(round_idx)
                elif kind == ROUND_MERLIN:
                    self._merlin_round(round_idx)
                else:  # pragma: no cover - patterns are library-defined
                    raise ValueError(f"unknown round kind {kind!r}")
            accepted, decisions = self._decide()
            if self.obs is not None:
                self._publish_obs(span, accepted)
        return NetExecutionResult(
            accepted=accepted,
            decisions=decisions,
            transcript=self.transcript,
            node_cost_bits=self.node_cost,
            channel_bits=self.channel_bits,
            round_bits=self.round_bits,
            crosscheck_bits=self.crosscheck_bits,
            overhead_bits=self.overhead_bits,
            broadcast_violations=self.broadcast_violations,
            lost_frames=self.lost_frames,
            fault_events=dict(self.fault_events),
            trace=self.trace if self.trace.enabled else None,
        )


def run_netsim(protocol: Protocol, instance: Instance, prover: Prover,
               rng: random.Random, *, faults: FaultPlan = FAULT_FREE,
               crosscheck: str = CROSSCHECK_EXACT, net_seed: int = 0,
               context: Optional[InstanceContext] = None,
               trace: bool = True,
               stream: bool = False) -> NetExecutionResult:
    """Execute one protocol run on the message-passing substrate.

    ``rng`` drives the protocol exactly as in the abstract runner;
    ``net_seed`` (plus a fixed salt) seeds the independent net rng for
    fault draws and cross-check fingerprints.  ``crosscheck`` selects
    the relay phase: ``"exact"`` (full messages) or ``"hashed"``
    (fingerprinted broadcast fields).
    """
    if crosscheck not in (CROSSCHECK_EXACT, CROSSCHECK_HASHED):
        raise ValueError(f"unknown crosscheck mode {crosscheck!r}")
    if context is None:
        context = InstanceContext(instance, protocol)
    elif context.instance is not instance:
        raise ValueError("context was built for a different instance")
    context.ensure_validated(protocol)
    return _Simulation(protocol, instance, prover, rng, faults,
                       crosscheck, net_seed, context, trace,
                       stream).run()


def _netsim_trial_batch(protocol: Protocol, instance: Instance,
                        prover: Prover, context: InstanceContext,
                        seed: int, start: int, count: int,
                        faults: FaultPlan, crosscheck: str
                        ) -> Tuple[int, Collected]:
    """Run netsim trials ``start .. start+count-1``; with an active
    observability session the per-run ``netsim.run`` spans and the
    ``netsim/*`` counters accumulate into a buffer session returned as
    the ``collected`` element (merged in trial order by the caller, so
    parallel traces equal serial ones)."""
    accepted = 0
    with collecting() as buf:
        for t in range(start, start + count):
            result = run_netsim(protocol, instance, prover,
                                random.Random(seed + t), faults=faults,
                                crosscheck=crosscheck, net_seed=seed + t,
                                context=context, trace=False)
            accepted += result.accepted
        if buf is not None and buf.metrics_enabled:
            buf.metrics.counter("netsim/trials").inc(count)
        collected = export_collected(buf)
    return accepted, collected


#: Fork-inherited worker state, mirroring ``core.runner._WORKER_STATE``.
_NETSIM_WORKER_STATE: Optional[Tuple[Protocol, Instance, Prover,
                                     InstanceContext, int, FaultPlan,
                                     str]] = None


def _netsim_worker_batch(span: Tuple[int, int]) -> Tuple[int, Collected]:
    assert _NETSIM_WORKER_STATE is not None
    protocol, instance, prover, context, seed, faults, crosscheck = \
        _NETSIM_WORKER_STATE
    start, count = span
    return _netsim_trial_batch(protocol, instance, prover, context,
                               seed, start, count, faults, crosscheck)


def netsim_trials(protocol: Protocol, instance: Instance, prover: Prover,
                  trials: int, seed: int, *,
                  faults: FaultPlan = FAULT_FREE,
                  crosscheck: str = CROSSCHECK_EXACT,
                  workers: int = 1,
                  context: Optional[InstanceContext] = None
                  ) -> AcceptanceEstimate:
    """Monte-Carlo acceptance estimation on the netsim substrate.

    Trial ``t`` runs on protocol rng ``random.Random(seed + t)`` and
    net seed ``seed + t``, so the estimate is a pure function of its
    arguments — independent of ``workers`` and chunking, exactly like
    ``core.runner.run_trials``.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if context is None:
        context = InstanceContext(instance, protocol)
    elif context.instance is not instance:
        raise ValueError("context was built for a different instance")
    context.ensure_validated(protocol)

    start_time = _time.perf_counter()
    workers = min(workers, max(trials, 1))
    pool_ctx = _fork_pool_context() if workers > 1 and trials > 1 else None

    sess = active()
    outer = nullcontext() if sess is None else sess.span(
        "netsim.netsim_trials", protocol=protocol.name, n=instance.n,
        trials=trials, seed=seed, crosscheck=crosscheck)
    with outer as span:
        if pool_ctx is None:
            accepted, collected = _netsim_trial_batch(
                protocol, instance, prover, context, seed, 0, trials,
                faults, crosscheck)
            merge_collected(sess, collected)
            used_workers = 1
        else:
            # Warm the context in-parent on trial 0, then fork; merge
            # worker buffers in trial order (parallel ≡ serial traces).
            accepted, collected = _netsim_trial_batch(
                protocol, instance, prover, context, seed, 0, 1,
                faults, crosscheck)
            merge_collected(sess, collected)
            global _NETSIM_WORKER_STATE
            _NETSIM_WORKER_STATE = (protocol, instance, prover, context,
                                    seed, faults, crosscheck)
            try:
                with pool_ctx.Pool(processes=workers) as pool:
                    parts = pool.map(_netsim_worker_batch,
                                     _spans(trials - 1, workers, 1))
            finally:
                _NETSIM_WORKER_STATE = None
            for part_accepted, part_collected in parts:
                accepted += part_accepted
                merge_collected(sess, part_collected)
            used_workers = workers

        elapsed = _time.perf_counter() - start_time
        if span is not None:
            span.set(accepted=accepted)
            span.note(workers=used_workers)
        if sess is not None and sess.metrics_enabled:
            sess.metrics.timer("netsim/seconds/batch").inc(elapsed)

    return AcceptanceEstimate(
        accepted=accepted,
        trials=trials,
        elapsed_seconds=elapsed,
        workers=used_workers,
        timed=True,
    )


# -- cost declaration -----------------------------------------------------

from ..ledger.declare import CostDeclaration, phase  # noqa: E402

#: The substrate's broadcast-echo cross-checks (E13): every node
#: forwards its broadcast-checked fields to its neighbors, so the
#: network-total crosscheck traffic on a bounded-degree graph is
#: O(n · log n) for Protocol 1's O(log n)-bit broadcast fields.
COST_DECLARATIONS = (
    CostDeclaration(
        key="netsim-crosscheck",
        title="Wire-substrate broadcast cross-checks (E13)",
        pattern="", asymptotic="O(n log n) network-total",
        reference="Lemma 3.3 broadcast checks on the wire substrate "
                  "(NETSIM.md)",
        phases=(
            phase("crosscheck", "verify", "c * n * log2(n)",
                  "neighbor echo of broadcast-checked fields, summed "
                  "over the whole network"),
        ),
        total=phase("total", "verify", "c * n * log2(n)",
                    "bounded-degree echo of O(log n)-bit fields"),
    ),
)
