"""The netsim acceptance gates: equivalence and the fault matrix.

Two reproducible checks tie the substrate to the abstract runner:

* :func:`equivalence_report` — with faults off, a netsim execution of
  every golden-battery case must be **bit-identical** to
  ``core.runner.run_protocol``: same verdicts, same per-node bit
  costs, same serialized transcript JSON.  This is the CI gate.
* :func:`fault_matrix` — a battery of fault configurations on one
  protocol, measuring acceptance and detection rates.  The targeted
  broadcast-corruption row checks that hashed-equality cross-checking
  (:mod:`repro.network.randomized_verification`) detects a flipped
  broadcast field at least as often as the analytic ``1 − m/p`` bound.
"""

from __future__ import annotations

import json
import random
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List

from ..core import Instance, execution_to_jsonable, run_protocol
from ..obs.session import active
from ..core.model import Protocol
from ..graphs import (DSymLayout, Graph, cycle_graph, dsym_graph,
                      path_graph, star_graph)
from ..protocols import (ConnectivityLCP, DSymDAMProtocol,
                         FixedMappingProtocol, GNIDAMProtocol,
                         GNIGoldwasserSipserProtocol, GeneralGNIProtocol,
                         MARK_NONE, MARK_ONE, MARK_ZERO, MarkedGNIProtocol,
                         SymDAMProtocol, SymDMAMProtocol, SymLCP,
                         gni_instance, marked_instance)
from .faults import PROVER, ChannelPolicy, FaultPlan
from .sim import (CROSSCHECK_EXACT, CROSSCHECK_HASHED, equality_scheme,
                  run_netsim)

#: The golden-transcript seed (PODC'18), shared with the test battery.
GOLDEN_SEED = 20180723

#: Golden cases cheap enough for the CI smoke gate.
SMOKE_CASES = ("sym-dmam", "sym-dam", "fixed-map", "sym-lcp",
               "connectivity-lcp", "gni-dam")


@dataclass(frozen=True)
class GoldenCase:
    """One (protocol, instance) pair from the golden battery."""

    name: str
    protocol: Protocol
    instance: Instance


def _marked_case() -> Instance:
    graph_edges = [(0, 1), (1, 2), (0, 2), (0, 3),
                   (4, 5), (5, 6), (6, 7), (3, 8), (8, 4)]
    marks = {v: MARK_ZERO for v in range(4)}
    marks.update({v: MARK_ONE for v in range(4, 8)})
    marks[8] = MARK_NONE
    return marked_instance(Graph(9, graph_edges), marks)


def golden_cases() -> List[GoldenCase]:
    """The golden battery, mirroring ``tests/test_golden_transcripts``:
    one representative honest YES execution per protocol."""
    cycle8 = Instance(cycle_graph(8))
    rotation = tuple((v + 1) % 8 for v in range(8))
    gni_yes = gni_instance(path_graph(4), star_graph(4))
    return [
        GoldenCase("sym-dmam", SymDMAMProtocol(8), cycle8),
        GoldenCase("sym-dam", SymDAMProtocol(6), Instance(cycle_graph(6))),
        GoldenCase("fixed-map", FixedMappingProtocol(rotation), cycle8),
        GoldenCase("dsym-dam", DSymDAMProtocol(DSymLayout(6, 2)),
                   Instance(dsym_graph(cycle_graph(6), 2))),
        GoldenCase("sym-lcp", SymLCP(8), cycle8),
        GoldenCase("connectivity-lcp", ConnectivityLCP(8), cycle8),
        GoldenCase("gni-damam",
                   GNIGoldwasserSipserProtocol(4, repetitions=6, q=5,
                                               threshold=0), gni_yes),
        GoldenCase("gni-dam",
                   GNIDAMProtocol(4, repetitions=4, q=5, threshold=0),
                   gni_yes),
        GoldenCase("gni-marked",
                   MarkedGNIProtocol(9, k=4, repetitions=4, q=5,
                                     threshold=0), _marked_case()),
        GoldenCase("gni-general",
                   GeneralGNIProtocol(4, repetitions=4, q=5, threshold=0),
                   gni_yes),
    ]


def _canonical_json(protocol: Protocol, instance: Instance,
                    result: Any) -> str:
    return json.dumps(execution_to_jsonable(protocol, instance, result),
                      sort_keys=True)


def equivalence_report(seed: int = GOLDEN_SEED,
                       smoke: bool = False) -> Dict[str, Any]:
    """Run the equivalence gate over the golden battery.

    For each case, the abstract runner and a faults-off netsim run (in
    both cross-check modes) execute on identically-seeded rngs; the
    case is *equivalent* when verdicts, per-node costs and the full
    serialized transcript agree byte-for-byte.
    """
    sess = active()
    outer = nullcontext() if sess is None else sess.span(
        "netsim.equivalence_report", seed=seed, smoke=smoke)
    cases = []
    with outer as gate_span:
        for case in golden_cases():
            if smoke and case.name not in SMOKE_CASES:
                continue
            cases.append(_equivalence_case(case, seed, sess))
        if gate_span is not None:
            gate_span.set(cases=len(cases),
                          all_equivalent=all(row["equivalent"]
                                             for row in cases))
    return {
        "seed": seed,
        "cases": cases,
        "all_equivalent": all(row["equivalent"] for row in cases),
    }


def _equivalence_case(case: GoldenCase, seed: int, sess) -> Dict[str, Any]:
    """One equivalence-gate row (optionally under a per-case span)."""
    with (nullcontext() if sess is None else
          sess.span("netsim.equivalence_case", case=case.name,
                    protocol=case.protocol.name, n=case.instance.n)):
        abstract = run_protocol(case.protocol, case.instance,
                                case.protocol.honest_prover(),
                                random.Random(seed))
        abstract_json = _canonical_json(case.protocol, case.instance,
                                        abstract)
        row: Dict[str, Any] = {
            "case": case.name,
            "n": case.instance.n,
            "accepted": abstract.accepted,
            "max_cost_bits": abstract.max_cost_bits,
        }
        for mode in (CROSSCHECK_EXACT, CROSSCHECK_HASHED):
            net = run_netsim(case.protocol, case.instance,
                             case.protocol.honest_prover(),
                             random.Random(seed), crosscheck=mode,
                             net_seed=seed, trace=False)
            same = (net.accepted == abstract.accepted
                    and net.decisions == abstract.decisions
                    and net.node_cost_bits == abstract.node_cost_bits
                    and _canonical_json(case.protocol, case.instance,
                                        net) == abstract_json)
            row[f"equivalent_{mode}"] = same
            if mode == CROSSCHECK_EXACT:
                row["overhead_bits"] = net.overhead_bits
                row["crosscheck_bits"] = net.crosscheck_bits
        row["equivalent"] = (row["equivalent_exact"]
                             and row["equivalent_hashed"])
    return row


def _fault_rows(protocol: Protocol) -> List[Dict[str, Any]]:
    """The fault-matrix configurations for one protocol instance."""
    corrupt_seed = ChannelPolicy(corrupt=1.0, flips=1,
                                 corrupt_field="seed")
    return [
        {"fault": "baseline", "faults": FaultPlan(),
         "crosscheck": CROSSCHECK_EXACT, "expect_accept": 1.0},
        {"fault": "duplicate-0.5",
         "faults": FaultPlan(default=ChannelPolicy(duplicate=0.5)),
         "crosscheck": CROSSCHECK_EXACT, "expect_accept": 1.0},
        {"fault": "jitter-3",
         "faults": FaultPlan(default=ChannelPolicy(jitter=3)),
         "crosscheck": CROSSCHECK_EXACT, "expect_accept": 1.0},
        {"fault": "drop-0.3-retry-5",
         "faults": FaultPlan(default=ChannelPolicy(drop=0.3, timeout=2,
                                                   max_retries=5)),
         "crosscheck": CROSSCHECK_EXACT},
        {"fault": "drop-0.6-no-retry",
         "faults": FaultPlan(default=ChannelPolicy(drop=0.6,
                                                   max_retries=0)),
         "crosscheck": CROSSCHECK_EXACT, "expect_accept": 0.0},
        {"fault": "crash-node-3",
         "faults": FaultPlan(crashes={3: 0}),
         "crosscheck": CROSSCHECK_EXACT, "expect_accept": 0.0},
        {"fault": "byzantine-node-2",
         "faults": FaultPlan(byzantine=frozenset({2})),
         "crosscheck": CROSSCHECK_EXACT, "expect_accept": 0.0},
        {"fault": "corrupt-broadcast-seed",
         "faults": FaultPlan(channels={(PROVER, 3): corrupt_seed}),
         "crosscheck": CROSSCHECK_HASHED, "expect_accept": 0.0,
         "detection": True},
    ]


def _fault_counter_values(sess) -> Dict[str, float]:
    """Current ``netsim/faults/<kind>`` counter values (kind-keyed)."""
    prefix = "netsim/faults/"
    return {name[len(prefix):]: snap["value"]
            for name, snap in sess.metrics.snapshot().items()
            if name.startswith(prefix) and snap["kind"] == "counter"}


def fault_matrix(seed: int = GOLDEN_SEED, trials: int = 20,
                 n: int = 8) -> Dict[str, Any]:
    """Measure acceptance/detection rates across fault configurations.

    Runs ``SymDMAMProtocol(n)`` with its honest prover on a cycle:
    every rejection is then attributable to the injected fault.  The
    ``corrupt-broadcast-seed`` row flips one bit of the broadcast
    ``seed`` field on the prover→node-3 channel and measures how often
    hashed-equality cross-checking reports a violation; the analytic
    detection bound is ``1 − m/p`` for the field-width scheme.

    Every row also tallies the injected fault events
    (``result.fault_events`` summed over its trials), and — when an
    ambient obs session is recording metrics — gates the row on the
    ``netsim/faults/<kind>`` counter deltas matching those tallies
    **exactly**: injected and observed counts may never drift apart.
    """
    protocol = SymDMAMProtocol(n)
    instance = Instance(cycle_graph(n))
    analytic = 1.0 - equality_scheme(protocol.family.seed_bits).error_bound
    sess = active()
    metrics_on = sess is not None and sess.metrics_enabled
    rows = []
    for spec in _fault_rows(protocol):
        accepted = 0
        detected = 0
        lost = 0
        fault_events: Dict[str, int] = {}
        counters_before = _fault_counter_values(sess) if metrics_on \
            else {}
        with (nullcontext() if sess is None else
              sess.span("netsim.fault_case", fault=spec["fault"],
                        protocol=protocol.name, n=n, trials=trials)):
            for t in range(trials):
                result = run_netsim(protocol, instance,
                                    protocol.honest_prover(),
                                    random.Random(seed + t),
                                    faults=spec["faults"],
                                    crosscheck=spec["crosscheck"],
                                    net_seed=seed + t, trace=False)
                accepted += result.accepted
                detected += result.broadcast_violations > 0
                lost += result.lost_frames
                for kind, count in result.fault_events.items():
                    fault_events[kind] = fault_events.get(kind, 0) \
                        + count
        row: Dict[str, Any] = {
            "fault": spec["fault"],
            "crosscheck": spec["crosscheck"],
            "trials": trials,
            "accept_rate": accepted / trials,
            "lost_frames": lost,
            "fault_events": dict(sorted(fault_events.items())),
            "ok": True,
        }
        if "expect_accept" in spec:
            row["expect_accept"] = spec["expect_accept"]
            row["ok"] = row["accept_rate"] == spec["expect_accept"]
        if spec.get("detection"):
            row["detection_rate"] = detected / trials
            row["analytic_bound"] = analytic
            row["ok"] = row["ok"] and row["detection_rate"] >= analytic
        if metrics_on:
            counters_after = _fault_counter_values(sess)
            observed = {
                kind: int(counters_after.get(kind, 0.0)
                          - counters_before.get(kind, 0.0))
                for kind in set(counters_before) | set(counters_after)}
            observed = {kind: count for kind, count in observed.items()
                        if count}
            row["observed_events"] = dict(sorted(observed.items()))
            row["counters_match"] = observed == fault_events
            row["ok"] = row["ok"] and row["counters_match"]
        rows.append(row)
    return {
        "seed": seed,
        "protocol": protocol.name,
        "n": n,
        "trials": trials,
        "rows": rows,
        "all_ok": all(row["ok"] for row in rows),
    }
