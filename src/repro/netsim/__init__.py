"""repro.netsim — the event-driven message-passing substrate.

Runs the same :class:`~repro.core.model.Protocol` objects as the
abstract runner, but as communicating actors over channels: every
challenge and message crosses the wire as an encoded bitstring, faults
are injectable per channel, and every bit is counted.  With faults off
an execution is bit-identical to ``core.runner.run_protocol`` — the
equivalence gate (:mod:`repro.netsim.harness`) enforces exactly that.
"""

from .audit import AuditEntry, AuditReport, audit_execution, run_audit
from .bits import Bits
from .codec import (ChallengeCodec, CodecError, EncodedFrame,
                    MessageCodec)
from .codecs import WireCodec, register_codec, wire_codec
from .events import EventQueue, EventTrace, trace_digest_of
from .faults import (FAULT_FREE, PROVER, RELIABLE, ChannelPolicy,
                     FaultPlan)
from .harness import (GOLDEN_SEED, equivalence_report, fault_matrix,
                      golden_cases)
from .sim import (CROSSCHECK_EXACT, CROSSCHECK_HASHED,
                  NetExecutionResult, equality_scheme, netsim_trials,
                  run_netsim)

__all__ = [
    "AuditEntry", "AuditReport", "audit_execution", "run_audit",
    "Bits", "ChallengeCodec", "CodecError", "EncodedFrame",
    "MessageCodec", "WireCodec", "register_codec", "wire_codec",
    "EventQueue", "EventTrace", "trace_digest_of",
    "FAULT_FREE", "PROVER", "RELIABLE", "ChannelPolicy", "FaultPlan",
    "GOLDEN_SEED", "equivalence_report", "fault_matrix", "golden_cases",
    "CROSSCHECK_EXACT", "CROSSCHECK_HASHED", "NetExecutionResult",
    "equality_scheme", "netsim_trials", "run_netsim",
]
