"""Wire-codec registration for every protocol in the library.

Each protocol class registers a builder that maps a protocol *instance*
to its :class:`WireCodec`: one :class:`~repro.netsim.codec
.ChallengeCodec` per Arthur round and one ordered
:class:`~repro.netsim.codec.MessageCodec` per Merlin round.  Field
widths are derived from the same protocol parameters ``merlin_bits``
uses (identifier widths, hash primes, repetition counts), but through
an *independent* implementation — the wire-cost audit cross-checks the
two, so a drift in either is a test failure, not a silent bias.

Subclasses resolve through the MRO: ``DSymDAMProtocol`` inherits the
``FixedMappingProtocol`` codec, ``GNIDAMProtocol`` the base GNI codec.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Type

from ..core.model import (Protocol, bits_for_identifier, bits_for_value)
from ..network.spanning_tree import FIELD_DIST, FIELD_PARENT, FIELD_ROOT
from ..protocols.fixed_map import FixedMappingProtocol
from ..protocols.gni import GNIGoldwasserSipserProtocol
from ..protocols.gni_general import GeneralGNIProtocol
from ..protocols.gni_marked import MarkedGNIProtocol
from ..protocols.lcp import ConnectivityLCP, DSymLCP, SymLCP
from ..protocols.sym_dam import SymDAMProtocol
from ..protocols.sym_dmam import SymDMAMProtocol
from ..protocols import fixed_map, gni, gni_general, gni_marked, lcp, sym_dam
from ..protocols import sym_dmam
from .codec import (ChallengeCodec, ClaimSeq, FieldCodec, FixedTupleSeq,
                    FixedUIntSeq, MessageCodec, OptUIntSeq, TupleSeq, UInt,
                    UIntSeq, UIntTuple)


class WireCodec:
    """The complete wire format of one protocol instance."""

    def __init__(self, protocol: Protocol,
                 challenges: Dict[int, ChallengeCodec],
                 messages: Dict[int, MessageCodec]) -> None:
        self.protocol = protocol
        self._challenges = challenges
        self._messages = messages

    def challenge_codec(self, round_idx: int) -> ChallengeCodec:
        try:
            return self._challenges[round_idx]
        except KeyError:
            raise LookupError(
                f"{self.protocol.name}: round {round_idx} has no "
                "challenge codec (not an Arthur round?)") from None

    def message_codec(self, round_idx: int) -> MessageCodec:
        try:
            return self._messages[round_idx]
        except KeyError:
            raise LookupError(
                f"{self.protocol.name}: round {round_idx} has no "
                "message codec (not a Merlin round?)") from None


_BUILDERS: Dict[Type[Protocol], Callable[[Protocol], WireCodec]] = {}


def register_codec(protocol_cls: Type[Protocol]):
    """Class decorator target: register a codec builder for a protocol
    class (and, via the MRO, its subclasses)."""
    def deco(builder: Callable[[Protocol], WireCodec]):
        _BUILDERS[protocol_cls] = builder
        return builder
    return deco


def wire_codec(protocol: Protocol) -> WireCodec:
    """The wire codec for ``protocol``, resolved through its MRO."""
    for cls in type(protocol).__mro__:
        if cls in _BUILDERS:
            return _BUILDERS[cls](protocol)
    raise LookupError(
        f"no wire codec registered for {type(protocol).__name__}")


def _seed_challenge(seed_bits: int) -> ChallengeCodec:
    return ChallengeCodec(UInt(seed_bits), seed_bits)


@register_codec(SymDMAMProtocol)
def _sym_dmam_codec(protocol: SymDMAMProtocol) -> WireCodec:
    id_bits = bits_for_identifier(protocol.n)
    value_bits = bits_for_value(protocol.family.p)
    seed_bits = protocol.family.seed_bits
    m0 = MessageCodec([
        (FIELD_ROOT, UInt(id_bits)),
        (sym_dmam.FIELD_RHO, UInt(id_bits)),
        (FIELD_PARENT, UInt(id_bits)),
        (FIELD_DIST, UInt(id_bits)),
    ])
    m2 = MessageCodec([
        (sym_dmam.FIELD_SEED, UInt(seed_bits)),
        (sym_dmam.FIELD_A, UInt(value_bits)),
        (sym_dmam.FIELD_B, UInt(value_bits)),
    ])
    return WireCodec(protocol,
                     {sym_dmam.ROUND_A1: _seed_challenge(seed_bits)},
                     {sym_dmam.ROUND_M0: m0, sym_dmam.ROUND_M2: m2})


@register_codec(SymDAMProtocol)
def _sym_dam_codec(protocol: SymDAMProtocol) -> WireCodec:
    id_bits = bits_for_identifier(protocol.n)
    value_bits = bits_for_value(protocol.family.p)
    seed_bits = protocol.family.seed_bits
    m1 = MessageCodec([
        (sym_dam.FIELD_RHO_TABLE, UIntTuple(protocol.n, id_bits)),
        (sym_dam.FIELD_SEED, UInt(seed_bits)),
        (FIELD_ROOT, UInt(id_bits)),
        (FIELD_PARENT, UInt(id_bits)),
        (FIELD_DIST, UInt(id_bits)),
        (sym_dam.FIELD_A, UInt(value_bits)),
        (sym_dam.FIELD_B, UInt(value_bits)),
    ])
    return WireCodec(protocol,
                     {sym_dam.ROUND_A0: _seed_challenge(seed_bits)},
                     {sym_dam.ROUND_M1: m1})


@register_codec(FixedMappingProtocol)
def _fixed_map_codec(protocol: FixedMappingProtocol) -> WireCodec:
    id_bits = bits_for_identifier(protocol.n)
    value_bits = bits_for_value(protocol.family.p)
    seed_bits = protocol.family.seed_bits
    m1 = MessageCodec([
        (fixed_map.FIELD_SEED, UInt(seed_bits)),
        (FIELD_PARENT, UInt(id_bits)),
        (FIELD_DIST, UInt(id_bits)),
        (fixed_map.FIELD_A, UInt(value_bits)),
        (fixed_map.FIELD_B, UInt(value_bits)),
    ])
    return WireCodec(protocol,
                     {fixed_map.ROUND_A0: _seed_challenge(seed_bits)},
                     {fixed_map.ROUND_M1: m1})


@register_codec(SymLCP)
def _sym_lcp_codec(protocol: SymLCP) -> WireCodec:
    n = protocol.n
    m0 = MessageCodec([
        (lcp.FIELD_MATRIX, UInt(n * n)),
        (lcp.FIELD_RHO, UIntTuple(n, bits_for_identifier(n))),
    ])
    return WireCodec(protocol, {}, {lcp.ROUND_M0: m0})


@register_codec(DSymLCP)
def _dsym_lcp_codec(protocol: DSymLCP) -> WireCodec:
    n = protocol.total_n
    m0 = MessageCodec([(lcp.FIELD_MATRIX, UInt(n * n))])
    return WireCodec(protocol, {}, {lcp.ROUND_M0: m0})


@register_codec(ConnectivityLCP)
def _connectivity_lcp_codec(protocol: ConnectivityLCP) -> WireCodec:
    id_bits = bits_for_identifier(protocol.n)
    m0 = MessageCodec([
        (FIELD_ROOT, UInt(id_bits)),
        (FIELD_PARENT, UInt(id_bits)),
        (FIELD_DIST, UInt(id_bits)),
        (lcp.FIELD_SIZE, UInt(bits_for_identifier(protocol.n + 1))),
    ])
    return WireCodec(protocol, {}, {lcp.ROUND_M0: m0})


def _gs_widths(protocol) -> Tuple[int, int]:
    """(node-part width, target width) of one GS challenge element."""
    node_bits = protocol.hash.node_seed_bits
    y_bits = protocol.hash.root_seed_bits - 3 * node_bits
    return node_bits, y_bits


@register_codec(GNIGoldwasserSipserProtocol)
def _gni_codec(protocol: GNIGoldwasserSipserProtocol) -> WireCodec:
    n = protocol.n
    id_bits = bits_for_identifier(n)
    q_bits = bits_for_value(protocol.hash.big_q)
    node_bits, y_bits = _gs_widths(protocol)
    rep_widths = (node_bits, node_bits, node_bits, node_bits, y_bits)
    echo_widths = (node_bits, node_bits, node_bits, y_bits)

    challenges = {}
    messages = {}
    for a_round, m_round in protocol.round_pairs():
        reps = protocol.batch_sizes[protocol._batch(a_round)]
        challenges[a_round] = ChallengeCodec(
            FixedTupleSeq(reps, rep_widths), reps * sum(rep_widths))
        fields: List[Tuple[str, FieldCodec]] = []
        if m_round == gni.ROUND_M1:
            fields += [(FIELD_PARENT, UInt(id_bits)),
                       (FIELD_DIST, UInt(id_bits))]
        fields += [
            (gni.FIELD_ECHO, TupleSeq(echo_widths)),
            (gni.FIELD_CLAIMS, ClaimSeq(n, id_bits, tables=1)),
            (gni.FIELD_PARTIALS, OptUIntSeq(q_bits)),
        ]
        messages[m_round] = MessageCodec(fields)
    return WireCodec(protocol, challenges, messages)


@register_codec(GeneralGNIProtocol)
def _gni_general_codec(protocol: GeneralGNIProtocol) -> WireCodec:
    n = protocol.n
    id_bits = protocol.id_bits
    q_bits = bits_for_value(protocol.hash.big_q)
    p2_bits = bits_for_value(protocol.aut_family.p)
    aut_bits = protocol.aut_family.seed_bits
    node_bits, y_bits = _gs_widths(protocol)
    rep_widths = (node_bits, node_bits, node_bits, node_bits, y_bits,
                  aut_bits)
    echo_widths = (node_bits, node_bits, node_bits, y_bits, aut_bits)

    challenges = {}
    messages = {}
    for a_round, m_round in ((gni_general.ROUND_A0, gni_general.ROUND_M1),
                             (gni_general.ROUND_A2, gni_general.ROUND_M3)):
        reps = protocol.batch_sizes[protocol._batch(a_round)]
        challenges[a_round] = ChallengeCodec(
            FixedTupleSeq(reps, rep_widths), reps * sum(rep_widths))
        fields: List[Tuple[str, FieldCodec]] = []
        if m_round == gni_general.ROUND_M1:
            fields += [(FIELD_PARENT, UInt(id_bits)),
                       (FIELD_DIST, UInt(id_bits))]
        fields += [
            (gni_general.FIELD_ECHO, TupleSeq(echo_widths)),
            (gni_general.FIELD_CLAIMS, ClaimSeq(n, id_bits, tables=2)),
            (gni_general.FIELD_PARTIALS, OptUIntSeq(q_bits)),
            (gni_general.FIELD_AUT_LEFT, OptUIntSeq(p2_bits)),
            (gni_general.FIELD_AUT_RIGHT, OptUIntSeq(p2_bits)),
        ]
        messages[m_round] = MessageCodec(fields)
    return WireCodec(protocol, challenges, messages)


@register_codec(MarkedGNIProtocol)
def _gni_marked_codec(protocol: MarkedGNIProtocol) -> WireCodec:
    n = protocol.n
    id_bits = bits_for_identifier(n)
    count_bits = bits_for_identifier(n + 1)
    q_bits = bits_for_value(protocol.hash.big_q)
    z_bits = bits_for_value(protocol.z_prime)
    node_bits, y_bits = _gs_widths(protocol)
    reps = protocol.repetitions
    rep_widths = (node_bits, node_bits, node_bits, node_bits, y_bits)
    echo_widths = (node_bits, node_bits, node_bits, y_bits)

    m1 = MessageCodec([
        (gni_marked.FIELD_MARK, UInt(2)),
        (FIELD_PARENT, UInt(id_bits)),
        (FIELD_DIST, UInt(id_bits)),
        (gni_marked.FIELD_COUNT0, UInt(count_bits)),
        (gni_marked.FIELD_COUNT1, UInt(count_bits)),
        (gni_marked.FIELD_ECHO, TupleSeq(echo_widths)),
        (gni_marked.FIELD_CLAIMS, ClaimSeq(n, id_bits, tables=0)),
        (gni_marked.FIELD_LABELS, OptUIntSeq(id_bits)),
    ])
    m3 = MessageCodec([
        (gni_marked.FIELD_ZECHO, UIntSeq(z_bits)),
        (gni_marked.FIELD_PARTIALS, OptUIntSeq(q_bits)),
        (gni_marked.FIELD_ZSUMS, OptUIntSeq(z_bits)),
    ])
    challenges = {
        gni_marked.ROUND_A0: ChallengeCodec(
            FixedTupleSeq(reps, rep_widths), reps * sum(rep_widths)),
        gni_marked.ROUND_A2: ChallengeCodec(
            FixedUIntSeq(reps, z_bits), reps * z_bits),
    }
    return WireCodec(protocol, challenges,
                     {gni_marked.ROUND_M1: m1, gni_marked.ROUND_M3: m3})
