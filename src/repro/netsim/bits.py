"""Bit-level primitives of the netsim wire format.

Everything netsim puts on a channel is ultimately a :class:`Bits`
value — an immutable bitstring of explicit length, MSB-first.  The
writer/reader pair below is deliberately tiny: Python integers are
arbitrary-precision, so a bitstring is just ``(value, length)`` and
appending ``width`` bits is one shift-or.

Positions are counted from the *start* of the string (bit 0 is the
first bit written), which is the convention the fault injector uses
when flipping payload bits and the audit uses when reporting field
spans.
"""

from __future__ import annotations

from typing import Iterable


class Bits:
    """An immutable bitstring: ``length`` bits, packed in ``value``.

    Bit ``i`` (from the start) is ``(value >> (length - 1 - i)) & 1``.
    """

    __slots__ = ("value", "length")

    def __init__(self, value: int, length: int) -> None:
        if length < 0:
            raise ValueError("length must be non-negative")
        if not isinstance(value, int) or value < 0 or value >> length:
            raise ValueError(
                f"value does not fit in {length} bits: {value!r}")
        self.value = value
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bits):
            return NotImplemented
        return self.value == other.value and self.length == other.length

    def __hash__(self) -> int:
        return hash((self.value, self.length))

    def bit(self, i: int) -> int:
        """Bit ``i`` counting from the start of the string."""
        if not 0 <= i < self.length:
            raise IndexError(f"bit {i} out of range for {self.length} bits")
        return (self.value >> (self.length - 1 - i)) & 1

    def flip(self, positions: Iterable[int]) -> "Bits":
        """A copy with the given bit positions flipped."""
        value = self.value
        for i in positions:
            if not 0 <= i < self.length:
                raise IndexError(
                    f"bit {i} out of range for {self.length} bits")
            value ^= 1 << (self.length - 1 - i)
        return Bits(value, self.length)

    def slice_int(self, start: int, end: int) -> int:
        """The integer packed in bits ``start .. end-1``."""
        if not 0 <= start <= end <= self.length:
            raise IndexError(f"span [{start}, {end}) out of range")
        width = end - start
        return (self.value >> (self.length - end)) & ((1 << width) - 1)

    def to01(self) -> str:
        return format(self.value, f"0{self.length}b") if self.length else ""

    def __repr__(self) -> str:
        preview = self.to01()
        if len(preview) > 48:
            preview = preview[:45] + "..."
        return f"Bits({preview!r}, length={self.length})"


EMPTY_BITS = Bits(0, 0)


class BitWriter:
    """Append-only bitstring builder (MSB-first)."""

    __slots__ = ("_value", "_length")

    def __init__(self) -> None:
        self._value = 0
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as exactly ``width`` bits."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if not isinstance(value, int) or value < 0 or value >> width:
            raise ValueError(
                f"value does not fit in {width} bits: {value!r}")
        self._value = (self._value << width) | value
        self._length += width

    def extend(self, bits: Bits) -> None:
        """Append a finished bitstring."""
        self._value = (self._value << bits.length) | bits.value
        self._length += bits.length

    def finish(self) -> Bits:
        return Bits(self._value, self._length)


class BitReader:
    """Sequential reader over a :class:`Bits` value."""

    __slots__ = ("_bits", "_pos")

    def __init__(self, bits: Bits) -> None:
        self._bits = bits
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._bits.length - self._pos

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits as an integer."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > self._bits.length:
            raise ValueError(
                f"bitstring exhausted: need {width} bits, "
                f"have {self.remaining}")
        value = self._bits.slice_int(self._pos, self._pos + width)
        self._pos += width
        return value
