"""Self-delimiting wire codecs for protocol messages.

Every Arthur challenge and Merlin field that netsim carries over a
channel is encoded to an actual bitstring by a codec from this module.
The encoding is split into three lanes:

* **payload** — the *charged* bits.  For a well-formed message this is
  exactly the protocol's declared cost (``arthur_bits`` /
  ``merlin_bits``); the wire-cost audit asserts that equality for
  every protocol, round and field in the library.
* **header** — uncharged framing: per-field presence flags, sequence
  lengths, per-element status bits.  Framing is what makes the payload
  self-delimiting; the paper's cost measure counts proof content, not
  link-layer framing, so these bits are accounted separately (netsim
  reports them as substrate overhead).
* **escapes** — values that are *not* wire-encodable (a list where a
  tuple belongs, a string where an int belongs).  They are carried
  out-of-band by reference and charged **0 bits** — the
  ``core.model.sequence_field`` convention, applied uniformly — so a
  malformed prover value round-trips *exactly* and the decision
  functions reject the same garbage the abstract runner saw.

Decoding a frame produced by :meth:`MessageCodec.encode` always
reproduces the original message dict exactly (up to key order), which
is what makes the faults-off netsim execution bit-identical to the
abstract runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple)

from ..core.model import uint_fits, uint_tuple_fits
from .bits import EMPTY_BITS, BitReader, Bits, BitWriter

#: Per-field status flags in the frame header (2 bits each).
FLAG_ABSENT = 0
FLAG_ENCODED = 1
FLAG_ESCAPED = 2

#: Header width of a sequence length (bounds sequences at 2^16 items).
LENGTH_BITS = 16


class CodecError(Exception):
    """The value is not wire-encodable under this codec."""


@dataclass(frozen=True)
class EncodedFrame:
    """One encoded message: charged payload plus uncharged framing.

    ``spans`` maps each encoded field to its ``[start, end)`` bit range
    in the payload — the audit uses it to name the offending field on a
    mismatch, and the fault injector to corrupt a specific field.
    """

    payload: Bits
    header: Bits
    escapes: Tuple[Any, ...] = ()
    extras: Tuple[Tuple[str, Any], ...] = ()
    spans: Tuple[Tuple[str, int, int], ...] = ()

    @property
    def charged_bits(self) -> int:
        return self.payload.length

    @property
    def overhead_bits(self) -> int:
        return self.header.length

    def span_of(self, name: str) -> Optional[Tuple[int, int]]:
        for field, start, end in self.spans:
            if field == name:
                return (start, end)
        return None

    def with_payload(self, payload: Bits) -> "EncodedFrame":
        """The same frame with a (possibly corrupted) payload."""
        if payload.length != self.payload.length:
            raise ValueError("corruption must preserve the payload length")
        return EncodedFrame(payload=payload, header=self.header,
                            escapes=self.escapes, extras=self.extras,
                            spans=self.spans)


class FieldCodec:
    """Encoder/decoder for one message field.

    ``encode`` writes charged bits to ``payload``, uncharged framing to
    ``header``, and non-encodable sub-values to ``escapes``; it raises
    :class:`CodecError` when the whole value is not encodable (the
    message codec then escapes the field wholesale at 0 charged bits).
    ``decode`` must read back exactly what ``encode`` wrote.
    """

    def encode(self, value: Any, payload: BitWriter, header: BitWriter,
               escapes: List[Any]) -> None:
        raise NotImplementedError

    def decode(self, payload: BitReader, header: BitReader,
               escapes: Iterator[Any]) -> Any:
        raise NotImplementedError


class UInt(FieldCodec):
    """A fixed-width unsigned integer."""

    def __init__(self, width: int) -> None:
        self.width = width

    def encode(self, value, payload, header, escapes) -> None:
        if not uint_fits(value, self.width):
            raise CodecError(f"not a {self.width}-bit uint: {value!r}")
        payload.write(value, self.width)

    def decode(self, payload, header, escapes):
        return payload.read(self.width)


class UIntTuple(FieldCodec):
    """A fixed-length tuple of fixed-width unsigned integers."""

    def __init__(self, length: int, width: int) -> None:
        self.length = length
        self.width = width

    def encode(self, value, payload, header, escapes) -> None:
        if not uint_tuple_fits(value, self.length, self.width):
            raise CodecError(
                f"not a {self.length}-tuple of {self.width}-bit uints")
        for item in value:
            payload.write(item, self.width)

    def decode(self, payload, header, escapes):
        return tuple(payload.read(self.width) for _ in range(self.length))


def _write_length(value: Any, header: BitWriter) -> int:
    """Common sequence prologue: require a tuple, frame its length."""
    if not isinstance(value, tuple):
        raise CodecError(f"not a tuple: {type(value).__name__}")
    if len(value) >= (1 << LENGTH_BITS):
        raise CodecError("sequence too long to frame")
    header.write(len(value), LENGTH_BITS)
    return len(value)


class UIntSeq(FieldCodec):
    """A variable-length tuple of ``width``-bit uints.

    Per element, 1 header bit: 0 = encoded (``width`` charged bits),
    1 = escaped (0 charged bits).
    """

    def __init__(self, width: int) -> None:
        self.width = width

    def encode(self, value, payload, header, escapes) -> None:
        _write_length(value, header)
        for item in value:
            if uint_fits(item, self.width):
                header.write(0, 1)
                payload.write(item, self.width)
            else:
                header.write(1, 1)
                escapes.append(item)

    def decode(self, payload, header, escapes):
        count = header.read(LENGTH_BITS)
        items = []
        for _ in range(count):
            if header.read(1):
                items.append(next(escapes))
            else:
                items.append(payload.read(self.width))
        return tuple(items)


class OptUIntSeq(FieldCodec):
    """A variable-length tuple of ``None | width-bit uint``.

    Per element, 2 header bits: 00 = ``None`` (0 charged bits — the
    cost model charges only claimed repetitions), 01 = encoded value,
    10 = escaped.
    """

    def __init__(self, width: int) -> None:
        self.width = width

    def encode(self, value, payload, header, escapes) -> None:
        _write_length(value, header)
        for item in value:
            if item is None:
                header.write(0, 2)
            elif uint_fits(item, self.width):
                header.write(1, 2)
                payload.write(item, self.width)
            else:
                header.write(2, 2)
                escapes.append(item)

    def decode(self, payload, header, escapes):
        count = header.read(LENGTH_BITS)
        items: List[Any] = []
        for _ in range(count):
            flag = header.read(2)
            if flag == 0:
                items.append(None)
            elif flag == 1:
                items.append(payload.read(self.width))
            else:
                items.append(next(escapes))
        return tuple(items)


class TupleSeq(FieldCodec):
    """A variable-length tuple of fixed-shape uint tuples (echo fields).

    Each element must be a tuple matching ``widths`` component-wise;
    per element, 1 header bit (0 = encoded, 1 = escaped).  A
    well-formed element charges ``sum(widths)`` bits.
    """

    def __init__(self, widths: Sequence[int]) -> None:
        self.widths = tuple(widths)

    def _element_fits(self, item: Any) -> bool:
        return (isinstance(item, tuple) and len(item) == len(self.widths)
                and all(uint_fits(part, width)
                        for part, width in zip(item, self.widths)))

    def encode(self, value, payload, header, escapes) -> None:
        _write_length(value, header)
        for item in value:
            if self._element_fits(item):
                header.write(0, 1)
                for part, width in zip(item, self.widths):
                    payload.write(part, width)
            else:
                header.write(1, 1)
                escapes.append(item)

    def decode(self, payload, header, escapes):
        count = header.read(LENGTH_BITS)
        items = []
        for _ in range(count):
            if header.read(1):
                items.append(next(escapes))
            else:
                items.append(tuple(payload.read(width)
                                   for width in self.widths))
        return tuple(items)


class ClaimSeq(FieldCodec):
    """A GNI claims tuple: ``None | (graph_bit, *permutation tables)``.

    Per element, 1 header bit (0 = encoded, 1 = escaped).  An encoded
    element always charges 1 payload bit for the found/pass flag; a
    present claim additionally charges 1 bit for the graph bit plus
    ``n·id_bits`` per permutation table — matching ``merlin_bits``.
    """

    def __init__(self, n: int, id_bits: int, tables: int) -> None:
        self.n = n
        self.id_bits = id_bits
        self.tables = tables

    def _claim_fits(self, claim: Any) -> bool:
        if not isinstance(claim, tuple) or len(claim) != 1 + self.tables:
            return False
        if not uint_fits(claim[0], 1):
            return False
        return all(uint_tuple_fits(table, self.n, self.id_bits)
                   for table in claim[1:])

    def encode(self, value, payload, header, escapes) -> None:
        _write_length(value, header)
        for claim in value:
            if claim is None:
                header.write(0, 1)
                payload.write(0, 1)  # the charged found/pass bit
            elif self._claim_fits(claim):
                header.write(0, 1)
                payload.write(1, 1)
                payload.write(claim[0], 1)
                for table in claim[1:]:
                    for item in table:
                        payload.write(item, self.id_bits)
            else:
                header.write(1, 1)
                escapes.append(claim)

    def decode(self, payload, header, escapes):
        count = header.read(LENGTH_BITS)
        items: List[Any] = []
        for _ in range(count):
            if header.read(1):
                items.append(next(escapes))
                continue
            if not payload.read(1):
                items.append(None)
                continue
            graph_bit = payload.read(1)
            tables = tuple(
                tuple(payload.read(self.id_bits) for _ in range(self.n))
                for _ in range(self.tables))
            items.append((graph_bit,) + tables)
        return tuple(items)


class MessageCodec:
    """The frame codec for one Merlin round: an *ordered* field schema.

    Field order is part of the wire format (it fixes payload bit
    positions, hence audit spans and targeted corruption); schemas list
    fields in a deterministic protocol-defined order.  Keys outside the
    schema ride the escape lane via ``extras`` so arbitrary prover
    dicts still round-trip exactly.
    """

    def __init__(self, fields: Sequence[Tuple[str, FieldCodec]]) -> None:
        self.fields = tuple(fields)
        self._names = frozenset(name for name, _ in self.fields)

    def encode(self, message: Mapping[str, Any]) -> EncodedFrame:
        payload = BitWriter()
        header = BitWriter()
        escapes: List[Any] = []
        spans: List[Tuple[str, int, int]] = []
        for name, codec in self.fields:
            if name not in message:
                header.write(FLAG_ABSENT, 2)
                continue
            value = message[name]
            sub_payload = BitWriter()
            sub_header = BitWriter()
            sub_escapes: List[Any] = []
            try:
                codec.encode(value, sub_payload, sub_header, sub_escapes)
            except CodecError:
                header.write(FLAG_ESCAPED, 2)
                escapes.append(value)
                spans.append((name, len(payload), len(payload)))
                continue
            header.write(FLAG_ENCODED, 2)
            start = len(payload)
            payload.extend(sub_payload.finish())
            header.extend(sub_header.finish())
            escapes.extend(sub_escapes)
            spans.append((name, start, len(payload)))
        extras = tuple((key, message[key]) for key in message
                       if key not in self._names)
        return EncodedFrame(payload=payload.finish(),
                            header=header.finish(),
                            escapes=tuple(escapes), extras=extras,
                            spans=tuple(spans))

    def decode(self, frame: EncodedFrame) -> Dict[str, Any]:
        payload = BitReader(frame.payload)
        header = BitReader(frame.header)
        escapes = iter(frame.escapes)
        message: Dict[str, Any] = {}
        for name, codec in self.fields:
            flag = header.read(2)
            if flag == FLAG_ABSENT:
                continue
            if flag == FLAG_ESCAPED:
                message[name] = next(escapes)
                continue
            message[name] = codec.decode(payload, header, escapes)
        for key, value in frame.extras:
            message[key] = value
        return message


class ChallengeCodec:
    """The frame codec for one Arthur round.

    Challenges are generated by the runner, never by an adversary, so
    there is no escape lane: a non-encodable challenge is a harness
    bug and raises.  A well-formed challenge charges exactly the
    protocol's declared ``arthur_bits``.
    """

    def __init__(self, codec: FieldCodec, width: int) -> None:
        self._codec = codec
        self.width = width

    def encode(self, value: Any) -> EncodedFrame:
        payload = BitWriter()
        header = BitWriter()
        escapes: List[Any] = []
        self._codec.encode(value, payload, header, escapes)
        if escapes:
            raise CodecError(
                f"challenge is not fully wire-encodable: {value!r}")
        return EncodedFrame(payload=payload.finish(),
                            header=header.finish(),
                            spans=(("challenge", 0, len(payload)),))

    def decode(self, frame: EncodedFrame) -> Any:
        payload = BitReader(frame.payload)
        header = BitReader(frame.header)
        return self._codec.decode(payload, header, iter(()))

    def zero_frame(self) -> EncodedFrame:
        """The all-zeros codeword — what the prover substitutes when a
        challenge frame is lost past the retransmit budget.  Challenge
        codecs are fixed-width and header-free, so the substitute is
        simply ``width`` zero bits."""
        return EncodedFrame(payload=Bits(0, self.width), header=EMPTY_BITS,
                            spans=(("challenge", 0, self.width),))


class FixedTupleSeq(FieldCodec):
    """A fixed-length tuple of fixed-shape uint tuples — the GNI
    challenge layout (``reps`` repetitions of ``(c, s, a, b, y, ...)``).
    No framing at all: length and shape are protocol constants."""

    def __init__(self, length: int, widths: Sequence[int]) -> None:
        self.length = length
        self.widths = tuple(widths)

    def encode(self, value, payload, header, escapes) -> None:
        if not isinstance(value, tuple) or len(value) != self.length:
            raise CodecError(f"not a {self.length}-tuple")
        for item in value:
            if (not isinstance(item, tuple)
                    or len(item) != len(self.widths)
                    or not all(uint_fits(part, width)
                               for part, width in zip(item, self.widths))):
                raise CodecError(f"malformed challenge element: {item!r}")
            for part, width in zip(item, self.widths):
                payload.write(part, width)

    def decode(self, payload, header, escapes):
        return tuple(
            tuple(payload.read(width) for width in self.widths)
            for _ in range(self.length))


class FixedUIntSeq(FieldCodec):
    """A fixed-length tuple of ``width``-bit uints (marked-GNI's A₂)."""

    def __init__(self, length: int, width: int) -> None:
        self.length = length
        self.width = width

    def encode(self, value, payload, header, escapes) -> None:
        if not uint_tuple_fits(value, self.length, self.width):
            raise CodecError(
                f"not a {self.length}-tuple of {self.width}-bit uints")
        for item in value:
            payload.write(item, self.width)

    def decode(self, payload, header, escapes):
        return tuple(payload.read(self.width) for _ in range(self.length))
