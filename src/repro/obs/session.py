"""The ambient observability session: one tracer + one registry.

Instrumentation sites across the engines ask :func:`active` for the
current session; when none is installed (the default) they get ``None``
and skip all recording — the entire disabled cost is one module-global
read per call site, which the ``bench_obs`` gate pins under 3% of
``run_trials`` throughput.

Install a session around any workload::

    from repro import obs

    with obs.session() as sess:
        run_trials(protocol, instance, prover, 200, seed)
    sess.metrics.counter("runner/proof_bits").value
    sess.write(Path("benchmarks/obs_store/my-run"))

Worker buffers
--------------
:func:`collecting` is the bridge between the ambient session and the
fork worker pool: it installs a *fresh buffer session* (mirroring the
active session's switches) for the duration of a trial batch, and the
batch returns the buffer's exported spans + metrics snapshot so the
parent can merge them **in trial order** — the exact same code path
serial execution uses, which is why parallel and serial runs produce
byte-identical deterministic traces.
"""

from __future__ import annotations

import json
import threading
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry
from .profiling import profiled
from .trace import Tracer, flatten_spans

TRACE_FILE = "trace.jsonl"
METRICS_FILE = "metrics.jsonl"
SUMMARY_FILE = "summary.json"


class ObsSession:
    """One observability capture: a tracer, a registry, and switches."""

    def __init__(self, trace: bool = True, metrics: bool = True,
                 profile: Optional[str] = None,
                 max_spans: int = 250_000,
                 trace_id: Optional[str] = None) -> None:
        self.tracer = Tracer(enabled=trace, max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.metrics_enabled = metrics
        self.profile = profile
        #: meta-only trace identity; never enters the deterministic
        #: span projection, so byte-identity gates are unaffected.
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.tracer.trace_id = self.trace_id
        self._ctx_seq = 0

    # -- recording façade -----------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A span on this session's tracer (no-op ctx when disabled)."""
        return self.tracer.span(name, **attrs)

    def profiled_span(self, name: str, **attrs: Any):
        """A span additionally profiled with the session's profiler
        (``cprofile`` or ``tracemalloc``); plain span when profiling
        is off."""
        return profiled(self.tracer.span(name, **attrs), self.profile)

    def counter(self, name: str, deterministic: bool = True):
        return self.metrics.counter(name, deterministic)

    # -- context propagation ---------------------------------------------

    def trace_context(self) -> Dict[str, Optional[str]]:
        """The compact propagation context ``{"trace", "span"}`` of the
        innermost open span, minting a meta-only span id on demand.
        Hand the dict across a fork/thread boundary and open the far
        side with :func:`adopt_context`."""
        if not self.tracer.enabled:
            return {"trace": self.trace_id, "span": None}
        return self.tracer.span_context()

    def new_context(self, label: str = "ctx") -> Dict[str, Optional[str]]:
        """A fresh root context (its own trace id) for one unit of
        work — e.g. one serve request — so each unit stitches into its
        own span tree."""
        self._ctx_seq += 1
        return {"trace": f"{self.trace_id}-{label}{self._ctx_seq}",
                "span": None}

    # -- persistence -----------------------------------------------------

    def write(self, root: Path,
              summary: Optional[Dict[str, Any]] = None) -> Dict[str, Path]:
        """Export the session as a *run directory*: ``trace.jsonl``
        (one span per line, pre-order, with ``id``/``parent`` links),
        ``metrics.jsonl`` (one metric per line, sorted), and optionally
        ``summary.json``.  Returns the written paths."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}

        trace_path = root / TRACE_FILE
        with trace_path.open("w", encoding="ascii") as handle:
            for row in flatten_spans(self.tracer.export()):
                handle.write(json.dumps(row, sort_keys=True,
                                        default=str) + "\n")
        paths["trace"] = trace_path

        metrics_path = root / METRICS_FILE
        with metrics_path.open("w", encoding="ascii") as handle:
            for record in self.metrics.to_records():
                handle.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")
        paths["metrics"] = metrics_path

        if summary is not None:
            summary_path = root / SUMMARY_FILE
            summary_path.write_text(
                json.dumps(summary, indent=2, sort_keys=True,
                           default=str) + "\n", encoding="ascii")
            paths["summary"] = summary_path
        return paths


#: The ambient session lives in thread-local storage; None =
#: observability off (the default).  Thread-local rather than a module
#: global so the serve batcher's executor threads never race on one
#: tracer's span stack — each thread sees only the session it (or its
#: forking parent thread: ``fork`` preserves the forking thread's TLS)
#: explicitly installed.
_TLS = threading.local()


def active() -> Optional[ObsSession]:
    """The calling thread's session, or None when observability is
    off — the entire disabled cost is one thread-local read."""
    return getattr(_TLS, "session", None)


@contextmanager
def session(trace: bool = True, metrics: bool = True,
            profile: Optional[str] = None,
            max_spans: int = 250_000) -> Iterator[ObsSession]:
    """Install a fresh session as the ambient one for the block."""
    sess = ObsSession(trace=trace, metrics=metrics, profile=profile,
                      max_spans=max_spans)
    with use_session(sess):
        yield sess


@contextmanager
def use_session(sess: Optional[ObsSession]) -> Iterator[Optional[ObsSession]]:
    """Install an existing session (or None to force-disable) on the
    calling thread for the block, restoring the previous one after."""
    previous = getattr(_TLS, "session", None)
    _TLS.session = sess
    try:
        yield sess
    finally:
        _TLS.session = previous


@contextmanager
def collecting(ctx: Optional[Dict[str, Optional[str]]] = None
               ) -> Iterator[Optional[ObsSession]]:
    """A buffer session for one trial batch (see module docstring).

    Yields None — and installs nothing — when observability is off, so
    the disabled path stays a single thread-local read.  The caller
    exports the buffer with :func:`export_collected` and merges it into
    the real session with :func:`merge_collected`.  Pass a ``ctx`` from
    :meth:`ObsSession.trace_context` to annotate the buffer's root
    spans with meta parent links (fork-pool cell workers do, so a
    stitcher can connect the merged tree even across run directories).
    """
    parent = active()
    if parent is None:
        yield None
        return
    buffer = ObsSession(trace=parent.tracer.enabled,
                        metrics=parent.metrics_enabled,
                        profile=None,
                        max_spans=parent.tracer.max_spans,
                        trace_id=(ctx or {}).get("trace"))
    if ctx is not None:
        buffer.tracer.adopted = dict(ctx)
    with use_session(buffer):
        yield buffer


@contextmanager
def adopt_context(ctx: Optional[Dict[str, Optional[str]]],
                  trace: Optional[bool] = None,
                  metrics: Optional[bool] = None,
                  max_spans: int = 250_000
                  ) -> Iterator[Optional[ObsSession]]:
    """Adopt a propagated context on the *calling thread*: install a
    buffer session whose root spans carry ``meta`` links back to
    ``ctx`` (trace id + parent span id).

    This is the far side of :meth:`ObsSession.trace_context` for
    boundaries where the worker has no inherited ambient session — the
    serve batcher's executor threads and the fleet supervisor→worker
    fork.  ``trace``/``metrics`` default to the calling thread's parent
    session switches when one is installed, else on.  Yields None (and
    installs nothing) when ``ctx`` is None, so callers pass the context
    unconditionally and pay nothing while observability is off.
    """
    if ctx is None:
        yield None
        return
    parent = active()
    if trace is None:
        trace = parent.tracer.enabled if parent else True
    if metrics is None:
        metrics = parent.metrics_enabled if parent else True
    buffer = ObsSession(
        trace=trace, metrics=metrics, profile=None,
        max_spans=parent.tracer.max_spans if parent else max_spans,
        trace_id=ctx.get("trace"))
    buffer.tracer.adopted = dict(ctx)
    with use_session(buffer):
        yield buffer


#: The wire form a batch returns: (exported spans, metrics snapshot).
Collected = Tuple[List[Dict[str, Any]], Dict[str, Dict[str, Any]]]

EMPTY_COLLECTED: Collected = ([], {})


def export_collected(buffer: Optional[ObsSession]) -> Collected:
    """Serialize a batch buffer for return across the fork boundary."""
    if buffer is None:
        return EMPTY_COLLECTED
    return buffer.tracer.export(), buffer.metrics.snapshot()


def merge_collected(sess: Optional[ObsSession],
                    collected: Collected) -> None:
    """Fold a batch buffer into ``sess`` (spans under the current
    span, metrics by kind).  Call once per batch, in trial order."""
    if sess is None:
        return
    spans, snapshot = collected
    sess.tracer.attach(spans)
    sess.metrics.merge(snapshot)
