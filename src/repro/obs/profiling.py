"""Optional per-span profiling hooks: ``cProfile`` and ``tracemalloc``.

Both profilers ship with CPython, so this module adds no dependencies;
it only runs when a session was created with ``profile="cprofile"`` or
``profile="tracemalloc"`` and the call site used ``profiled_span``.
Profiler output is attached to the span's non-deterministic layer
(``span.profile``), so profiled and unprofiled runs still compare
byte-identical on the deterministic projection.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .trace import Span

PROFILE_CPROFILE = "cprofile"
PROFILE_TRACEMALLOC = "tracemalloc"
PROFILE_MODES = (PROFILE_CPROFILE, PROFILE_TRACEMALLOC)

#: Top-N functions kept from a cProfile capture.
_TOP_FUNCTIONS = 15


def _cprofile_top(profile) -> list:
    """The ``_TOP_FUNCTIONS`` hottest rows by cumulative time."""
    import pstats

    stats = pstats.Stats(profile)
    rows = []
    entries = sorted(stats.stats.items(),
                     key=lambda item: item[1][3], reverse=True)
    for (filename, line, func), (cc, nc, tt, ct, _callers) in \
            entries[:_TOP_FUNCTIONS]:
        rows.append({
            "function": f"{filename}:{line}:{func}",
            "calls": nc,
            "self_seconds": round(tt, 6),
            "cumulative_seconds": round(ct, 6),
        })
    return rows


@contextmanager
def profiled(span_ctx, mode: Optional[str]) -> Iterator[Optional[Span]]:
    """Wrap a span context manager with the selected profiler.

    ``mode=None`` degrades to the bare span.  With ``cprofile`` the
    span gains the top functions by cumulative time; with
    ``tracemalloc`` it gains current/peak allocation bytes for the
    region.  A disabled tracer (span is None) skips profiling too.
    """
    if mode is not None and mode not in PROFILE_MODES:
        raise ValueError(f"unknown profile mode {mode!r}; "
                         f"expected one of {PROFILE_MODES}")
    with span_ctx as span:
        if span is None or mode is None:
            yield span
            return
        if mode == PROFILE_CPROFILE:
            import cProfile

            profile = cProfile.Profile()
            profile.enable()
            try:
                yield span
            finally:
                profile.disable()
                span.profile = {"mode": mode,
                                "top": _cprofile_top(profile)}
        else:
            import tracemalloc

            nested = tracemalloc.is_tracing()
            if not nested:
                tracemalloc.start()
            baseline = tracemalloc.get_traced_memory()[0]
            try:
                yield span
            finally:
                current, peak = tracemalloc.get_traced_memory()
                if not nested:
                    tracemalloc.stop()
                span.profile = {"mode": mode,
                                "current_bytes": current - baseline,
                                "peak_bytes": peak}
