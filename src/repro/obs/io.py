"""Loading observability run directories.

A *run* is what :meth:`repro.obs.session.ObsSession.write` produces:
``trace.jsonl`` (flattened spans), ``metrics.jsonl`` (one metric per
line) and optionally ``summary.json``.  The default location is
``benchmarks/obs_store/<name>``, mirroring the lab result store's
layout one directory over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from .session import METRICS_FILE, SUMMARY_FILE, TRACE_FILE
from .trace import nest_spans

#: Default run-directory root, next to the lab store.
DEFAULT_RUN_NAME = "latest"


def default_obs_root() -> Path:
    """``benchmarks/obs_store`` next to the source tree when running
    from a checkout, else under the current working directory."""
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "obs_store"
    return Path.cwd() / "benchmarks" / "obs_store"


@dataclass
class ObsRun:
    """One loaded run: flat span rows, nested forest, metrics."""

    root: Path
    #: flattened span rows (id/parent links), file order.
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: metric name -> snapshot dict.
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    summary: Optional[Dict[str, Any]] = None

    @property
    def forest(self) -> List[Dict[str, Any]]:
        return nest_spans(self.spans)

    def metric_value(self, name: str, default: Any = None) -> Any:
        snap = self.metrics.get(name)
        if snap is None:
            return default
        if snap["kind"] == "histogram":
            return snap["count"]
        return snap["value"]


def _read_jsonl(path: Path) -> List[Dict[str, Any]]:
    if not path.exists():
        return []
    with path.open("r", encoding="ascii") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def load_run(path: Path) -> ObsRun:
    """Load a run directory (or a bare ``trace.jsonl``/``metrics.jsonl``
    file, resolving its siblings)."""
    path = Path(path)
    if path.is_file():
        path = path.parent
    if not path.is_dir():
        raise FileNotFoundError(f"no obs run at {path}")
    run = ObsRun(root=path)
    run.spans = _read_jsonl(path / TRACE_FILE)
    run.metrics = {record["name"]: {k: v for k, v in record.items()
                                    if k != "name"}
                   for record in _read_jsonl(path / METRICS_FILE)}
    summary_path = path / SUMMARY_FILE
    if summary_path.exists():
        run.summary = json.loads(summary_path.read_text(encoding="ascii"))
    return run


def resolve_run(arg: Optional[str]) -> ObsRun:
    """CLI argument -> run: an explicit path, or the default
    ``benchmarks/obs_store/latest``."""
    if arg:
        return load_run(Path(arg))
    return load_run(default_obs_root() / DEFAULT_RUN_NAME)
