"""The ``python -m repro obs`` command group.

``obs record``   run the golden battery under tracing and write a run
                 directory (``trace.jsonl`` + ``metrics.jsonl`` +
                 ``summary.json``).  The command is also a gate: the
                 trace's aggregated bit counters must exactly match
                 the declared ``node_cost_bits`` (recomputed
                 independently), the ledger's transcript recompute
                 (:func:`repro.core.report.execution_cost`), the
                 netsim substrate's charged bits, and the wire-cost
                 audit — exit 1 on any mismatch.
``obs report``   render a run's per-phase / per-protocol breakdown
                 (``--flame`` for the full span hierarchy).
``obs top``      the hottest spans by self time.
``obs diff``     compare two runs metric by metric; ``--strict`` makes
                 any deterministic drift exit 1 (the perf-trajectory
                 regression check).
``obs tail``     follow a run directory: poll ``metrics.jsonl`` and
                 print each metric's delta as it changes.
``obs dash``     single-screen summary of a run directory — qps,
                 latency p50/p99, bits/sec, cache hit rate — plus
                 per-shard fleet progress with ``--fleet``.
``obs regress``  the trajectory gate: compare each bench's newest
                 ``bench_history.jsonl`` record against its committed
                 trailing window; exit 1 on deterministic-bit drift or
                 noise-aware wall regression.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .history import (WALL_FLOOR, WALL_RATIO, WINDOW, load_history,
                      regress_report)
from .io import DEFAULT_RUN_NAME, default_obs_root, load_run, resolve_run
from .live import histogram_quantile, metric_scalar, snapshot_deltas
from .report import (diff_runs, flame_rows, render_diff, render_flame,
                     render_report, render_top, report_jsonable,
                     top_spans)
from .session import ObsSession, session


def default_history_path() -> Path:
    """``benchmarks/bench_history.jsonl`` next to the obs store."""
    return default_obs_root().parent / "bench_history.jsonl"


def _counter_value(sess: ObsSession, name: str) -> float:
    return sess.metrics.counter(name).value if name in sess.metrics else 0


def _case_trace_bits(sess: ObsSession, case: str) -> int:
    """Sum the ``proof_bits`` metric over the ``runner.trial`` spans
    under ``case``'s span — the 'aggregated bit counters of the trace'
    side of the record gate (netsim spans are audited separately)."""
    def walk(span: Dict[str, Any]) -> int:
        total = (span.get("metrics", {}).get("proof_bits", 0)
                 if span.get("name") == "runner.trial" else 0)
        return total + sum(walk(child)
                           for child in span.get("children", ()))
    return sum(walk(span) for span in sess.tracer.export()
               if span.get("attrs", {}).get("case") == case)


def record_battery(*, trials: int = 5, seed: int = 20180723,
                   smoke: bool = True,
                   profile: Optional[str] = None,
                   engine: str = "python",
                   sess: Optional[ObsSession] = None) -> Dict[str, Any]:
    """Execute the golden battery under the given (or ambient) session
    and return the consistency summary (see the CLI docstring).

    ``engine`` selects the :func:`~repro.core.runner.run_trials`
    execution engine for the battery's trial batches.  The independent
    declared-bits recompute below always uses the reference engine, so
    recording with ``engine="numpy"`` cross-validates the kernels
    against ground truth — and diffing that run directory against a
    python-engine baseline is the byte-equality gate CI enforces.
    """
    from ..core.report import execution_cost, trial_cost_bits
    from ..core.runner import run_protocol, run_trials
    from ..netsim.audit import audit_execution
    from ..netsim.harness import SMOKE_CASES, golden_cases
    from ..netsim.sim import run_netsim
    from .session import active

    sess = sess or active()
    assert sess is not None, "record_battery needs an obs session"
    cases = []
    for case in golden_cases():
        if smoke and case.name not in SMOKE_CASES:
            continue
        protocol, instance = case.protocol, case.instance
        runner_before = _counter_value(sess, "runner/proof_bits")
        netsim_before = _counter_value(sess, "netsim/proof_bits")
        with sess.profiled_span("obs.case", case=case.name,
                                protocol=protocol.name, n=instance.n):
            estimate = run_trials(protocol, instance,
                                  protocol.honest_prover(), trials, seed,
                                  engine=engine)
            net = run_netsim(protocol, instance,
                             protocol.honest_prover(),
                             random.Random(seed), net_seed=seed,
                             trace=False)
        # Independent ground truth: re-run the same trial seed stream
        # through the abstract runner, outside any span bookkeeping.
        per_trial_declared = trial_cost_bits(
            protocol, instance, protocol.honest_prover, trials, seed)
        declared_bits = sum(per_trial_declared)
        # Third, transcript-derived witness: the ledger's shared
        # recompute walks trial 0's transcript and re-bills every
        # message from the wire payloads alone.
        trial0 = run_protocol(protocol, instance,
                              protocol.honest_prover(),
                              random.Random(seed),
                              stop_on_first_reject=True)
        ledger_bits = execution_cost(protocol, instance,
                                     trial0).network_bits
        netsim_bits = sum(net.node_cost_bits.values())
        audit = audit_execution(protocol, instance,
                                protocol.honest_prover(),
                                random.Random(seed), case=case.name)
        trace_bits = _case_trace_bits(sess, case.name)
        metric_bits = (_counter_value(sess, "runner/proof_bits")
                       - runner_before)
        netsim_metric = (_counter_value(sess, "netsim/proof_bits")
                         - netsim_before)
        row = {
            "case": case.name,
            "protocol": protocol.name,
            "n": instance.n,
            "trials": trials,
            "accepted": estimate.accepted,
            "declared_bits": declared_bits,
            "ledger_bits": ledger_bits,
            "trace_bits": trace_bits,
            "metric_bits": metric_bits,
            "netsim_bits": netsim_bits,
            "netsim_metric_bits": netsim_metric,
            "audit_frames": audit.frames,
            "audit_mismatches": len(audit.mismatches),
            # The netsim run shares trial 0's protocol rng, so its
            # charged proof bits must equal trial 0's declared cost.
            "consistent": (trace_bits == metric_bits == declared_bits
                           and netsim_bits == netsim_metric
                           and netsim_bits == per_trial_declared[0]
                           and ledger_bits == per_trial_declared[0]
                           and audit.ok),
        }
        cases.append(row)
    return {
        "seed": seed,
        "trials": trials,
        "smoke": smoke,
        "profile": profile,
        "engine": engine,
        "cases": cases,
        "consistent": all(row["consistent"] for row in cases),
    }


def cmd_obs_record(args: argparse.Namespace) -> int:
    out = args.out or str(default_obs_root() / DEFAULT_RUN_NAME)
    with session(profile=args.profile) as sess:
        summary = record_battery(trials=args.trials, seed=args.seed,
                                 smoke=not args.full,
                                 profile=args.profile,
                                 engine=args.engine, sess=sess)
        paths = sess.write(out, summary=summary)
    if args.json:
        print(json.dumps({**summary, "out": out}, indent=2,
                         sort_keys=True))
    else:
        print(f"obs record -> {out}")
        for row in summary["cases"]:
            status = "ok" if row["consistent"] else "MISMATCH"
            print(f"  {row['case']:<18} n={row['n']:<3} "
                  f"trials={row['trials']} "
                  f"bits: trace={row['trace_bits']} "
                  f"declared={row['declared_bits']} "
                  f"ledger={row['ledger_bits']} "
                  f"netsim={row['netsim_bits']} "
                  f"audit={row['audit_frames']}f/"
                  f"{row['audit_mismatches']}x  {status}")
        print(f"wrote {', '.join(str(p) for p in paths.values())}")
        print("record gate:",
              "consistent" if summary["consistent"] else "FAILED")
    return 0 if summary["consistent"] else 1


def cmd_obs_report(args: argparse.Namespace) -> int:
    run = resolve_run(args.run)
    if args.flame:
        if args.json:
            print(json.dumps(flame_rows(run), indent=2, sort_keys=True))
        else:
            print("\n".join(render_flame(run)))
        return 0
    if args.json:
        print(json.dumps(report_jsonable(run), indent=2, sort_keys=True))
    else:
        print("\n".join(render_report(run)))
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    run = resolve_run(args.run)
    if args.json:
        print(json.dumps(top_spans(run, args.k), indent=2,
                         sort_keys=True))
    else:
        print("\n".join(render_top(run, args.k)))
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    diff = diff_runs(load_run(args.a), load_run(args.b))
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print("\n".join(render_diff(diff)))
    if args.strict and not diff["deterministic_ok"]:
        return 1
    return 0


def _load_metrics(path: Path) -> Dict[str, Dict[str, Any]]:
    """The run directory's current metric snapshots (empty while the
    run has not flushed yet — tail keeps polling)."""
    try:
        return load_run(path).metrics
    except FileNotFoundError:
        return {}


def cmd_obs_tail(args: argparse.Namespace) -> int:
    path = Path(args.run) if args.run \
        else default_obs_root() / DEFAULT_RUN_NAME
    previous = _load_metrics(path)
    print(f"obs tail -> {path} ({len(previous)} metrics, "
          f"interval {args.interval}s)")
    ticks = 0
    while args.iterations <= 0 or ticks < args.iterations:
        if args.iterations <= 0 or ticks:
            time.sleep(args.interval)
        current = _load_metrics(path)
        stamp = time.strftime("%H:%M:%S")
        for name, old, new in snapshot_deltas(previous, current):
            if old is None:
                print(f"  {stamp} {name} = {new:g} (new)")
            elif new is None:
                print(f"  {stamp} {name} (gone, was {old:g})")
            else:
                rate = ((new - old) / args.interval
                        if args.interval > 0 else None)
                rate_s = f" ({rate:+.1f}/s)" if rate is not None else ""
                print(f"  {stamp} {name} {old:g} -> {new:g}{rate_s}")
        previous = current
        ticks += 1
    return 0


def _metric(metrics: Dict[str, Dict[str, Any]],
            name: str) -> Optional[float]:
    snap = metrics.get(name)
    return None if snap is None else metric_scalar(snap)


def dash_summary(metrics: Dict[str, Dict[str, Any]],
                 older: Optional[Dict[str, Dict[str, Any]]] = None,
                 interval: float = 0.0,
                 fleet_root: Optional[Path] = None) -> Dict[str, Any]:
    """The ``obs dash`` numbers, from one (or two, for rates) metric
    snapshots: request totals and latency quantiles from the serve
    histogram, proof bits across engines, cache hit rate, and —
    given a fleet store root — per-shard lease progress."""
    latency = metrics.get("serve/latency_ms")
    requests = None if latency is None else latency.get("count")
    hits = _metric(metrics, "serve/cache/hits") or 0
    misses = _metric(metrics, "serve/cache/misses") or 0
    bits = sum(_metric(metrics, name) or 0
               for name in ("runner/proof_bits", "netsim/proof_bits"))
    out: Dict[str, Any] = {
        "requests": requests,
        "p50_ms": None if latency is None
        else histogram_quantile(latency, 0.50),
        "p99_ms": None if latency is None
        else histogram_quantile(latency, 0.99),
        "proof_bits": bits,
        "cache_hit_rate": (hits / (hits + misses)
                           if hits + misses else None),
        "qps": None,
        "bits_per_sec": None,
    }
    if older is not None and interval > 0:
        old_latency = older.get("serve/latency_ms")
        if latency is not None and old_latency is not None:
            out["qps"] = (latency["count"]
                          - old_latency["count"]) / interval
        old_bits = sum(_metric(older, name) or 0
                       for name in ("runner/proof_bits",
                                    "netsim/proof_bits"))
        out["bits_per_sec"] = (bits - old_bits) / interval
    if fleet_root is not None:
        from ..fleet.leases import scan_leases, shard_heartbeats
        beats = shard_heartbeats(scan_leases(Path(fleet_root)))
        out["fleet"] = [
            {"shard": shard, **beats[shard]}
            for shard in sorted(beats)]
    return out


def _fmt(value: Optional[float], suffix: str = "",
         precision: int = 1) -> str:
    if value is None:
        return "-"
    return f"{value:.{precision}f}{suffix}"


def cmd_obs_dash(args: argparse.Namespace) -> int:
    path = Path(args.run) if args.run \
        else default_obs_root() / DEFAULT_RUN_NAME
    older = None
    if args.interval > 0:
        older = _load_metrics(path)
        time.sleep(args.interval)
    metrics = _load_metrics(path)
    fleet_root = Path(args.fleet) if args.fleet else None
    dash = dash_summary(metrics, older, args.interval, fleet_root)
    if args.json:
        print(json.dumps(dash, indent=2, sort_keys=True))
        return 0
    print(f"obs dash -> {path}")
    print(f"  requests: {dash['requests'] if dash['requests'] is not None else '-'}"
          f"   qps: {_fmt(dash['qps'])}")
    print(f"  latency:  p50 {_fmt(dash['p50_ms'], 'ms')}  "
          f"p99 {_fmt(dash['p99_ms'], 'ms')}")
    print(f"  bits:     {int(dash['proof_bits'])} total, "
          f"{_fmt(dash['bits_per_sec'], '/s', 0)}")
    rate = dash["cache_hit_rate"]
    print(f"  cache:    "
          f"{'-' if rate is None else f'{100 * rate:.1f}% hit'}")
    for row in dash.get("fleet", []):
        age = row.get("last_age")
        beat = "no heartbeat" if age is None else f"{age:.1f}s ago"
        print(f"  shard {row['shard']}: {row['done']}/{row['claimed']} "
              f"done/claimed, last lease {beat}")
    return 0


def render_regress(report: Dict[str, Any]) -> List[str]:
    lines = []
    for row in report["benches"]:
        if row.get("baseline") == "none":
            detail = "no baseline"
        else:
            median = row.get("wall_median")
            detail = (f"wall {_fmt(row.get('wall'), 's', 3)} vs "
                      f"median {_fmt(median, 's', 3)}")
        status = "ok" if row["ok"] else "FAIL"
        lines.append(f"  {row['bench']:<12} @ {row['sha']} "
                     f"[{row['mode']}] {detail}  {status}")
    for drift in report["drifts"]:
        lines.append(f"  DRIFT {drift['bench']}: {drift['metric']} "
                     f"{drift['old']:g} -> {drift['new']:g} "
                     f"(baseline {drift['old_sha']})")
    for reg in report["regressions"]:
        lines.append(f"  REGRESSION {reg['bench']}: wall "
                     f"{reg['wall']}s = {reg['ratio']}x median "
                     f"{reg['median']}s")
    lines.append("regress gate: "
                 + ("ok" if report["ok"] else "FAILED"))
    return lines


def cmd_obs_regress(args: argparse.Namespace) -> int:
    path = Path(args.history) if args.history else default_history_path()
    records = load_history(path)
    report = regress_report(records, window=args.window,
                            wall_ratio=args.max_wall,
                            wall_floor=args.wall_floor,
                            benches=args.bench or None)
    if args.json:
        print(json.dumps({**report, "history": str(path)}, indent=2,
                         sort_keys=True))
    else:
        print(f"obs regress -> {path} ({len(records)} records)")
        print("\n".join(render_regress(report)))
    return 0 if report["ok"] else 1


def add_obs_parser(sub) -> None:
    """Register the ``obs`` command group on the main CLI."""
    p = sub.add_parser(
        "obs", help="observability: record traced runs, report, diff")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    record = obs_sub.add_parser(
        "record",
        help="run the golden battery under tracing (bit-consistency "
             "gate) and write a run directory")
    record.add_argument("--trials", type=int, default=5,
                        help="trials per battery case")
    record.add_argument("--seed", type=int, default=20180723,
                        help="golden battery seed")
    record.add_argument("--full", action="store_true",
                        help="all golden cases (default: smoke subset)")
    record.add_argument("--out", metavar="DIR",
                        help=f"run directory (default: "
                             f"{default_obs_root() / DEFAULT_RUN_NAME})")
    record.add_argument("--profile", choices=["cprofile", "tracemalloc"],
                        help="profile each case span")
    record.add_argument("--engine", choices=["python", "numpy"],
                        default="python",
                        help="run_trials engine for the battery "
                             "(diffing a numpy run against a python "
                             "baseline is the cross-engine gate)")
    record.add_argument("--json", action="store_true",
                        help="machine-readable summary")
    record.set_defaults(func=cmd_obs_record)

    report = obs_sub.add_parser(
        "report", help="per-phase / per-protocol breakdown of a run")
    report.add_argument("run", nargs="?",
                        help="run directory (default: the last "
                             "`obs record` output)")
    report.add_argument("--flame", action="store_true",
                        help="full span hierarchy as an indented tree "
                             "(self/total seconds + proof bits)")
    report.add_argument("--json", action="store_true",
                        help="machine-readable report")
    report.set_defaults(func=cmd_obs_report)

    top = obs_sub.add_parser("top", help="hottest spans by self time")
    top.add_argument("run", nargs="?")
    top.add_argument("-k", type=int, default=15,
                     help="spans to show")
    top.add_argument("--json", action="store_true")
    top.set_defaults(func=cmd_obs_top)

    diff = obs_sub.add_parser(
        "diff", help="compare two runs metric by metric")
    diff.add_argument("a", help="baseline run directory")
    diff.add_argument("b", help="candidate run directory")
    diff.add_argument("--strict", action="store_true",
                      help="exit 1 on any deterministic metric drift")
    diff.add_argument("--json", action="store_true")
    diff.set_defaults(func=cmd_obs_diff)

    tail = obs_sub.add_parser(
        "tail", help="follow a run directory's metrics as they change")
    tail.add_argument("run", nargs="?",
                      help="run directory (default: the last "
                           "`obs record` output)")
    tail.add_argument("--interval", type=float, default=1.0,
                      help="seconds between polls")
    tail.add_argument("--iterations", type=int, default=0,
                      help="stop after N polls (0: until interrupted)")
    tail.set_defaults(func=cmd_obs_tail)

    dash = obs_sub.add_parser(
        "dash", help="single-screen summary: qps, p50/p99, bits/sec, "
                     "cache hit rate, fleet progress")
    dash.add_argument("run", nargs="?",
                      help="run directory (default: the last "
                           "`obs record` output)")
    dash.add_argument("--interval", type=float, default=0.0,
                      help="sample twice this many seconds apart to "
                           "compute qps / bits-per-sec rates")
    dash.add_argument("--fleet", metavar="STORE",
                      help="fleet store root: adds per-shard lease "
                           "progress rows")
    dash.add_argument("--json", action="store_true")
    dash.set_defaults(func=cmd_obs_dash)

    regress = obs_sub.add_parser(
        "regress",
        help="bench-history trajectory gate: exit 1 on deterministic "
             "drift or wall regression vs the trailing window")
    regress.add_argument("--history", metavar="FILE",
                         help=f"bench_history.jsonl path (default: "
                              f"{default_history_path()})")
    regress.add_argument("--window", type=int, default=WINDOW,
                         help="trailing records per bench for the "
                              "wall median")
    regress.add_argument("--max-wall", type=float, default=WALL_RATIO,
                         help="wall regression ratio over the window "
                              "median (default %(default)s)")
    regress.add_argument("--wall-floor", type=float, default=WALL_FLOOR,
                         help="absolute seconds of wall excess below "
                              "which jitter is never flagged")
    regress.add_argument("--bench", action="append", metavar="NAME",
                         help="restrict to this bench id (repeatable)")
    regress.add_argument("--json", action="store_true")
    regress.set_defaults(func=cmd_obs_regress)
