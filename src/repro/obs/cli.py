"""The ``python -m repro obs`` command group.

``obs record``   run the golden battery under tracing and write a run
                 directory (``trace.jsonl`` + ``metrics.jsonl`` +
                 ``summary.json``).  The command is also a gate: the
                 trace's aggregated bit counters must exactly match
                 the declared ``node_cost_bits`` (recomputed
                 independently), the ledger's transcript recompute
                 (:func:`repro.core.report.execution_cost`), the
                 netsim substrate's charged bits, and the wire-cost
                 audit — exit 1 on any mismatch.
``obs report``   render a run's per-phase / per-protocol breakdown
                 (``--flame`` for the full span hierarchy).
``obs top``      the hottest spans by self time.
``obs diff``     compare two runs metric by metric; ``--strict`` makes
                 any deterministic drift exit 1 (the perf-trajectory
                 regression check).
"""

from __future__ import annotations

import argparse
import json
import random
from typing import Any, Dict, Optional

from .io import DEFAULT_RUN_NAME, default_obs_root, load_run, resolve_run
from .report import (diff_runs, flame_rows, render_diff, render_flame,
                     render_report, render_top, report_jsonable,
                     top_spans)
from .session import ObsSession, session


def _counter_value(sess: ObsSession, name: str) -> float:
    return sess.metrics.counter(name).value if name in sess.metrics else 0


def _case_trace_bits(sess: ObsSession, case: str) -> int:
    """Sum the ``proof_bits`` metric over the ``runner.trial`` spans
    under ``case``'s span — the 'aggregated bit counters of the trace'
    side of the record gate (netsim spans are audited separately)."""
    def walk(span: Dict[str, Any]) -> int:
        total = (span.get("metrics", {}).get("proof_bits", 0)
                 if span.get("name") == "runner.trial" else 0)
        return total + sum(walk(child)
                           for child in span.get("children", ()))
    return sum(walk(span) for span in sess.tracer.export()
               if span.get("attrs", {}).get("case") == case)


def record_battery(*, trials: int = 5, seed: int = 20180723,
                   smoke: bool = True,
                   profile: Optional[str] = None,
                   engine: str = "python",
                   sess: Optional[ObsSession] = None) -> Dict[str, Any]:
    """Execute the golden battery under the given (or ambient) session
    and return the consistency summary (see the CLI docstring).

    ``engine`` selects the :func:`~repro.core.runner.run_trials`
    execution engine for the battery's trial batches.  The independent
    declared-bits recompute below always uses the reference engine, so
    recording with ``engine="numpy"`` cross-validates the kernels
    against ground truth — and diffing that run directory against a
    python-engine baseline is the byte-equality gate CI enforces.
    """
    from ..core.report import execution_cost, trial_cost_bits
    from ..core.runner import run_protocol, run_trials
    from ..netsim.audit import audit_execution
    from ..netsim.harness import SMOKE_CASES, golden_cases
    from ..netsim.sim import run_netsim
    from .session import active

    sess = sess or active()
    assert sess is not None, "record_battery needs an obs session"
    cases = []
    for case in golden_cases():
        if smoke and case.name not in SMOKE_CASES:
            continue
        protocol, instance = case.protocol, case.instance
        runner_before = _counter_value(sess, "runner/proof_bits")
        netsim_before = _counter_value(sess, "netsim/proof_bits")
        with sess.profiled_span("obs.case", case=case.name,
                                protocol=protocol.name, n=instance.n):
            estimate = run_trials(protocol, instance,
                                  protocol.honest_prover(), trials, seed,
                                  engine=engine)
            net = run_netsim(protocol, instance,
                             protocol.honest_prover(),
                             random.Random(seed), net_seed=seed,
                             trace=False)
        # Independent ground truth: re-run the same trial seed stream
        # through the abstract runner, outside any span bookkeeping.
        per_trial_declared = trial_cost_bits(
            protocol, instance, protocol.honest_prover, trials, seed)
        declared_bits = sum(per_trial_declared)
        # Third, transcript-derived witness: the ledger's shared
        # recompute walks trial 0's transcript and re-bills every
        # message from the wire payloads alone.
        trial0 = run_protocol(protocol, instance,
                              protocol.honest_prover(),
                              random.Random(seed),
                              stop_on_first_reject=True)
        ledger_bits = execution_cost(protocol, instance,
                                     trial0).network_bits
        netsim_bits = sum(net.node_cost_bits.values())
        audit = audit_execution(protocol, instance,
                                protocol.honest_prover(),
                                random.Random(seed), case=case.name)
        trace_bits = _case_trace_bits(sess, case.name)
        metric_bits = (_counter_value(sess, "runner/proof_bits")
                       - runner_before)
        netsim_metric = (_counter_value(sess, "netsim/proof_bits")
                         - netsim_before)
        row = {
            "case": case.name,
            "protocol": protocol.name,
            "n": instance.n,
            "trials": trials,
            "accepted": estimate.accepted,
            "declared_bits": declared_bits,
            "ledger_bits": ledger_bits,
            "trace_bits": trace_bits,
            "metric_bits": metric_bits,
            "netsim_bits": netsim_bits,
            "netsim_metric_bits": netsim_metric,
            "audit_frames": audit.frames,
            "audit_mismatches": len(audit.mismatches),
            # The netsim run shares trial 0's protocol rng, so its
            # charged proof bits must equal trial 0's declared cost.
            "consistent": (trace_bits == metric_bits == declared_bits
                           and netsim_bits == netsim_metric
                           and netsim_bits == per_trial_declared[0]
                           and ledger_bits == per_trial_declared[0]
                           and audit.ok),
        }
        cases.append(row)
    return {
        "seed": seed,
        "trials": trials,
        "smoke": smoke,
        "profile": profile,
        "engine": engine,
        "cases": cases,
        "consistent": all(row["consistent"] for row in cases),
    }


def cmd_obs_record(args: argparse.Namespace) -> int:
    out = args.out or str(default_obs_root() / DEFAULT_RUN_NAME)
    with session(profile=args.profile) as sess:
        summary = record_battery(trials=args.trials, seed=args.seed,
                                 smoke=not args.full,
                                 profile=args.profile,
                                 engine=args.engine, sess=sess)
        paths = sess.write(out, summary=summary)
    if args.json:
        print(json.dumps({**summary, "out": out}, indent=2,
                         sort_keys=True))
    else:
        print(f"obs record -> {out}")
        for row in summary["cases"]:
            status = "ok" if row["consistent"] else "MISMATCH"
            print(f"  {row['case']:<18} n={row['n']:<3} "
                  f"trials={row['trials']} "
                  f"bits: trace={row['trace_bits']} "
                  f"declared={row['declared_bits']} "
                  f"ledger={row['ledger_bits']} "
                  f"netsim={row['netsim_bits']} "
                  f"audit={row['audit_frames']}f/"
                  f"{row['audit_mismatches']}x  {status}")
        print(f"wrote {', '.join(str(p) for p in paths.values())}")
        print("record gate:",
              "consistent" if summary["consistent"] else "FAILED")
    return 0 if summary["consistent"] else 1


def cmd_obs_report(args: argparse.Namespace) -> int:
    run = resolve_run(args.run)
    if args.flame:
        if args.json:
            print(json.dumps(flame_rows(run), indent=2, sort_keys=True))
        else:
            print("\n".join(render_flame(run)))
        return 0
    if args.json:
        print(json.dumps(report_jsonable(run), indent=2, sort_keys=True))
    else:
        print("\n".join(render_report(run)))
    return 0


def cmd_obs_top(args: argparse.Namespace) -> int:
    run = resolve_run(args.run)
    if args.json:
        print(json.dumps(top_spans(run, args.k), indent=2,
                         sort_keys=True))
    else:
        print("\n".join(render_top(run, args.k)))
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    diff = diff_runs(load_run(args.a), load_run(args.b))
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print("\n".join(render_diff(diff)))
    if args.strict and not diff["deterministic_ok"]:
        return 1
    return 0


def add_obs_parser(sub) -> None:
    """Register the ``obs`` command group on the main CLI."""
    p = sub.add_parser(
        "obs", help="observability: record traced runs, report, diff")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    record = obs_sub.add_parser(
        "record",
        help="run the golden battery under tracing (bit-consistency "
             "gate) and write a run directory")
    record.add_argument("--trials", type=int, default=5,
                        help="trials per battery case")
    record.add_argument("--seed", type=int, default=20180723,
                        help="golden battery seed")
    record.add_argument("--full", action="store_true",
                        help="all golden cases (default: smoke subset)")
    record.add_argument("--out", metavar="DIR",
                        help=f"run directory (default: "
                             f"{default_obs_root() / DEFAULT_RUN_NAME})")
    record.add_argument("--profile", choices=["cprofile", "tracemalloc"],
                        help="profile each case span")
    record.add_argument("--engine", choices=["python", "numpy"],
                        default="python",
                        help="run_trials engine for the battery "
                             "(diffing a numpy run against a python "
                             "baseline is the cross-engine gate)")
    record.add_argument("--json", action="store_true",
                        help="machine-readable summary")
    record.set_defaults(func=cmd_obs_record)

    report = obs_sub.add_parser(
        "report", help="per-phase / per-protocol breakdown of a run")
    report.add_argument("run", nargs="?",
                        help="run directory (default: the last "
                             "`obs record` output)")
    report.add_argument("--flame", action="store_true",
                        help="full span hierarchy as an indented tree "
                             "(self/total seconds + proof bits)")
    report.add_argument("--json", action="store_true",
                        help="machine-readable report")
    report.set_defaults(func=cmd_obs_report)

    top = obs_sub.add_parser("top", help="hottest spans by self time")
    top.add_argument("run", nargs="?")
    top.add_argument("-k", type=int, default=15,
                     help="spans to show")
    top.add_argument("--json", action="store_true")
    top.set_defaults(func=cmd_obs_top)

    diff = obs_sub.add_parser(
        "diff", help="compare two runs metric by metric")
    diff.add_argument("a", help="baseline run directory")
    diff.add_argument("b", help="candidate run directory")
    diff.add_argument("--strict", action="store_true",
                      help="exit 1 on any deterministic metric drift")
    diff.add_argument("--json", action="store_true")
    diff.set_defaults(func=cmd_obs_diff)
