"""Nested, deterministic spans: the tracing half of :mod:`repro.obs`.

A **span** is one timed region of work — a batch of trials, a single
trial, a netsim execution, a lab cell — carrying three kinds of data:

* ``attrs`` — deterministic identity attributes (protocol name,
  instance size, trial index, verdicts).  These are a pure function of
  the work's inputs and are byte-identical across reruns, worker
  counts and machines.
* ``metrics`` — deterministic numeric measurements accumulated inside
  the span (proof bits, decide calls, game-tree leaves).  Same
  contract as ``attrs``.
* ``meta`` + ``seconds`` (+ optional ``profile``) — wall-clock and
  environment facts (monotonic duration, worker count, profiler
  output).  These vary run to run and are **excluded** from the
  deterministic serialization.

The split is the whole design: ``Span.deterministic()`` drops the
non-deterministic layer, so "parallel ≡ serial" and "replay ≡ record"
are byte-equality checks on the deterministic form, while the full
form still answers "where did the seconds go".

Worker merging
--------------
Spans recorded inside a fork-pool worker cannot reach the parent's
tracer; instead batch code records into a *buffer* tracer
(:func:`repro.obs.session.collecting`), exports it, and the parent
grafts the exported subtrees under its own current span with
:meth:`Tracer.attach` — in trial order, so the merged tree is
byte-identical to a serial run's.
"""

from __future__ import annotations

import json
import uuid
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

#: Span fields that survive into the deterministic serialization.
DETERMINISTIC_KEYS = ("name", "attrs", "metrics", "children")


class Span:
    """One region of traced work (see module docstring for the
    deterministic / non-deterministic field split)."""

    __slots__ = ("name", "attrs", "metrics", "children", "seconds",
                 "meta", "profile")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None
                 ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.metrics: Dict[str, Any] = {}
        #: exported child span dicts, in recording order.
        self.children: List[Dict[str, Any]] = []
        self.seconds: float = 0.0
        self.meta: Dict[str, Any] = {}
        self.profile: Optional[Dict[str, Any]] = None

    # -- recording -------------------------------------------------------

    def set(self, **attrs: Any) -> None:
        """Set deterministic attributes on the span."""
        self.attrs.update(attrs)

    def note(self, **meta: Any) -> None:
        """Set non-deterministic metadata (worker counts, hosts...)."""
        self.meta.update(meta)

    def add(self, name: str, value: Any = 1) -> None:
        """Accumulate a deterministic span-local metric."""
        self.metrics[name] = self.metrics.get(name, 0) + value

    # -- serialization ---------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """The full span dict (children are already dicts)."""
        span: Dict[str, Any] = {
            "name": self.name,
            "attrs": self.attrs,
            "metrics": self.metrics,
            "children": self.children,
            "seconds": round(self.seconds, 6),
            "meta": self.meta,
        }
        if self.profile is not None:
            span["profile"] = self.profile
        return span


def deterministic_span(span: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of an exported span dict."""
    return {
        "name": span["name"],
        "attrs": span.get("attrs", {}),
        "metrics": span.get("metrics", {}),
        "children": [deterministic_span(child)
                     for child in span.get("children", ())],
    }


class Tracer:
    """Produces a forest of nested spans.

    ``enabled=False`` yields a no-op tracer: :meth:`span` returns a
    shared null context manager and records nothing, so a disabled
    tracer costs one attribute check per call site.  ``max_spans``
    bounds the total recorded span count (a runaway-loop backstop —
    spans beyond it are counted in ``truncated`` but not stored; runs
    near the cap lose the parallel-≡-serial byte guarantee, so size
    workloads below it when comparing traces).
    """

    def __init__(self, enabled: bool = True,
                 max_spans: int = 250_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.roots: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self.count = 0
        self.truncated = 0
        #: trace id this tracer records under (meta-only identity).
        self.trace_id: Optional[str] = None
        #: adopted parent context ``{"trace", "span"}`` — when set,
        #: every closing *root* span is annotated with meta links so a
        #: stitcher in another process can re-parent it (span ids live
        #: in ``meta``, never in the deterministic projection).
        self.adopted: Optional[Dict[str, Optional[str]]] = None
        self._id_prefix = uuid.uuid4().hex[:8]
        self._id_seq = 0

    def mint_span_id(self) -> str:
        """A process-unique, meta-only span id."""
        self._id_seq += 1
        return f"{self._id_prefix}.{self._id_seq}"

    def span_context(self) -> Dict[str, Optional[str]]:
        """The propagation context of the innermost open span: its
        trace id plus a span id minted on demand into ``span.meta``."""
        current = self.current
        span_id: Optional[str] = None
        if current is not None:
            span_id = current.meta.get("span")
            if span_id is None:
                span_id = self.mint_span_id()
                current.meta["span"] = span_id
        return {"trace": self.trace_id, "span": span_id}

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None at the top level."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a child span of the current span (or a new root)."""
        if not self.enabled:
            yield None
            return
        if self.count >= self.max_spans:
            self.truncated += 1
            yield None
            return
        self.count += 1
        span = Span(name, attrs)
        self._stack.append(span)
        tick = perf_counter()
        try:
            yield span
        finally:
            span.seconds = perf_counter() - tick
            self._stack.pop()
            exported = span.export()
            if self._stack:
                self._stack[-1].children.append(exported)
            else:
                if self.adopted is not None:
                    meta = exported["meta"]
                    if self.adopted.get("trace") is not None:
                        meta.setdefault("trace", self.adopted["trace"])
                    if self.adopted.get("span") is not None:
                        meta.setdefault("parent_span",
                                        self.adopted["span"])
                    meta.setdefault("span", self.mint_span_id())
                self.roots.append(exported)

    def attach(self, spans: List[Dict[str, Any]]) -> None:
        """Graft exported span dicts (e.g. a worker buffer's roots)
        under the current span, preserving their order."""
        if not self.enabled or not spans:
            return
        self.count += sum(_span_count(span) for span in spans)
        if self._stack:
            self._stack[-1].children.extend(spans)
        else:
            self.roots.extend(spans)

    # -- serialization ---------------------------------------------------

    def export(self, deterministic: bool = False) -> List[Dict[str, Any]]:
        """The recorded forest; open spans are not included."""
        if deterministic:
            return [deterministic_span(span) for span in self.roots]
        return list(self.roots)

    def to_json(self, deterministic: bool = True) -> str:
        """Canonical byte form — the trace-equivalence tests compare
        the deterministic projection of two runs with this."""
        return json.dumps(self.export(deterministic=deterministic),
                          sort_keys=True, separators=(",", ":"))


def _span_count(span: Dict[str, Any]) -> int:
    return 1 + sum(_span_count(child)
                   for child in span.get("children", ()))


def flatten_spans(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Flatten a span forest into JSONL-ready rows.

    Each row carries ``id`` (pre-order index) and ``parent`` (parent's
    id, or None for roots) instead of nested children, so a trace file
    is one span per line and can be streamed.
    """
    rows: List[Dict[str, Any]] = []

    def walk(span: Dict[str, Any], parent: Optional[int]) -> None:
        row = {key: value for key, value in span.items()
               if key != "children"}
        row["id"] = len(rows)
        row["parent"] = parent
        rows.append(row)
        for child in span.get("children", ()):
            walk(child, row["id"])

    for span in spans:
        walk(span, None)
    return rows


def nest_spans(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Invert :func:`flatten_spans` (used by the trace loaders)."""
    by_id: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for row in rows:
        span = {key: value for key, value in row.items()
                if key not in ("id", "parent")}
        span.setdefault("children", [])
        by_id[row["id"]] = span
        parent = row.get("parent")
        if parent is None:
            roots.append(span)
        else:
            by_id[parent]["children"].append(span)
    return roots
