"""The obs-backed benchmark recorder: per-bench ``BENCH_<name>.json``.

Historically only an aggregate ``BENCH_runner.json`` was flushed by
the benchmark conftest, so the per-bench performance trajectory the
ROADMAP asks for was never populated.  :class:`BenchRecorder` fixes
that: every table reported during a pytest-benchmark session is
attributed to the bench module that produced it, and at session end
one ``BENCH_<name>.json`` summary is written per module (``bench_gni``
→ ``BENCH_gni.json``) next to the legacy aggregate, each carrying the
session's obs metrics snapshot when an observability session was
active.

The lab result store's table channel (``bench_tables.jsonl``) keeps
receiving every table exactly as before — the recorder wraps
:class:`repro.lab.store.ResultStore`, it does not replace it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .history import append_records, make_record
from .metrics import KIND_COUNTER, KIND_HISTOGRAM
from .session import active


def bench_id(source: str) -> str:
    """``bench_gni`` / ``benchmarks/bench_gni.py`` -> ``gni`` — the
    history record's bench key (matches ``BENCH_<id>.json``)."""
    stem = Path(source).stem
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    return stem


def bench_summary_name(source: str) -> str:
    """``bench_gni`` / ``benchmarks/bench_gni.py`` -> ``BENCH_gni.json``
    (sources without the ``bench_`` convention keep their stem)."""
    return f"BENCH_{bench_id(source)}.json"


class BenchRecorder:
    """Collects per-module result tables and flushes obs-backed
    summaries.

    Parameters
    ----------
    bench_dir:
        Directory the ``BENCH_<name>.json`` summaries land in
        (``benchmarks/`` in a checkout).
    store:
        The lab :class:`~repro.lab.store.ResultStore` mirror; None
        uses the default store root.
    aggregate:
        Optional path for the legacy all-tables aggregate
        (``BENCH_runner.json`` historically).
    """

    def __init__(self, bench_dir: Path,
                 store: Optional[Any] = None,
                 aggregate: Optional[Path] = None,
                 source: str = "benchmarks/conftest.py",
                 history: Optional[Path] = None) -> None:
        from ..lab.store import ResultStore

        self.bench_dir = Path(bench_dir)
        self.store = store if store is not None else ResultStore()
        self.aggregate = Path(aggregate) if aggregate else None
        self.source = source
        #: ``bench_history.jsonl`` path; None disables the trajectory.
        self.history = Path(history) if history else None
        #: module name -> its tables, in report order.
        self.by_module: Dict[str, List[Dict[str, Any]]] = {}
        #: module name -> summed test-call wall seconds.
        self.module_wall: Dict[str, float] = {}
        #: modules in first-seen order, with the deterministic counter
        #: values at their entry — flush() diffs consecutive marks to
        #: attribute per-module deltas.
        self._module_order: List[str] = []
        self._det_marks: Dict[str, Dict[str, float]] = {}
        #: human log lines from the last flush (also printed).
        self.log: List[str] = []

    # -- module attribution ----------------------------------------------

    @staticmethod
    def _det_values() -> Dict[str, float]:
        """One scalar per *deterministic* metric of the ambient session
        (counter values, histogram counts) — the drift surface."""
        sess = active()
        if sess is None:
            return {}
        values: Dict[str, float] = {}
        for name, snap in sess.metrics.deterministic_snapshot().items():
            if snap["kind"] == KIND_COUNTER:
                values[name] = snap["value"]
            elif snap["kind"] == KIND_HISTOGRAM:
                values[name] = snap["count"]
        return values

    def enter_module(self, module: str) -> None:
        """Mark a bench module's entry (idempotent): snapshots the
        deterministic counters so the module's history record carries
        only *its* deltas."""
        if module not in self._det_marks:
            self._module_order.append(module)
            self._det_marks[module] = self._det_values()

    def note_duration(self, module: str, seconds: float) -> None:
        """Accumulate one test call's wall time under its module."""
        self.enter_module(module)
        self.module_wall[module] = \
            self.module_wall.get(module, 0.0) + seconds

    # -- recording -------------------------------------------------------

    def report(self, module: str, benchmark: Any, title: str,
               header: Iterable[Any],
               rows: Iterable[Iterable[Any]]) -> str:
        """Record one table under ``module``; returns the printable
        rendering (same format the session console always printed)."""
        header = list(header)
        rows = [list(row) for row in rows]
        table = {"title": title, "header": header, "rows": rows}
        self.by_module.setdefault(module, []).append(table)
        if benchmark is not None:
            benchmark.extra_info["table"] = table
        width = max(len(str(cell))
                    for row in rows + [header] for cell in row) + 2
        lines = [f"\n=== {title} ===",
                 "".join(str(cell).ljust(width) for cell in header)]
        lines.extend("".join(str(cell).ljust(width) for cell in row)
                     for row in rows)
        return "\n".join(lines)

    @property
    def tables(self) -> List[Dict[str, Any]]:
        """Every recorded table, in module order."""
        return [table for module in sorted(self.by_module)
                for table in self.by_module[module]]

    # -- flushing --------------------------------------------------------

    def _metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        sess = active()
        if sess is None or not len(sess.metrics):
            return None
        return sess.metrics.snapshot()

    def _write_summary(self, path: Path,
                       payload: Dict[str, Any]) -> None:
        """Write one summary JSON, logging append vs replace (a silent
        overwrite of a committed BENCH record hid regressions)."""
        text = json.dumps(payload, indent=2, default=str) + "\n"
        if path.exists():
            verb = "unchanged" if path.read_text(
                encoding="ascii") == text else "replaced"
        else:
            verb = "wrote"
        path.write_text(text, encoding="ascii")
        self.log.append(f"bench: {verb} {path.name}")

    def history_records(self) -> List[Dict[str, Any]]:
        """One normalized history record per bench module seen this
        session: wall = summed test-call seconds, det = the module's
        deterministic counter deltas (diff of consecutive entry
        marks; the last module diffs against flush time)."""
        final = self._det_values()
        records: List[Dict[str, Any]] = []
        order = self._module_order
        for i, module in enumerate(order):
            start = self._det_marks[module]
            end = self._det_marks[order[i + 1]] if i + 1 < len(order) \
                else final
            det = {name: end[name] - start.get(name, 0.0)
                   for name in sorted(end)
                   if end[name] != start.get(name, 0.0)}
            records.append(make_record(
                bench_id(module),
                wall=round(self.module_wall.get(module, 0.0), 4),
                det=det))
        return records

    def flush(self) -> List[Path]:
        """Write per-module summaries, the legacy aggregate, the
        store's table channel, and the bench-history trajectory.
        Returns the summary paths written; ``self.log`` carries the
        appended/replaced lines (also printed)."""
        self.log = []
        written: List[Path] = []
        if self.by_module:
            self.store.write_tables(self.source, self.tables)
            metrics = self._metrics_snapshot()
            self.bench_dir.mkdir(parents=True, exist_ok=True)
            for module in sorted(self.by_module):
                payload: Dict[str, Any] = {
                    "source": module,
                    "recorder": "repro.obs",
                    "tables": self.by_module[module],
                }
                if metrics is not None:
                    payload["metrics"] = metrics
                path = self.bench_dir / bench_summary_name(module)
                self._write_summary(path, payload)
                written.append(path)
            if self.aggregate is not None:
                payload = {"source": self.source, "tables": self.tables}
                if metrics is not None:
                    payload["metrics"] = metrics
                self._write_summary(self.aggregate, payload)
                written.append(self.aggregate)
        if self.history is not None and self._module_order:
            self.log.extend(
                append_records(self.history, self.history_records()))
        for line in self.log:
            print(line)
        return written
