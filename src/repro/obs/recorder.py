"""The obs-backed benchmark recorder: per-bench ``BENCH_<name>.json``.

Historically only an aggregate ``BENCH_runner.json`` was flushed by
the benchmark conftest, so the per-bench performance trajectory the
ROADMAP asks for was never populated.  :class:`BenchRecorder` fixes
that: every table reported during a pytest-benchmark session is
attributed to the bench module that produced it, and at session end
one ``BENCH_<name>.json`` summary is written per module (``bench_gni``
→ ``BENCH_gni.json``) next to the legacy aggregate, each carrying the
session's obs metrics snapshot when an observability session was
active.

The lab result store's table channel (``bench_tables.jsonl``) keeps
receiving every table exactly as before — the recorder wraps
:class:`repro.lab.store.ResultStore`, it does not replace it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .session import active


def bench_summary_name(source: str) -> str:
    """``bench_gni`` / ``benchmarks/bench_gni.py`` -> ``BENCH_gni.json``
    (sources without the ``bench_`` convention keep their stem)."""
    stem = Path(source).stem
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    return f"BENCH_{stem}.json"


class BenchRecorder:
    """Collects per-module result tables and flushes obs-backed
    summaries.

    Parameters
    ----------
    bench_dir:
        Directory the ``BENCH_<name>.json`` summaries land in
        (``benchmarks/`` in a checkout).
    store:
        The lab :class:`~repro.lab.store.ResultStore` mirror; None
        uses the default store root.
    aggregate:
        Optional path for the legacy all-tables aggregate
        (``BENCH_runner.json`` historically).
    """

    def __init__(self, bench_dir: Path,
                 store: Optional[Any] = None,
                 aggregate: Optional[Path] = None,
                 source: str = "benchmarks/conftest.py") -> None:
        from ..lab.store import ResultStore

        self.bench_dir = Path(bench_dir)
        self.store = store if store is not None else ResultStore()
        self.aggregate = Path(aggregate) if aggregate else None
        self.source = source
        #: module name -> its tables, in report order.
        self.by_module: Dict[str, List[Dict[str, Any]]] = {}

    # -- recording -------------------------------------------------------

    def report(self, module: str, benchmark: Any, title: str,
               header: Iterable[Any],
               rows: Iterable[Iterable[Any]]) -> str:
        """Record one table under ``module``; returns the printable
        rendering (same format the session console always printed)."""
        header = list(header)
        rows = [list(row) for row in rows]
        table = {"title": title, "header": header, "rows": rows}
        self.by_module.setdefault(module, []).append(table)
        if benchmark is not None:
            benchmark.extra_info["table"] = table
        width = max(len(str(cell))
                    for row in rows + [header] for cell in row) + 2
        lines = [f"\n=== {title} ===",
                 "".join(str(cell).ljust(width) for cell in header)]
        lines.extend("".join(str(cell).ljust(width) for cell in row)
                     for row in rows)
        return "\n".join(lines)

    @property
    def tables(self) -> List[Dict[str, Any]]:
        """Every recorded table, in module order."""
        return [table for module in sorted(self.by_module)
                for table in self.by_module[module]]

    # -- flushing --------------------------------------------------------

    def _metrics_snapshot(self) -> Optional[Dict[str, Any]]:
        sess = active()
        if sess is None or not len(sess.metrics):
            return None
        return sess.metrics.snapshot()

    def flush(self) -> List[Path]:
        """Write per-module summaries, the legacy aggregate, and the
        store's table channel.  Returns the summary paths written."""
        if not self.by_module:
            return []
        self.store.write_tables(self.source, self.tables)
        metrics = self._metrics_snapshot()
        written: List[Path] = []
        self.bench_dir.mkdir(parents=True, exist_ok=True)
        for module in sorted(self.by_module):
            payload: Dict[str, Any] = {
                "source": module,
                "recorder": "repro.obs",
                "tables": self.by_module[module],
            }
            if metrics is not None:
                payload["metrics"] = metrics
            path = self.bench_dir / bench_summary_name(module)
            path.write_text(json.dumps(payload, indent=2,
                                       default=str) + "\n",
                            encoding="ascii")
            written.append(path)
        if self.aggregate is not None:
            payload = {"source": self.source, "tables": self.tables}
            if metrics is not None:
                payload["metrics"] = metrics
            self.aggregate.write_text(
                json.dumps(payload, indent=2, default=str) + "\n",
                encoding="ascii")
            written.append(self.aggregate)
        return written
