"""Rendering observability runs: report, top, diff.

These back the ``python -m repro obs`` CLI:

* **report** — the per-phase / per-protocol breakdown: where the
  seconds and the proof bits went, per engine namespace and per
  protocol, from one run's metrics + spans.
* **flame** — the full span hierarchy as an indented tree with
  self/total seconds and proof bits per span (``obs report --flame``).
* **top** — the hottest spans by self time (the flame view's summary).
* **diff** — two runs side by side: every metric's old/new/delta, with
  deterministic drifts called out separately from wall-clock movement
  — the tool that turns committed run directories into a perf
  trajectory.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .io import ObsRun
from .trace import deterministic_span

#: Timer-metric naming convention: <engine>/seconds/<phase>.
_SECONDS_SEGMENT = "/seconds/"


def _format_table(header: Tuple[str, ...],
                  rows: List[Tuple[Any, ...]]) -> List[str]:
    widths = [max(len(str(cell)) for cell in column)
              for column in zip(header, *rows)] if rows else \
        [len(cell) for cell in header]
    lines = ["  ".join(str(cell).ljust(width)
                       for cell, width in zip(header, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(width)
                               for cell, width in zip(row, widths))
                     .rstrip())
    return lines


# -- report ---------------------------------------------------------------

def phase_breakdown(run: ObsRun) -> List[Dict[str, Any]]:
    """Every ``<engine>/seconds/<phase>`` timer as one row with its
    share of the engine's total."""
    timers: Dict[str, Dict[str, float]] = {}
    for name, snap in run.metrics.items():
        if _SECONDS_SEGMENT not in name or snap["kind"] != "counter":
            continue
        engine, phase = name.split(_SECONDS_SEGMENT, 1)
        timers.setdefault(engine, {})[phase] = snap["value"]
    rows = []
    for engine in sorted(timers):
        total = sum(timers[engine].values())
        for phase in sorted(timers[engine]):
            seconds = timers[engine][phase]
            rows.append({
                "engine": engine,
                "phase": phase,
                "seconds": round(seconds, 6),
                "share": round(seconds / total, 4) if total else 0.0,
            })
    return rows


def _walk(span: Dict[str, Any], protocol: Optional[str],
          groups: Dict[str, Dict[str, Any]]) -> None:
    own = span.get("attrs", {}).get("protocol")
    if own is not None and own != protocol:
        group = groups.setdefault(own, {"protocol": own, "spans": 0,
                                        "trials": 0, "seconds": 0.0,
                                        "metrics": {}})
        # Only the outermost span of a protocol contributes seconds,
        # so nested engine spans don't double-count wall time.
        group["seconds"] += span.get("seconds", 0.0)
        protocol = own
    if protocol is not None:
        # Every span below (attributed or not) accrues to the protocol
        # it is nested under — trial spans carry no protocol attr.
        group = groups[protocol]
        group["spans"] += 1
        group["trials"] += span.get("name") == "runner.trial"
        for name, value in span.get("metrics", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value,
                                                                  bool):
                group["metrics"][name] = \
                    group["metrics"].get(name, 0) + value
    for child in span.get("children", ()):
        _walk(child, protocol, groups)


def protocol_breakdown(run: ObsRun) -> List[Dict[str, Any]]:
    """Aggregate spans by their ``protocol`` attribute: span counts,
    wall seconds (outermost spans only), and summed span metrics."""
    groups: Dict[str, Dict[str, Any]] = {}
    for span in run.forest:
        _walk(span, None, groups)
    rows = []
    for protocol in sorted(groups):
        group = groups[protocol]
        rows.append({
            "protocol": protocol,
            "spans": group["spans"],
            "seconds": round(group["seconds"], 6),
            "proof_bits": group["metrics"].get("proof_bits", 0),
            "trials": group["trials"],
        })
    return rows


def report_jsonable(run: ObsRun) -> Dict[str, Any]:
    return {
        "root": str(run.root),
        "spans": len(run.spans),
        "metrics": run.metrics,
        "phases": phase_breakdown(run),
        "protocols": protocol_breakdown(run),
        "summary": run.summary,
    }


def render_report(run: ObsRun) -> List[str]:
    lines = [f"obs report: {run.root}",
             f"  spans: {len(run.spans)}   metrics: {len(run.metrics)}"]
    phases = phase_breakdown(run)
    if phases:
        lines.append("")
        lines.append("per-phase wall time")
        lines.extend("  " + line for line in _format_table(
            ("engine", "phase", "seconds", "share"),
            [(row["engine"], row["phase"], f"{row['seconds']:.4f}",
              f"{row['share'] * 100:.1f}%") for row in phases]))
    protocols = protocol_breakdown(run)
    if protocols:
        lines.append("")
        lines.append("per-protocol breakdown")
        lines.extend("  " + line for line in _format_table(
            ("protocol", "spans", "seconds", "trials", "proof bits"),
            [(row["protocol"], row["spans"], f"{row['seconds']:.4f}",
              row["trials"], row["proof_bits"])
             for row in protocols]))
    counters = [(name, snap) for name, snap in sorted(run.metrics.items())
                if snap["kind"] == "counter" and snap["deterministic"]]
    if counters:
        lines.append("")
        lines.append("deterministic counters")
        lines.extend("  " + line for line in _format_table(
            ("counter", "value"),
            [(name, snap["value"]) for name, snap in counters]))
    return lines


# -- flame ----------------------------------------------------------------

def flame_rows(run: ObsRun) -> List[Dict[str, Any]]:
    """The full span hierarchy, depth-first in recorded order: one row
    per span with its depth, self/total seconds and proof bits.

    This is ``top``'s view without the truncation — the whole tree,
    indented, so a reader can see *where inside which case* the
    seconds and the bits were spent."""
    rows: List[Dict[str, Any]] = []

    def visit(span: Dict[str, Any], depth: int) -> None:
        total = span.get("seconds", 0.0)
        self_seconds = max(0.0, total - sum(
            child.get("seconds", 0.0)
            for child in span.get("children", ())))
        rows.append({
            "depth": depth,
            "name": span["name"],
            "attrs": span.get("attrs", {}),
            "seconds": round(total, 6),
            "self_seconds": round(self_seconds, 6),
            "proof_bits": span.get("metrics", {}).get("proof_bits", 0),
            "children": len(span.get("children", ())),
        })
        for child in span.get("children", ()):
            visit(child, depth + 1)

    for span in run.forest:
        visit(span, 0)
    return rows


def render_flame(run: ObsRun) -> List[str]:
    rows = flame_rows(run)
    lines = [f"obs flame: {run.root} ({len(rows)} spans)"]
    table = []
    for row in rows:
        attrs = ",".join(f"{key}={value}"
                         for key, value in sorted(row["attrs"].items()))
        table.append((
            "  " * row["depth"] + row["name"],
            attrs or "-",
            f"{row['self_seconds']:.4f}",
            f"{row['seconds']:.4f}",
            row["proof_bits"] or "-",
        ))
    lines.extend("  " + line for line in _format_table(
        ("span", "attrs", "self s", "total s", "proof bits"), table))
    return lines


# -- top ------------------------------------------------------------------

def top_spans(run: ObsRun, k: int = 15) -> List[Dict[str, Any]]:
    """The ``k`` hottest spans by *self* time (own seconds minus the
    seconds of direct children)."""
    children_seconds: Dict[Optional[int], float] = {}
    for row in run.spans:
        parent = row.get("parent")
        children_seconds[parent] = (children_seconds.get(parent, 0.0)
                                    + row.get("seconds", 0.0))
    rows = []
    for row in run.spans:
        total = row.get("seconds", 0.0)
        self_seconds = max(0.0, total
                           - children_seconds.get(row["id"], 0.0))
        rows.append({
            "id": row["id"],
            "name": row["name"],
            "attrs": row.get("attrs", {}),
            "seconds": round(total, 6),
            "self_seconds": round(self_seconds, 6),
        })
    rows.sort(key=lambda r: (-r["self_seconds"], r["id"]))
    return rows[:k]


def render_top(run: ObsRun, k: int = 15) -> List[str]:
    rows = top_spans(run, k)
    lines = [f"obs top: {run.root} ({len(run.spans)} spans)"]
    table = [(row["name"],
              ",".join(f"{key}={value}"
                       for key, value in sorted(row["attrs"].items()))
              or "-",
              f"{row['self_seconds']:.4f}", f"{row['seconds']:.4f}")
             for row in rows]
    lines.extend("  " + line for line in _format_table(
        ("span", "attrs", "self s", "total s"), table))
    return lines


# -- diff -----------------------------------------------------------------

def _deterministic_trace_bytes(run: ObsRun) -> str:
    """The canonical byte form of a run's deterministic span forest —
    names, attrs, span metrics and structure; no seconds or meta."""
    return json.dumps([deterministic_span(span) for span in run.forest],
                      sort_keys=True, separators=(",", ":"))


def diff_runs(a: ObsRun, b: ObsRun) -> Dict[str, Any]:
    """Metric-by-metric (and trace-by-trace) comparison of two runs.

    Deterministic metrics that changed are *drifts* (a behavior
    change: different bits, different counts); non-deterministic ones
    are *movement* (wall-clock trajectory).  Metrics present in only
    one run are reported as added/removed.  The deterministic span
    forests are additionally compared byte-for-byte (``trace_ok``):
    two runs of the same workload must produce identical traces
    regardless of worker count or execution engine, and
    ``deterministic_ok`` — the ``--strict`` gate — requires both no
    metric drift and trace equality.
    """
    names = sorted(set(a.metrics) | set(b.metrics))
    entries = []
    drifts = []
    for name in names:
        left, right = a.metrics.get(name), b.metrics.get(name)
        entry: Dict[str, Any] = {"name": name}
        if left is None or right is None:
            entry["status"] = "added" if left is None else "removed"
            entry["a"] = None if left is None else a.metric_value(name)
            entry["b"] = None if right is None else b.metric_value(name)
            deterministic = (left or right)["deterministic"]
        else:
            va, vb = a.metric_value(name), b.metric_value(name)
            entry["a"], entry["b"] = va, vb
            entry["status"] = "same" if va == vb else "changed"
            if isinstance(va, (int, float)) \
                    and isinstance(vb, (int, float)):
                entry["delta"] = round(vb - va, 6)
                if va:
                    entry["ratio"] = round(vb / va, 4)
            deterministic = right["deterministic"]
        entry["deterministic"] = deterministic
        if deterministic and entry["status"] != "same":
            drifts.append(name)
        entries.append(entry)
    trace_ok = (_deterministic_trace_bytes(a)
                == _deterministic_trace_bytes(b))
    return {
        "a": str(a.root),
        "b": str(b.root),
        "metrics": entries,
        "deterministic_drifts": drifts,
        "trace_ok": trace_ok,
        "deterministic_ok": not drifts and trace_ok,
    }


def render_diff(diff: Dict[str, Any]) -> List[str]:
    lines = [f"obs diff: {diff['a']} -> {diff['b']}"]
    changed = [entry for entry in diff["metrics"]
               if entry["status"] != "same"]
    if not changed:
        lines.append("  no metric changes")
    else:
        table = []
        for entry in changed:
            delta = entry.get("delta")
            table.append((
                entry["name"],
                "det" if entry["deterministic"] else "wall",
                entry["status"],
                "-" if entry["a"] is None else entry["a"],
                "-" if entry["b"] is None else entry["b"],
                "-" if delta is None else f"{delta:+g}",
            ))
        lines.extend("  " + line for line in _format_table(
            ("metric", "kind", "status", "a", "b", "delta"), table))
    if diff["deterministic_drifts"]:
        lines.append(f"DETERMINISTIC DRIFT: "
                     f"{', '.join(diff['deterministic_drifts'])}")
    else:
        lines.append("deterministic metrics: no drift")
    if diff.get("trace_ok", True):
        lines.append("deterministic trace: byte-identical")
    else:
        lines.append("DETERMINISTIC TRACE DRIFT: span forests differ")
    return lines
