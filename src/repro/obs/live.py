"""Live telemetry: exposition, ring buffers, and trace stitching.

Three small, dependency-free pieces behind ``repro.obs.live``:

* :func:`prometheus_text` renders a :class:`MetricsRegistry` snapshot
  in the Prometheus text exposition format (stable name ordering,
  escaped help strings, power-of-two histogram buckets as cumulative
  ``le`` series) — the payload behind the serve ``GET /v1/metrics``
  endpoint.
* :class:`MetricsRing` / :class:`TraceRing` are bounded, lock-light
  ring buffers: a single writer (the serve event loop) publishes
  snapshots / finished request traces, readers copy slots under the
  GIL.  Memory is bounded by construction; the disabled path —
  :meth:`MetricsRing.maybe_push` with no session — is one ``None``
  check, covered by the ``bench_obs`` ≤3% overhead gate.
* :func:`stitch_spans` reconstructs logical span trees from the
  meta-only trace/span/parent links that :func:`repro.obs.session.
  adopt_context` stamps on buffer roots, reporting orphans — the gate
  that a merged serve/fleet run directory yields one connected tree
  per request/wave.
"""

from __future__ import annotations

import re
from time import time as wall_time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import KIND_COUNTER, KIND_GAUGE, KIND_HISTOGRAM

#: Every exposition name is prefixed so scrapes from mixed fleets
#: never collide with other exporters.
PROM_PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = PROM_PREFIX) -> str:
    """Sanitize a slash-namespaced metric name for the exposition
    (``runner/proof_bits`` → ``repro_runner_proof_bits``)."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def escape_help(text: str) -> str:
    """Escape a HELP string per the text-format rules."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(snapshot: Dict[str, Dict[str, Any]],
                    extra_gauges: Optional[Dict[str, Any]] = None,
                    prefix: str = PROM_PREFIX) -> str:
    """Render a registry snapshot (plus optional service-level gauges)
    as Prometheus text exposition, deterministically ordered."""
    merged: List[Tuple[str, str, Dict[str, Any]]] = []
    for name in sorted(snapshot):
        merged.append((prometheus_name(name, prefix), name,
                       snapshot[name]))
    for name in sorted(extra_gauges or {}):
        merged.append((prometheus_name(name, prefix), name,
                       {"kind": KIND_GAUGE, "deterministic": False,
                        "value": extra_gauges[name]}))
    merged.sort(key=lambda item: (item[0], item[1]))

    lines: List[str] = []
    for prom, original, snap in merged:
        kind = snap["kind"]
        lines.append(f"# HELP {prom} {escape_help(original)}")
        if kind == KIND_COUNTER:
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_format_value(snap['value'])}")
        elif kind == KIND_GAUGE:
            lines.append(f"# TYPE {prom} gauge")
            if snap["value"] is not None:
                lines.append(f"{prom} {_format_value(snap['value'])}")
        elif kind == KIND_HISTOGRAM:
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bucket, count in sorted(
                    (int(b), c) for b, c in snap["buckets"].items()):
                cumulative += count
                edge = _format_value(2.0 ** bucket)
                lines.append(f'{prom}_bucket{{le="{edge}"}} '
                             f"{cumulative}")
            lines.append(f'{prom}_bucket{{le="+Inf"}} {snap["count"]}')
            lines.append(f"{prom}_sum {_format_value(snap['total'])}")
            lines.append(f"{prom}_count {snap['count']}")
        else:  # pragma: no cover - snapshots are library-produced
            raise ValueError(f"unknown metric kind {kind!r}")
    return "\n".join(lines) + "\n" if lines else ""


# -- ring buffers --------------------------------------------------------


class MetricsRing:
    """A bounded ring of timestamped registry snapshots.

    Single-writer (the serve event loop pushes at most one snapshot per
    ``interval`` seconds); readers take list copies under the GIL, so
    no lock is ever held on the hot path.  With no ambient session,
    :meth:`maybe_push` is one ``None`` check — the exposition hook's
    entire disabled cost.
    """

    def __init__(self, capacity: int = 64,
                 interval: float = 0.25) -> None:
        self.capacity = max(1, capacity)
        self.interval = interval
        self._slots: List[Optional[Dict[str, Any]]] = \
            [None] * self.capacity
        self._count = 0
        self._last_push = 0.0

    def maybe_push(self, sess, now: Optional[float] = None) -> bool:
        """Push the session's snapshot unless inside the throttle
        window; no-op (False) when observability is off."""
        if sess is None:
            return False
        if now is None:
            now = wall_time()
        if self._count and now - self._last_push < self.interval:
            return False
        self.push(sess.metrics.snapshot(), now)
        return True

    def push(self, snapshot: Dict[str, Dict[str, Any]],
             now: Optional[float] = None) -> None:
        if now is None:
            now = wall_time()
        self._slots[self._count % self.capacity] = \
            {"ts": now, "metrics": snapshot}
        self._count += 1
        self._last_push = now

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    def window(self) -> List[Dict[str, Any]]:
        """All retained snapshots, oldest first."""
        slots = self._slots[:]
        count = self._count
        if count <= self.capacity:
            return [slot for slot in slots[:count] if slot is not None]
        start = count % self.capacity
        ordered = slots[start:] + slots[:start]
        return [slot for slot in ordered if slot is not None]

    def latest(self) -> Optional[Dict[str, Any]]:
        window = self.window()
        return window[-1] if window else None


class TraceRing:
    """A bounded insertion-ordered map of finished span trees, keyed
    by trace id with request-id aliases — the store behind the serve
    ``GET /v1/trace/<id>`` endpoint."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, capacity)
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._aliases: Dict[str, str] = {}
        self._order: List[str] = []

    def push(self, key: str, tree: Dict[str, Any],
             aliases: Iterable[str] = ()) -> None:
        if key in self._entries:
            self._order.remove(key)
        self._entries[key] = {"trace": key, "span": tree,
                              "aliases": sorted(set(aliases))}
        self._order.append(key)
        for alias in aliases:
            self._aliases[alias] = key
        while len(self._order) > self.capacity:
            evicted = self._order.pop(0)
            entry = self._entries.pop(evicted)
            for alias in entry["aliases"]:
                if self._aliases.get(alias) == evicted:
                    del self._aliases[alias]

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        primary = self._aliases.get(key, key)
        return self._entries.get(primary)

    def keys(self) -> List[str]:
        return list(self._order)

    def __len__(self) -> int:
        return len(self._entries)


# -- stitching -----------------------------------------------------------


def stitch_spans(roots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reconstruct logical traces from meta links in a span forest.

    Walks exported (nested) span dicts; every span with a
    ``meta.span`` id is indexed, physical children inherit their
    parent's trace id, and a physical root carrying
    ``meta.parent_span`` is *linked* when the parent id resolves
    anywhere in the forest — otherwise it is an **orphan**.  Returns::

        {"traces": {trace_id: {"spans": int, "roots": [names],
                               "linked": int}},
         "orphans": [{"name", "trace", "parent_span"}],
         "connected": bool}

    ``connected`` means every trace has exactly one true root and no
    orphans — the acceptance shape for serve requests / fleet waves.
    """
    index: Dict[str, Dict[str, Any]] = {}

    def index_walk(span: Dict[str, Any]) -> None:
        span_id = span.get("meta", {}).get("span")
        if span_id is not None:
            index[span_id] = span
        for child in span.get("children", ()):
            index_walk(child)

    for root in roots:
        index_walk(root)

    traces: Dict[str, Dict[str, Any]] = {}
    orphans: List[Dict[str, Any]] = []

    def trace_of(span: Dict[str, Any], inherited: Optional[str]) -> str:
        return span.get("meta", {}).get("trace") or inherited or "-"

    def tally(span: Dict[str, Any], inherited: Optional[str]) -> None:
        trace_id = trace_of(span, inherited)
        bucket = traces.setdefault(
            trace_id, {"spans": 0, "roots": [], "linked": 0})
        bucket["spans"] += 1
        for child in span.get("children", ()):
            tally(child, trace_id)

    for root in roots:
        meta = root.get("meta", {})
        trace_id = trace_of(root, None)
        parent = meta.get("parent_span")
        tally(root, None)
        if parent is None:
            traces[trace_id]["roots"].append(root.get("name"))
        elif parent in index:
            traces[trace_id]["linked"] += 1
        else:
            orphans.append({"name": root.get("name"),
                            "trace": trace_id, "parent_span": parent})
            traces[trace_id]["roots"].append(root.get("name"))

    connected = not orphans and all(
        len(bucket["roots"]) == 1 for bucket in traces.values())
    return {"traces": traces, "orphans": orphans,
            "connected": connected}


# -- small read-side helpers (tail / dash) ------------------------------


def metric_scalar(snap: Dict[str, Any]) -> Optional[float]:
    """One comparable number per metric: counter/gauge value,
    histogram observation count."""
    if snap["kind"] == KIND_HISTOGRAM:
        return snap["count"]
    return snap["value"]


def snapshot_deltas(older: Dict[str, Dict[str, Any]],
                    newer: Dict[str, Dict[str, Any]]
                    ) -> List[Tuple[str, Optional[float],
                                    Optional[float]]]:
    """(name, old, new) for every metric whose scalar changed, sorted
    by name — the ``obs tail`` line source."""
    deltas = []
    for name in sorted(set(older) | set(newer)):
        old = metric_scalar(older[name]) if name in older else None
        new = metric_scalar(newer[name]) if name in newer else None
        if old != new:
            deltas.append((name, old, new))
    return deltas


def histogram_quantile(snap: Dict[str, Any],
                       quantile: float) -> Optional[float]:
    """Upper-edge quantile estimate from the power-of-two buckets."""
    count = snap.get("count", 0)
    if not count:
        return None
    target = quantile * count
    cumulative = 0
    edge = None
    for bucket, bucket_count in sorted(
            (int(b), c) for b, c in snap["buckets"].items()):
        cumulative += bucket_count
        edge = 2.0 ** bucket
        if cumulative >= target:
            return edge
    return edge
