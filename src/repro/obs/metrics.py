"""The metrics half of :mod:`repro.obs`: namespaced counters, gauges
and histograms behind one registry.

Every number the execution engines used to keep in private dicts —
runner phase seconds and decide-call counts, netsim bit and fault
counters, adversary search/solver work counts, lab cell progress —
lands here under a slash-namespaced name (``runner/proof_bits``,
``netsim/faults/drop``, ``adversary/solver/leaves``, ``lab/cells/ran``)
so one query answers "where did the bits and the seconds go".

Determinism
-----------
Each metric carries a ``deterministic`` flag fixed at creation:

* **deterministic** metrics (bit counts, trial counts, tree sizes) are
  pure functions of the work's inputs; they must be bit-identical
  across reruns and worker counts, and the regression tooling treats a
  change as a real drift;
* **non-deterministic** metrics (wall-clock timers created with
  :meth:`MetricsRegistry.timer`) are environment facts, excluded from
  :meth:`MetricsRegistry.deterministic_snapshot`.

Merging
-------
Fork-pool workers accumulate into buffer registries which the parent
merges **in trial order** via :meth:`MetricsRegistry.merge`: counters
and histograms are order-independent sums, and gauges are last-wins —
so the merge order (= trial order) makes parallel gauge values equal
serial ones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

#: Metric namespaces emitted by the retrofitted engines.
NS_RUNNER = "runner"
NS_NETSIM = "netsim"
NS_ADVERSARY = "adversary"
NS_LAB = "lab"


class Counter:
    """A monotonically accumulating sum."""

    __slots__ = ("name", "deterministic", "value")
    kind = KIND_COUNTER

    def __init__(self, name: str, deterministic: bool = True) -> None:
        self.name = name
        self.deterministic = deterministic
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "deterministic": self.deterministic,
                "value": self.value}


class Gauge:
    """A last-write-wins value (``None`` until first set)."""

    __slots__ = ("name", "deterministic", "value")
    kind = KIND_GAUGE

    def __init__(self, name: str, deterministic: bool = True) -> None:
        self.name = name
        self.deterministic = deterministic
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "deterministic": self.deterministic,
                "value": self.value}


class Histogram:
    """Power-of-two bucketed distribution plus exact moments.

    Bucket ``k`` counts observations in ``[2^(k-1), 2^k)`` (bucket 0 is
    ``[0, 1)``); negative observations raise.  Buckets are stored
    sparsely, so wide ranges cost nothing.
    """

    __slots__ = ("name", "deterministic", "count", "total", "min", "max",
                 "buckets")
    kind = KIND_HISTOGRAM

    def __init__(self, name: str, deterministic: bool = True) -> None:
        self.name = name
        self.deterministic = deterministic
        self.count = 0
        self.total: float = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r}: negative "
                             f"observation {value!r}")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = max(0, int(value).bit_length()) if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "deterministic": self.deterministic,
                "count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


class MetricsRegistry:
    """The single namespaced home for every instrumentation number."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, factory, deterministic: bool):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name, deterministic)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}")
        return metric

    def counter(self, name: str, deterministic: bool = True) -> Counter:
        return self._get(name, Counter, deterministic)

    def gauge(self, name: str, deterministic: bool = True) -> Gauge:
        return self._get(name, Gauge, deterministic)

    def histogram(self, name: str,
                  deterministic: bool = True) -> Histogram:
        return self._get(name, Histogram, deterministic)

    def timer(self, name: str) -> Counter:
        """A seconds accumulator — a counter marked non-deterministic,
        because wall time is an environment fact."""
        return self.counter(name, deterministic=False)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- serialization / merging ----------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every metric's state, keyed by name, in sorted order."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def deterministic_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Only the deterministic metrics — the regression surface."""
        return {name: snap for name, snap in self.snapshot().items()
                if snap["deterministic"]}

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a snapshot (e.g. a worker buffer's) into this registry.

        Counters and histogram moments add; gauges take the incoming
        value (last-wins — callers merge buffers in trial order so the
        result is order-deterministic); histogram min/max combine.
        """
        for name in sorted(snapshot):
            snap = snapshot[name]
            kind = snap["kind"]
            deterministic = snap["deterministic"]
            if kind == KIND_COUNTER:
                self.counter(name, deterministic).value += snap["value"]
            elif kind == KIND_GAUGE:
                if snap["value"] is not None:
                    self.gauge(name, deterministic).set(snap["value"])
            elif kind == KIND_HISTOGRAM:
                hist = self.histogram(name, deterministic)
                hist.count += snap["count"]
                hist.total += snap["total"]
                for edge in ("min", "max"):
                    incoming = snap[edge]
                    if incoming is not None:
                        current = getattr(hist, edge)
                        combine = min if edge == "min" else max
                        setattr(hist, edge,
                                incoming if current is None
                                else combine(current, incoming))
                for bucket, count in snap["buckets"].items():
                    key = int(bucket)
                    hist.buckets[key] = hist.buckets.get(key, 0) + count
            else:  # pragma: no cover - snapshots are library-produced
                raise ValueError(f"unknown metric kind {kind!r}")

    def to_records(self) -> List[Dict[str, Any]]:
        """JSONL-ready rows, one metric per line, sorted by name."""
        return [{"name": name, **snap}
                for name, snap in self.snapshot().items()]
