"""The bench trajectory: append-only history + the regression gate.

``benchmarks/bench_history.jsonl`` holds one normalized record per
benchmark module per run::

    {"bench": "runner", "sha": "15f7485", "mode": "full",
     "numpy": true, "host": "ci-runner",
     "ts": "2026-08-08T12:00:00Z", "wall": 12.5,
     "det": {"runner/proof_bits": 44826624, ...}}

``bench`` + ``sha`` + ``mode`` key a record: re-running the same
benchmark at the same commit *replaces* (last-wins on load) rather
than growing the trajectory, so the committed file stays one point
per commit.  ``det`` carries the per-module deltas of deterministic
counters — machine-independent bit counts whose drift is always a
real regression — while ``wall`` is environment-dependent and gated
with a noise-aware threshold (ratio over the trailing-window median
plus an absolute floor).

:func:`regress_report` is the pure core behind ``python -m repro obs
regress``: exit 1 on deterministic-bit drift or wall regression of
the newest record against the committed trailing window.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

HISTORY_FILE = "bench_history.jsonl"

#: Defaults for the noise-aware wall gate: newest wall regresses when
#: it exceeds ``median(window) * WALL_RATIO`` *and* the excess is more
#: than ``WALL_FLOOR`` seconds (sub-floor jitter is never flagged).
WALL_RATIO = 1.25
WALL_FLOOR = 0.1
WINDOW = 5


def history_path(bench_dir: Path) -> Path:
    return Path(bench_dir) / HISTORY_FILE


def git_sha(repo: Optional[Path] = None) -> str:
    """The short HEAD sha, or ``unknown`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo) if repo else None, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_mode() -> str:
    """quick (BENCH_QUICK trims workloads) or full — records only
    compare within one mode, because quick-mode bit counts legitimately
    differ from full-mode ones."""
    return "quick" if os.environ.get("BENCH_QUICK") else "full"


def has_numpy() -> bool:
    """Whether the numpy engine is importable — bench workloads (and
    so their deterministic counters) differ with and without it, so
    records only compare within one answer."""
    import importlib.util
    return importlib.util.find_spec("numpy") is not None


def make_record(bench: str, wall: Optional[float],
                det: Dict[str, float],
                sha: Optional[str] = None,
                mode: Optional[str] = None,
                ts: Optional[str] = None,
                numpy: Optional[bool] = None) -> Dict[str, Any]:
    return {
        "bench": bench,
        "sha": sha if sha is not None else git_sha(),
        "mode": mode if mode is not None else bench_mode(),
        "numpy": has_numpy() if numpy is None else numpy,
        "host": socket.gethostname(),
        "ts": ts if ts is not None else time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "wall": None if wall is None else round(float(wall), 6),
        "det": {name: det[name] for name in sorted(det)},
    }


def record_key(record: Dict[str, Any]) -> tuple:
    return (record.get("bench"), record.get("sha"),
            record.get("mode", "full"))


def load_history(path: Path) -> List[Dict[str, Any]]:
    """Every record in file order; malformed lines are skipped (the
    file is append-only and may interleave writers)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="ascii").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("bench"):
            records.append(record)
    return records


def effective_history(records: List[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
    """Last-wins per (bench, sha, mode), in order of last occurrence —
    the trajectory the gate actually compares."""
    by_key: Dict[tuple, Dict[str, Any]] = {}
    for record in records:
        key = record_key(record)
        if key in by_key:
            del by_key[key]
        by_key[key] = record
    return list(by_key.values())


def append_records(path: Path, records: List[Dict[str, Any]]
                   ) -> List[str]:
    """Append records (one JSON line each); returns a human log line
    per record saying whether it was appended (new bench+sha+mode key)
    or replaces an earlier record for the same key."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = {record_key(r) for r in load_history(path)}
    lines = []
    with path.open("a", encoding="ascii") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            key = record_key(record)
            verb = "replaced" if key in existing else "appended"
            existing.add(key)
            lines.append(
                f"bench_history: {verb} {record['bench']} "
                f"@ {record['sha']} [{record.get('mode', 'full')}]")
    return lines


def _comparable(records: List[Dict[str, Any]],
                newest: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Prior records the newest one legitimately compares against:
    same bench, same quick/full mode, same numpy availability."""
    return [r for r in records
            if r.get("bench") == newest.get("bench")
            and r.get("mode", "full") == newest.get("mode", "full")
            and r.get("numpy") == newest.get("numpy")
            and r is not newest]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def regress_report(records: List[Dict[str, Any]],
                   window: int = WINDOW,
                   wall_ratio: float = WALL_RATIO,
                   wall_floor: float = WALL_FLOOR,
                   benches: Optional[List[str]] = None
                   ) -> Dict[str, Any]:
    """Compare each lane's newest record against its trailing window.

    A *lane* is ``(bench, mode, numpy)`` — quick and full runs of the
    same bench evolve independently, as do runs with and without the
    numpy engine, so each lane is gated on its own newest record.
    Deterministic gate: any metric present in both the newest record
    and the most recent prior comparable record whose value changed is
    a **drift** (bit counts are machine-independent; there is no noise
    to allow for).  Wall gate: newest wall > median(trailing window)
    × ``wall_ratio`` *and* excess > ``wall_floor`` seconds.  A lane
    with no comparable prior record reports ``baseline: none`` and
    passes.  Returns ``{"ok", "benches": [...], "drifts": [...],
    "regressions": [...]}``.
    """
    effective = effective_history(records)
    newest_by_lane: Dict[tuple, Dict[str, Any]] = {}
    for record in effective:
        name = record["bench"]
        if benches and name not in benches:
            continue
        newest_by_lane[(name, record.get("mode", "full"),
                        record.get("numpy"))] = record

    rows, drifts, regressions = [], [], []
    for lane in sorted(newest_by_lane,
                       key=lambda k: (k[0], k[1], str(k[2]))):
        name = lane[0]
        newest = newest_by_lane[lane]
        prior = _comparable(effective, newest)
        row: Dict[str, Any] = {
            "bench": name, "sha": newest.get("sha"),
            "mode": newest.get("mode", "full"),
            "numpy": newest.get("numpy"),
            "wall": newest.get("wall"), "ok": True,
        }
        if not prior:
            row["baseline"] = "none"
            rows.append(row)
            continue

        latest_prior = prior[-1]
        row["baseline"] = {"sha": latest_prior.get("sha"),
                           "records": min(len(prior), window)}
        for metric in sorted(set(newest.get("det", {}))
                             & set(latest_prior.get("det", {}))):
            new_value = newest["det"][metric]
            old_value = latest_prior["det"][metric]
            if new_value != old_value:
                drift = {"bench": name, "metric": metric,
                         "old": old_value, "new": new_value,
                         "old_sha": latest_prior.get("sha")}
                drifts.append(drift)
                row["ok"] = False

        walls = [r["wall"] for r in prior[-window:]
                 if r.get("wall") is not None]
        if walls and newest.get("wall") is not None:
            median = _median(walls)
            row["wall_median"] = round(median, 6)
            excess = newest["wall"] - median
            if (median > 0 and newest["wall"] > median * wall_ratio
                    and excess > wall_floor):
                regressions.append(
                    {"bench": name, "wall": newest["wall"],
                     "median": round(median, 6),
                     "ratio": round(newest["wall"] / median, 3)})
                row["ok"] = False
        rows.append(row)

    return {"ok": not drifts and not regressions, "benches": rows,
            "drifts": drifts, "regressions": regressions}
