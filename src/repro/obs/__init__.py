"""repro.obs — unified tracing, metrics and profiling.

One zero-dependency observability layer shared by every engine in the
repo: the abstract runner (:mod:`repro.core.runner`), the netsim
substrate (:mod:`repro.netsim`), the adversary search/certifier
(:mod:`repro.adversary`) and the lab orchestrator (:mod:`repro.lab`).

Three ideas:

* **Ambient session** (:func:`session` / :func:`active`) — when no
  session is installed, every instrumentation site short-circuits on a
  single module-global read, so observability costs nothing when off
  (the ``bench_obs`` gate pins the overhead under 3%).
* **Deterministic spans** (:class:`Tracer` / :class:`Span`) — each
  span splits identity (``attrs``/``metrics``, byte-identical across
  reruns and worker counts) from environment (``seconds``/``meta``/
  ``profile``); the deterministic projection makes parallel ≡ serial a
  byte-equality check.
* **Namespaced metrics** (:class:`MetricsRegistry`) — runner, netsim,
  adversary and lab numbers all land under one slash-namespaced
  registry with order-deterministic worker merging.

Live telemetry (:mod:`repro.obs.live`) adds Prometheus text
exposition, bounded metric/trace rings behind the serve HTTP
endpoints, and :func:`stitch_spans` — the cross-process trace
reassembly over the ``trace_context()``/``adopt_context()`` meta
links.  The bench trajectory (:mod:`repro.obs.history`) is the
append-only ``bench_history.jsonl`` plus :func:`regress_report`, the
pure core of the ``obs regress`` gate.

CLI: ``python -m repro obs record|report|top|diff|tail|dash|regress``.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NS_ADVERSARY, NS_LAB, NS_NETSIM, NS_RUNNER)
from .history import (HISTORY_FILE, append_records, bench_mode,
                      effective_history, git_sha, load_history,
                      make_record, regress_report)
from .io import ObsRun, default_obs_root, load_run, resolve_run
from .live import (MetricsRing, TraceRing, histogram_quantile,
                   metric_scalar, prometheus_name, prometheus_text,
                   snapshot_deltas, stitch_spans)
from .profiling import PROFILE_CPROFILE, PROFILE_MODES, PROFILE_TRACEMALLOC, \
    profiled
from .recorder import BenchRecorder, bench_id, bench_summary_name
from .session import (Collected, EMPTY_COLLECTED, ObsSession, active,
                      adopt_context, collecting, export_collected,
                      merge_collected, session, use_session)
from .trace import (DETERMINISTIC_KEYS, Span, Tracer, deterministic_span,
                    flatten_spans, nest_spans)

__all__ = [
    "BenchRecorder",
    "Collected",
    "Counter",
    "DETERMINISTIC_KEYS",
    "EMPTY_COLLECTED",
    "Gauge",
    "HISTORY_FILE",
    "Histogram",
    "MetricsRegistry",
    "MetricsRing",
    "NS_ADVERSARY",
    "NS_LAB",
    "NS_NETSIM",
    "NS_RUNNER",
    "ObsRun",
    "ObsSession",
    "PROFILE_CPROFILE",
    "PROFILE_MODES",
    "PROFILE_TRACEMALLOC",
    "Span",
    "TraceRing",
    "Tracer",
    "active",
    "adopt_context",
    "append_records",
    "bench_id",
    "bench_mode",
    "bench_summary_name",
    "collecting",
    "default_obs_root",
    "deterministic_span",
    "effective_history",
    "export_collected",
    "flatten_spans",
    "git_sha",
    "histogram_quantile",
    "load_history",
    "load_run",
    "make_record",
    "merge_collected",
    "metric_scalar",
    "nest_spans",
    "profiled",
    "prometheus_name",
    "prometheus_text",
    "regress_report",
    "resolve_run",
    "session",
    "snapshot_deltas",
    "stitch_spans",
    "use_session",
]
