"""repro.obs — unified tracing, metrics and profiling.

One zero-dependency observability layer shared by every engine in the
repo: the abstract runner (:mod:`repro.core.runner`), the netsim
substrate (:mod:`repro.netsim`), the adversary search/certifier
(:mod:`repro.adversary`) and the lab orchestrator (:mod:`repro.lab`).

Three ideas:

* **Ambient session** (:func:`session` / :func:`active`) — when no
  session is installed, every instrumentation site short-circuits on a
  single module-global read, so observability costs nothing when off
  (the ``bench_obs`` gate pins the overhead under 3%).
* **Deterministic spans** (:class:`Tracer` / :class:`Span`) — each
  span splits identity (``attrs``/``metrics``, byte-identical across
  reruns and worker counts) from environment (``seconds``/``meta``/
  ``profile``); the deterministic projection makes parallel ≡ serial a
  byte-equality check.
* **Namespaced metrics** (:class:`MetricsRegistry`) — runner, netsim,
  adversary and lab numbers all land under one slash-namespaced
  registry with order-deterministic worker merging.

CLI: ``python -m repro obs record|report|top|diff``.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NS_ADVERSARY, NS_LAB, NS_NETSIM, NS_RUNNER)
from .io import ObsRun, default_obs_root, load_run, resolve_run
from .profiling import PROFILE_CPROFILE, PROFILE_MODES, PROFILE_TRACEMALLOC, \
    profiled
from .recorder import BenchRecorder, bench_summary_name
from .session import (Collected, EMPTY_COLLECTED, ObsSession, active,
                      collecting, export_collected, merge_collected,
                      session, use_session)
from .trace import (DETERMINISTIC_KEYS, Span, Tracer, deterministic_span,
                    flatten_spans, nest_spans)

__all__ = [
    "BenchRecorder",
    "Collected",
    "Counter",
    "DETERMINISTIC_KEYS",
    "EMPTY_COLLECTED",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NS_ADVERSARY",
    "NS_LAB",
    "NS_NETSIM",
    "NS_RUNNER",
    "ObsRun",
    "ObsSession",
    "PROFILE_CPROFILE",
    "PROFILE_MODES",
    "PROFILE_TRACEMALLOC",
    "Span",
    "Tracer",
    "active",
    "bench_summary_name",
    "collecting",
    "default_obs_root",
    "deterministic_span",
    "export_collected",
    "flatten_spans",
    "load_run",
    "merge_collected",
    "nest_spans",
    "profiled",
    "resolve_run",
    "session",
    "use_session",
]
