"""graph6 encoding — compact, interoperable graph serialization.

The de-facto interchange format of the graph-enumeration world
(McKay's *nauty* suite, House of Graphs, networkx): an undirected
simple graph on n ≤ 62 vertices becomes a short printable-ASCII
string.  We implement the standard byte layout (see the `formats.txt`
specification shipped with nauty):

* one byte ``n + 63`` for the vertex count (the ``n ≤ 62`` regime;
  larger headers are also decoded for completeness),
* the upper-triangle adjacency bits (column-major: pairs ``(0,1),
  (0,2), (1,2), (0,3) ...``), packed big-endian six bits per byte,
  each byte offset by 63.

Why it lives here: rigid families and experiment instances are worth
pinning in files (regression anchors, cross-checking against nauty's
published counts), and a one-line string beats a pickled edge list.
"""

from __future__ import annotations

from typing import Iterable, List

from .graph import Graph

_OFFSET = 63
_MAX_SMALL_N = 62


def _pair_sequence(n: int):
    """graph6 bit order: (j, i) for j in 1..n-1, i in 0..j-1."""
    for j in range(1, n):
        for i in range(j):
            yield (i, j)


def graph_to_graph6(graph: Graph) -> str:
    """Encode a graph as a graph6 string (n ≤ 62)."""
    n = graph.n
    if n > _MAX_SMALL_N:
        raise ValueError(f"graph6 short form supports n <= 62, got {n}")
    bits: List[int] = []
    for i, j in _pair_sequence(n):
        bits.append(1 if graph.has_edge(i, j) else 0)
    while len(bits) % 6 != 0:
        bits.append(0)
    chars = [chr(n + _OFFSET)]
    for k in range(0, len(bits), 6):
        value = 0
        for b in bits[k:k + 6]:
            value = (value << 1) | b
        chars.append(chr(value + _OFFSET))
    return "".join(chars)


def graph_from_graph6(text: str) -> Graph:
    """Decode a graph6 string (short or long n-header)."""
    data = [ord(c) - _OFFSET for c in text.strip()]
    if not data:
        raise ValueError("empty graph6 string")
    if any(not 0 <= x < 64 for x in data):
        raise ValueError("invalid graph6 characters")
    if data[0] <= _MAX_SMALL_N:
        n = data[0]
        body = data[1:]
    elif data[0] == 63 and len(data) >= 4 and data[1] <= _MAX_SMALL_N:
        # 18-bit n: '~' then three sextets.
        n = (data[1] << 12) | (data[2] << 6) | data[3]
        body = data[4:]
    else:
        raise ValueError("unsupported graph6 header")
    bits_needed = n * (n - 1) // 2
    if len(body) * 6 < bits_needed:
        raise ValueError("graph6 string too short for its vertex count")
    bits: List[int] = []
    for value in body:
        for shift in range(5, -1, -1):
            bits.append((value >> shift) & 1)
    edges = [(i, j) for (i, j), bit in zip(_pair_sequence(n), bits) if bit]
    # Trailing padding bits must be zero.
    if any(bits[bits_needed:len(body) * 6]):
        raise ValueError("nonzero padding bits in graph6 string")
    return Graph(n, edges)


def write_graph6_file(graphs: Iterable[Graph], path: str) -> int:
    """Write one graph6 line per graph; returns the count written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for graph in graphs:
            handle.write(graph_to_graph6(graph) + "\n")
            count += 1
    return count


def read_graph6_file(path: str) -> List[Graph]:
    """Read a graph6 file (one graph per non-empty line)."""
    graphs = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if line:
                graphs.append(graph_from_graph6(line))
    return graphs
