"""Graph generators used by the protocols, tests and benchmarks.

All generators return :class:`repro.graphs.graph.Graph` instances on
vertex set ``0..n-1``.  Randomized generators take an explicit
``random.Random`` instance (never the global RNG) so every experiment
is reproducible from a seed — this matters because acceptance
probabilities are the quantity under test.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Sequence, Tuple

from .graph import Graph


def empty_graph(n: int) -> Graph:
    """The edgeless graph on ``n`` vertices."""
    return Graph(n)


def complete_graph(n: int) -> Graph:
    """The complete graph K_n."""
    return Graph(n, itertools.combinations(range(n), 2))


def path_graph(n: int) -> Graph:
    """The path 0 - 1 - ... - (n-1)."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 vertices, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def star_graph(n: int) -> Graph:
    """The star K_{1,n-1} with center 0."""
    if n < 1:
        raise ValueError("star needs at least one vertex")
    return Graph(n, ((0, i) for i in range(1, n)))


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b} with parts ``0..a-1`` and ``a..a+b-1``."""
    return Graph(a + b, ((i, a + j) for i in range(a) for j in range(b)))


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid; vertex ``(r, c)`` is ``r*cols + c``."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges)


def gnp_random_graph(n: int, p: float, rng: random.Random) -> Graph:
    """Erdős–Rényi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    edges = [e for e in itertools.combinations(range(n), 2)
             if rng.random() < p]
    return Graph(n, edges)


def random_connected_graph(n: int, p: float, rng: random.Random,
                           max_tries: int = 1000) -> Graph:
    """A connected G(n, p) sample; falls back to adding a random spanning
    tree's edges if sparse sampling keeps producing disconnected graphs.
    """
    for _ in range(max_tries):
        graph = gnp_random_graph(n, p, rng)
        if graph.is_connected():
            return graph
    # Guarantee connectivity: overlay a random spanning tree.
    graph = gnp_random_graph(n, p, rng)
    return graph.with_edges(random_tree(n, rng).edges)


def random_tree(n: int, rng: random.Random) -> Graph:
    """A uniformly random labeled tree (random attachment; n >= 1)."""
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    if n == 1:
        return Graph(1)
    # Random Prüfer sequence gives a uniform labeled tree.
    if n == 2:
        return Graph(2, [(0, 1)])
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(prufer)


def tree_from_prufer(prufer: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into the tree it encodes."""
    n = len(prufer) + 2
    degree = [1] * n
    for v in prufer:
        if not 0 <= v < n:
            raise ValueError(f"Prüfer entry {v} out of range for n={n}")
        degree[v] += 1
    edges: List[Tuple[int, int]] = []
    # Min-leaf decoding (simple O(n^2); n here is small).
    prufer = list(prufer)
    leaves = sorted(v for v in range(n) if degree[v] == 1)
    for v in prufer:
        leaf = leaves.pop(0)
        edges.append((leaf, v))
        degree[v] -= 1
        if degree[v] == 1:
            # Insert keeping sorted order.
            lo = 0
            while lo < len(leaves) and leaves[lo] < v:
                lo += 1
            leaves.insert(lo, v)
    edges.append((leaves[0], leaves[1]))
    return Graph(n, edges)


def random_regular_graph(n: int, d: int, rng: random.Random,
                         max_tries: int = 200) -> Graph:
    """A random d-regular simple graph via the configuration model.

    Retries until a simple matching is found; raises ``RuntimeError``
    if ``max_tries`` pairings all produce loops/multi-edges.
    """
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ValueError("degree must be below n")
    stubs = [v for v in range(n) for _ in range(d)]
    for _ in range(max_tries):
        rng.shuffle(stubs)
        pairs = list(zip(stubs[0::2], stubs[1::2]))
        seen = set()
        ok = True
        for u, v in pairs:
            if u == v or (min(u, v), max(u, v)) in seen:
                ok = False
                break
            seen.add((min(u, v), max(u, v)))
        if ok:
            return Graph(n, pairs)
    raise RuntimeError(f"failed to sample a simple {d}-regular graph on "
                       f"{n} vertices after {max_tries} tries")


def double_star(left_leaves: int, right_leaves: int) -> Graph:
    """Two adjacent centers (0 and 1) with pendant leaves.

    ``double_star(k, k)`` is a small symmetric graph (swap the two
    stars); ``double_star(k, k+1)`` is asymmetric for k >= ... (the two
    centers become distinguishable) — handy in tests.
    """
    n = 2 + left_leaves + right_leaves
    edges = [(0, 1)]
    edges += [(0, 2 + i) for i in range(left_leaves)]
    edges += [(1, 2 + left_leaves + i) for i in range(right_leaves)]
    return Graph(n, edges)


def disjoint_copies(base: Graph, copies: int) -> Graph:
    """``copies`` disjoint copies of ``base`` (a symmetric graph for >= 2)."""
    result = base
    for _ in range(copies - 1):
        result = result.disjoint_union(base)
    return result


def symmetric_doubled_graph(base: Graph, bridge_length: int = 1) -> Graph:
    """Two copies of ``base`` joined by a path between the two copies of
    vertex 0 — symmetric by construction (mirror automorphism).

    With ``bridge_length = r`` there are ``r`` intermediate path
    vertices; ``r = 0`` joins the two copies of vertex 0 directly.
    """
    n = base.n
    edges = list(base.edges)
    edges += [(u + n, v + n) for u, v in base.edges]
    prev = 0
    for i in range(bridge_length):
        mid = 2 * n + i
        edges.append((prev, mid))
        prev = mid
    edges.append((prev, n))
    return Graph(2 * n + bridge_length, edges)


def all_graphs(n: int) -> Iterator[Graph]:
    """Enumerate every labeled simple graph on ``n`` vertices.

    There are ``2^(n(n-1)/2)`` of them; intended for ``n <= 6`` in tests
    and family construction.
    """
    all_pairs = list(itertools.combinations(range(n), 2))
    for bits in range(1 << len(all_pairs)):
        yield Graph(n, (all_pairs[i] for i in range(len(all_pairs))
                        if bits >> i & 1))


def all_connected_graphs(n: int) -> Iterator[Graph]:
    """Enumerate connected labeled graphs on ``n`` vertices (small n)."""
    return (g for g in all_graphs(n) if g.is_connected())
