"""Dumbbell graphs: the lower-bound family (Section 3.4) and the
Dumbbell-Symmetry language DSym (Section 3.3, Definition 5).

Two constructions share the shape "two n-vertex graphs joined by a
path", but differ in detail:

* :func:`lower_bound_dumbbell` — the family ``G(F_A, F_B)`` of the
  Ω(log log n) lower bound: copies of rigid graphs ``F_A, F_B`` on
  vertex sets ``V_A, V_B``, joined through two dedicated *bridge nodes*
  ``x_A, x_B``.  Key property (tested):  ``G(F_A, F_B)`` has a
  non-trivial automorphism iff ``F_A = F_B``.

* :func:`dsym_graph` / :func:`in_dsym` — Definition 5's language DSym:
  graphs on ``2n + 2r + 1`` vertices where ``x ↦ x + n`` is an
  isomorphism between the two induced halves and the halves are joined
  by the specific path ``0 - 2n - 2n+1 - ... - 2n+2r - n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .graph import Graph


# ----------------------------------------------------------------------
# Lower-bound dumbbells  G(F_A, F_B)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DumbbellLayout:
    """Vertex layout of a lower-bound dumbbell on inner size ``n``.

    Vertices ``0..n-1`` host the copy of ``F_A`` (set ``V_A``),
    ``n..2n-1`` host ``F_B`` (set ``V_B``), ``2n`` is the bridge node
    ``x_A`` and ``2n+1`` is ``x_B``.  The attachment points are
    ``v_A = 0`` and ``v_B = n`` (fixed, as in the paper).
    """

    inner_n: int

    @property
    def total_n(self) -> int:
        return 2 * self.inner_n + 2

    @property
    def v_a(self) -> int:
        return 0

    @property
    def v_b(self) -> int:
        return self.inner_n

    @property
    def x_a(self) -> int:
        return 2 * self.inner_n

    @property
    def x_b(self) -> int:
        return 2 * self.inner_n + 1

    @property
    def side_a(self) -> range:
        return range(0, self.inner_n)

    @property
    def side_b(self) -> range:
        return range(self.inner_n, 2 * self.inner_n)


def lower_bound_dumbbell(f_a: Graph, f_b: Graph) -> Graph:
    """The graph ``G(F_A, F_B)`` from Section 3.4.

    Both inner graphs must have the same vertex count ``n``.  Edges:
    the copy of ``F_A`` on ``0..n-1``, the copy of ``F_B`` on
    ``n..2n-1``, and the bridge ``{v_A, x_A}, {x_A, x_B}, {x_B, v_B}``.
    """
    if f_a.n != f_b.n:
        raise ValueError("both sides of the dumbbell must have equal size")
    layout = DumbbellLayout(f_a.n)
    n = f_a.n
    edges = list(f_a.edges)
    edges += [(u + n, v + n) for u, v in f_b.edges]
    edges += [(layout.v_a, layout.x_a),
              (layout.x_a, layout.x_b),
              (layout.x_b, layout.v_b)]
    return Graph(layout.total_n, edges)


def dumbbell_mirror_map(inner_n: int) -> Tuple[int, ...]:
    """The mirror permutation swapping the two sides of the dumbbell.

    Maps ``i ↔ i + n`` for inner vertices and ``x_A ↔ x_B``.  This is
    an automorphism of ``G(F, F)`` for any ``F`` — the witness the
    honest prover uses on the symmetric lower-bound instances.
    """
    layout = DumbbellLayout(inner_n)
    mapping = list(range(layout.total_n))
    for i in range(inner_n):
        mapping[i] = i + inner_n
        mapping[i + inner_n] = i
    mapping[layout.x_a] = layout.x_b
    mapping[layout.x_b] = layout.x_a
    return tuple(mapping)


# ----------------------------------------------------------------------
# DSym (Definition 5)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DSymLayout:
    """Vertex layout of a DSym instance: parameters ``n`` (half size)
    and ``r`` (the path has ``2r + 1`` internal vertices
    ``2n .. 2n+2r``).  Total vertex count ``2n + 2r + 1``.
    """

    n: int
    r: int

    @property
    def total_n(self) -> int:
        return 2 * self.n + 2 * self.r + 1

    @property
    def half_a(self) -> range:
        return range(0, self.n)

    @property
    def half_b(self) -> range:
        return range(self.n, 2 * self.n)

    @property
    def path_vertices(self) -> range:
        return range(2 * self.n, 2 * self.n + 2 * self.r + 1)

    def path_sequence(self) -> List[int]:
        """The full path as a vertex sequence, endpoints included:
        ``0, 2n, 2n+1, ..., 2n+2r, n``."""
        return [0] + list(self.path_vertices) + [self.n]

    @classmethod
    def from_total(cls, total_n: int, n: int) -> "DSymLayout":
        """Recover the layout from total vertex count and half size."""
        rest = total_n - 2 * n - 1
        if rest < 0 or rest % 2 != 0:
            raise ValueError(f"total {total_n} incompatible with half size {n}")
        return cls(n, rest // 2)


def dsym_automorphism(layout: DSymLayout) -> Tuple[int, ...]:
    """The *fixed* automorphism σ of Definition 5 / Theorem 3.6.

    σ swaps the halves (``x ↦ x ± n``) and reverses the path
    (``2n + j ↦ 2n + 2r - j``).  Note the path midpoint ``2n + r`` is a
    fixed point — σ is still non-trivial since it moves vertex 0.
    """
    mapping = list(range(layout.total_n))
    for x in layout.half_a:
        mapping[x] = x + layout.n
    for x in layout.half_b:
        mapping[x] = x - layout.n
    for j in range(2 * layout.r + 1):
        mapping[2 * layout.n + j] = 2 * layout.n + (2 * layout.r - j)
    return tuple(mapping)


def dsym_graph(half: Graph, r: int) -> Graph:
    """A YES-instance of DSym: two copies of ``half`` joined by the path.

    ``half`` lives on ``0..n-1``; its second copy on ``n..2n-1`` via
    ``x ↦ x + n``; the connecting path uses ``2n..2n+2r``.
    """
    layout = DSymLayout(half.n, r)
    n = half.n
    edges = list(half.edges)
    edges += [(u + n, v + n) for u, v in half.edges]
    path = layout.path_sequence()
    edges += list(zip(path, path[1:]))
    return Graph(layout.total_n, edges)


def dsym_no_instance(half_a: Graph, half_b: Graph, r: int) -> Graph:
    """A dumbbell with the DSym wiring but (generally) different halves.

    When ``half_a`` and ``half_b`` differ as *labeled* graphs the
    result is not in DSym (the fixed map ``x ↦ x + n`` fails), which is
    exactly what the separation experiment needs.
    """
    if half_a.n != half_b.n:
        raise ValueError("halves must have equal size")
    layout = DSymLayout(half_a.n, r)
    n = half_a.n
    edges = list(half_a.edges)
    edges += [(u + n, v + n) for u, v in half_b.edges]
    path = layout.path_sequence()
    edges += list(zip(path, path[1:]))
    return Graph(layout.total_n, edges)


def in_dsym(graph: Graph, n: int) -> bool:
    """Membership test for DSym (Definition 5), given the half size ``n``.

    Checks the three conditions: (1) ``x ↦ x + n`` maps the induced
    subgraph on ``0..n-1`` isomorphically onto the one on ``n..2n-1``;
    (2) the connecting path is present; (3) no other edges exist.
    """
    try:
        layout = DSymLayout.from_total(graph.n, n)
    except ValueError:
        return False

    # Condition 2: the path is present.
    path = layout.path_sequence()
    path_edges = {(min(a, b), max(a, b)) for a, b in zip(path, path[1:])}
    if not all(graph.has_edge(a, b) for a, b in path_edges):
        return False

    # Conditions 1 and 3 together: classify every edge.
    half_a_set = set(layout.half_a)
    half_b_set = set(layout.half_b)
    edges_a = set()
    edges_b = set()
    for u, v in graph.edges:
        if (u, v) in path_edges:
            continue
        if u in half_a_set and v in half_a_set:
            edges_a.add((u, v))
        elif u in half_b_set and v in half_b_set:
            edges_b.add((u, v))
        else:
            return False  # condition 3 violated
    shifted_a = {(u + n, v + n) for u, v in edges_a}
    return shifted_a == edges_b
