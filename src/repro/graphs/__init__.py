"""Graph substrate: immutable graphs, generators, automorphism and
isomorphism machinery, rigid families and dumbbell constructions."""

from .automorphism import (all_automorphisms, automorphism_group_order,
                           find_nontrivial_automorphism, is_asymmetric,
                           is_automorphism, is_symmetric, orbits,
                           refine_colors)
from .dumbbell import (DSymLayout, DumbbellLayout, dsym_automorphism,
                       dsym_graph, dsym_no_instance, dumbbell_mirror_map,
                       in_dsym, lower_bound_dumbbell)
from .families import (SMALLEST_ASYMMETRIC, count_rigid_classes,
                       rigid_family, rigid_family_exhaustive,
                       rigid_family_sampled)
from .generators import (all_connected_graphs, all_graphs, complete_bipartite_graph,
                         complete_graph, cycle_graph, disjoint_copies,
                         double_star, empty_graph, gnp_random_graph,
                         grid_graph, path_graph, random_connected_graph,
                         random_regular_graph, random_tree, star_graph,
                         symmetric_doubled_graph, tree_from_prufer)
from .graph import Graph
from .graph6 import (graph_from_graph6, graph_to_graph6,
                     read_graph6_file, write_graph6_file)
from .isomorphism import (IsomorphismClassIndex, are_isomorphic,
                          canonical_form, canonical_key, canonical_labeling,
                          find_isomorphism, is_isomorphism)

__all__ = [name for name in dir() if not name.startswith("_")]
