"""Isomorphism testing and canonical labeling.

Used by:

* the GNI honest prover (decide which of two scrambled graphs it was
  shown, i.e. test isomorphism);
* :mod:`repro.graphs.families` (deduplicate graphs up to isomorphism
  via canonical forms);
* tests, as an oracle cross-checked against ``networkx``.

Canonical form: color refinement to fix an ordered partition, then
branch-and-bound over refinement-compatible orderings minimizing the
packed adjacency encoding.  Exact for all graphs; practical for the
small ``n`` this library simulates (n ≲ 10 for canonical forms; the
protocols themselves scale further since they never canonicalize).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .automorphism import _search_isomorphisms, refine_colors
from .graph import Graph


def find_isomorphism(g1: Graph, g2: Graph) -> Optional[Tuple[int, ...]]:
    """An isomorphism ``g1 -> g2`` as a mapping tuple, or None."""
    for mapping in _search_isomorphisms(g1, g2):
        return mapping
    return None


def are_isomorphic(g1: Graph, g2: Graph) -> bool:
    """Whether the two graphs are isomorphic."""
    return find_isomorphism(g1, g2) is not None


def is_isomorphism(g1: Graph, g2: Graph, mapping: Sequence[int]) -> bool:
    """Verify that ``mapping`` is an isomorphism from ``g1`` to ``g2``."""
    n = g1.n
    if g2.n != n or len(mapping) != n or sorted(mapping) != list(range(n)):
        return False
    if g1.num_edges != g2.num_edges:
        return False
    return all(g2.has_edge(mapping[u], mapping[v]) for u, v in g1.edges)


def canonical_labeling(graph: Graph) -> Tuple[int, ...]:
    """A canonical vertex ordering: ``graph.relabel(result)`` is the
    canonical form, identical for all graphs isomorphic to ``graph``.

    Branch-and-bound: vertices are placed one at a time; candidates are
    restricted to the smallest surviving refinement class, and partial
    encodings are compared row-by-row so dominated branches are cut.
    """
    n = graph.n
    if n == 0:
        return ()
    colors = refine_colors(graph)

    best_perm: List[Optional[Tuple[int, ...]]] = [None]
    best_rows: List[List[int]] = [[]]

    def row_of(placed: List[int], v: int) -> int:
        """Adjacency bits of v against already-placed vertices (and self)."""
        row = 0
        for i, u in enumerate(placed):
            if graph.has_edge(v, u):
                row |= 1 << i
        return row

    def backtrack(placed: List[int], rows: List[int], used: List[bool]) -> None:
        depth = len(placed)
        if depth == n:
            if best_perm[0] is None or rows < best_rows[0]:
                # mapping[v] = position of v in canonical order.
                perm = [0] * n
                for pos, v in enumerate(placed):
                    perm[v] = pos
                best_perm[0] = tuple(perm)
                best_rows[0] = list(rows)
            return
        # Candidates: unplaced vertices, smallest color first (a fixed
        # isomorphism-invariant target-cell rule keeps this canonical).
        remaining = [v for v in range(n) if not used[v]]
        min_color = min(colors[v] for v in remaining)
        cands = [v for v in remaining if colors[v] == min_color]
        scored = sorted((row_of(placed, v), v) for v in cands)
        for row, v in scored:
            new_rows = rows + [row]
            if best_perm[0] is not None:
                prefix = best_rows[0][:depth + 1]
                if new_rows > prefix:
                    break  # sorted by row; all further rows also worse
            used[v] = True
            backtrack(placed + [v], new_rows, used)
            used[v] = False

    backtrack([], [], [False] * n)
    assert best_perm[0] is not None
    return best_perm[0]


def canonical_form(graph: Graph) -> Graph:
    """The canonical representative of ``graph``'s isomorphism class.

    ``canonical_form(g1) == canonical_form(g2)`` iff ``g1 ≅ g2``.
    """
    return graph.relabel(list(canonical_labeling(graph)))


def canonical_key(graph: Graph) -> Tuple[int, int]:
    """A hashable isomorphism-class key: (n, packed canonical adjacency)."""
    cf = canonical_form(graph)
    return (cf.n, cf.open_adjacency_bits())


class IsomorphismClassIndex:
    """A set of graphs deduplicated up to isomorphism.

    Cheap invariants (degree sequence, refinement color histogram) are
    checked before computing canonical forms, so bulk insertion of
    random graphs stays fast.
    """

    def __init__(self) -> None:
        self._keys: Dict[Tuple[int, int], Graph] = {}

    def add(self, graph: Graph) -> bool:
        """Insert; returns True if this isomorphism class is new."""
        key = canonical_key(graph)
        if key in self._keys:
            return False
        self._keys[key] = graph
        return True

    def __contains__(self, graph: Graph) -> bool:
        return canonical_key(graph) in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def representatives(self) -> List[Graph]:
        """One representative per isomorphism class, insertion order."""
        return list(self._keys.values())
