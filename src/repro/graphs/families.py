"""Families of rigid (asymmetric), pairwise-non-isomorphic graphs.

Section 3.4 of the paper needs "a large family F of graphs on vertices
{1..n} ... all graphs in F are asymmetric, and no two graphs in F are
isomorphic to each other"; for large n such families have size
``2^Ω(n²)``.  The lower-bound machinery and its tests instantiate F at
small n:

* exhaustive enumeration for n = 6, 7 (the smallest asymmetric graphs
  have 6 vertices);
* randomized sampling with canonical-form deduplication for larger n,
  where exhaustive enumeration is out of reach but rigid graphs are
  overwhelmingly common (a G(n, 1/2) graph is asymmetric w.h.p.).
"""

from __future__ import annotations

import random
from typing import List, Optional

from .automorphism import is_asymmetric
from .generators import all_graphs, gnp_random_graph
from .graph import Graph
from .isomorphism import IsomorphismClassIndex

#: A smallest asymmetric graph: 6 vertices, 6 edges (one of the 8
#: connected rigid isomorphism classes on 6 vertices, found by
#: exhaustive enumeration and pinned here; tests re-verify rigidity).
SMALLEST_ASYMMETRIC = Graph(6, [(0, 2), (0, 3), (0, 5), (1, 2), (1, 4),
                                (2, 3)])


def rigid_family_exhaustive(n: int,
                            max_size: Optional[int] = None,
                            connected_only: bool = True) -> List[Graph]:
    """All asymmetric graphs on ``n`` vertices, one per isomorphism class.

    Enumerates all ``2^(n(n-1)/2)`` labeled graphs, so intended for
    ``n <= 7`` (and n = 7 already takes a while; tests use n = 6).
    Returns an empty list for n < 6, where no asymmetric graphs exist
    (except the trivial n=1 graph, excluded because the protocols need
    at least the bridge structure around them).
    """
    index = IsomorphismClassIndex()
    result: List[Graph] = []
    for graph in all_graphs(n):
        if connected_only and not graph.is_connected():
            continue
        if not is_asymmetric(graph):
            continue
        if index.add(graph):
            result.append(graph)
            if max_size is not None and len(result) >= max_size:
                break
    return result


def rigid_family_sampled(n: int, size: int, rng: random.Random,
                         p: float = 0.5,
                         max_tries: Optional[int] = None,
                         connected_only: bool = True) -> List[Graph]:
    """``size`` rigid, pairwise-non-isomorphic graphs on ``n`` vertices.

    Samples G(n, p) graphs, keeps the asymmetric ones, and deduplicates
    by canonical form.  For n >= 8 and p = 1/2 nearly every sample is
    rigid and fresh, so this terminates quickly.

    Raises ``RuntimeError`` if ``max_tries`` samples (default
    ``200 * size``) do not produce enough classes — a sign ``n`` is too
    small for the requested family size.
    """
    if n < 6:
        raise ValueError(f"no asymmetric graphs exist on n={n} >= 2 vertices "
                         "below 6")
    if max_tries is None:
        max_tries = 200 * size
    index = IsomorphismClassIndex()
    result: List[Graph] = []
    for _ in range(max_tries):
        graph = gnp_random_graph(n, p, rng)
        if connected_only and not graph.is_connected():
            continue
        if not is_asymmetric(graph):
            continue
        if index.add(graph):
            result.append(graph)
            if len(result) >= size:
                return result
    raise RuntimeError(
        f"only found {len(result)}/{size} rigid isomorphism classes on "
        f"n={n} vertices after {max_tries} samples")


def rigid_family(n: int, size: int,
                 rng: Optional[random.Random] = None) -> List[Graph]:
    """Convenience front-end: exhaustive for n <= 6, sampled above.

    The returned family always has exactly ``size`` members; raises if
    the isomorphism classes on ``n`` vertices cannot supply that many.
    """
    if n <= 6:
        family = rigid_family_exhaustive(n, max_size=size)
        if len(family) < size:
            raise ValueError(
                f"only {len(family)} rigid classes exist on {n} vertices; "
                f"requested {size}")
        return family
    return rigid_family_sampled(n, size, rng or random.Random(0))


def count_rigid_classes(n: int) -> int:
    """Number of connected rigid isomorphism classes on ``n`` vertices.

    Exhaustive; n <= 6 in practice (n=6 gives 8 connected classes).
    """
    return len(rigid_family_exhaustive(n))
