"""Automorphism search: the honest prover's toolbox for Sym.

The paper's honest prover for Protocols 1 and 2 must *find* a
non-trivial automorphism of the network graph (the prover is
computationally unbounded; we pay with a backtracking search that is
fast at the sizes our simulator runs).

Implementation: classic color-refinement (1-WL) to split vertices into
equivalence classes, then backtracking over color-respecting partial
maps with incremental adjacency consistency checks.  This is exact —
refinement only *prunes*, the backtracking decides.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .graph import Graph


def refine_colors(graph: Graph,
                  initial: Optional[Sequence[int]] = None,
                  max_rounds: Optional[int] = None) -> Tuple[int, ...]:
    """Stable coloring via 1-dimensional Weisfeiler–Leman refinement.

    Starting from ``initial`` (default: all vertices one color), each
    round recolors every vertex by (its color, multiset of neighbor
    colors) until a fixed point.  Colors are renumbered each round by
    *sorted signature*, which makes the numbering labeling-invariant:
    isomorphic graphs get identical color histograms with matching
    color identities.  (First-appearance numbering would not — it
    depends on the vertex labeling — and the isomorphism search below
    matches candidate targets by color id across two graphs.)

    Two vertices that can be exchanged by an automorphism always end up
    with the same color, so refinement classes are sound pruning sets.
    """
    n = graph.n
    colors: List[int] = list(initial) if initial is not None else [0] * n
    if len(colors) != n:
        raise ValueError("initial coloring has wrong length")
    rounds = 0
    while True:
        signatures = []
        for v in range(n):
            neighbor_colors = sorted(colors[u] for u in graph.neighbors(v))
            signatures.append((colors[v], tuple(neighbor_colors)))
        palette = {sig: rank
                   for rank, sig in enumerate(sorted(set(signatures)))}
        new_colors = [palette[sig] for sig in signatures]
        rounds += 1
        if new_colors == colors or (max_rounds is not None
                                    and rounds >= max_rounds):
            return tuple(new_colors)
        colors = new_colors


def _search_isomorphisms(g1: Graph, g2: Graph,
                         forced: Optional[Dict[int, int]] = None
                         ) -> Iterator[Tuple[int, ...]]:
    """Yield every isomorphism ``g1 -> g2`` extending ``forced``.

    ``forced`` is a partial map {vertex of g1: vertex of g2}.  Yields
    mappings as tuples (``mapping[v]`` = image of v).  Exact algorithm;
    refinement colors prune candidate targets.
    """
    if g1.n != g2.n or g1.num_edges != g2.num_edges:
        return
    n = g1.n
    colors1 = refine_colors(g1)
    colors2 = refine_colors(g2)
    hist1 = sorted(colors1)
    hist2 = sorted(colors2)
    if hist1 != hist2:
        return

    # Candidate targets per source vertex: same refinement color.
    by_color: Dict[int, List[int]] = {}
    for v in range(n):
        by_color.setdefault(colors2[v], []).append(v)
    candidates: List[List[int]] = []
    for v in range(n):
        candidates.append(by_color.get(colors1[v], []))

    forced = dict(forced or {})
    for src, dst in forced.items():
        if dst not in candidates[src]:
            return

    # Order: forced vertices first, then most-constrained (fewest
    # candidates, highest degree) to fail fast.
    free = [v for v in range(n) if v not in forced]
    free.sort(key=lambda v: (len(candidates[v]), -g1.degree(v)))
    order = list(forced.keys()) + free

    mapping: List[Optional[int]] = [None] * n
    used = [False] * n

    def consistent(v: int, w: int) -> bool:
        """Does mapping v -> w respect adjacency with placed vertices?"""
        for u in range(n):
            mu = mapping[u]
            if mu is None:
                continue
            if g1.has_edge(v, u) != g2.has_edge(w, mu):
                return False
        return True

    def backtrack(depth: int) -> Iterator[Tuple[int, ...]]:
        if depth == n:
            yield tuple(mapping)  # type: ignore[arg-type]
            return
        v = order[depth]
        targets = ([forced[v]] if v in forced else candidates[v])
        for w in targets:
            if used[w] or not consistent(v, w):
                continue
            mapping[v] = w
            used[w] = True
            yield from backtrack(depth + 1)
            mapping[v] = None
            used[w] = False

    yield from backtrack(0)


def all_automorphisms(graph: Graph) -> Iterator[Tuple[int, ...]]:
    """Yield every automorphism of ``graph`` (including the identity).

    Intended for small graphs; the number of automorphisms can be n!.
    """
    yield from _search_isomorphisms(graph, graph)


def automorphism_group_order(graph: Graph) -> int:
    """|Aut(graph)| by exhaustive enumeration (small graphs)."""
    return sum(1 for _ in all_automorphisms(graph))


def find_nontrivial_automorphism(graph: Graph) -> Optional[Tuple[int, ...]]:
    """A non-trivial automorphism of ``graph``, or None if it is asymmetric.

    This is the honest prover's first move in Protocols 1 and 2.  The
    search forces some vertex off itself, trying color-mates in
    refinement order, so it terminates quickly on asymmetric graphs
    (refinement usually discretizes the coloring).
    """
    n = graph.n
    colors = refine_colors(graph)
    by_color: Dict[int, List[int]] = {}
    for v in range(n):
        by_color.setdefault(colors[v], []).append(v)
    # A nontrivial automorphism must move some vertex to a distinct
    # color-mate; try each (v, w) pair with v < w as a forced move.
    for group in by_color.values():
        for v, w in itertools.combinations(group, 2):
            for mapping in _search_isomorphisms(graph, graph,
                                                forced={v: w}):
                return mapping
    return None


def is_symmetric(graph: Graph) -> bool:
    """Whether the graph has a non-trivial automorphism (``G ∈ Sym``)."""
    return find_nontrivial_automorphism(graph) is not None


def is_asymmetric(graph: Graph) -> bool:
    """Whether the graph is rigid (only the identity automorphism)."""
    return find_nontrivial_automorphism(graph) is None


def is_automorphism(graph: Graph, mapping: Sequence[int]) -> bool:
    """Check that ``mapping`` is an automorphism of ``graph``.

    Verifies that ``mapping`` is a permutation and that
    ``{u, v} ∈ E  iff  {mapping[u], mapping[v]} ∈ E``.
    """
    n = graph.n
    if len(mapping) != n or sorted(mapping) != list(range(n)):
        return False
    # A permutation maps edges injectively, so "every edge maps to an
    # edge" already implies the image edge set IS the edge set.
    return all(graph.has_edge(mapping[u], mapping[v])
               for u, v in graph.edges)


def orbits(graph: Graph) -> List[Tuple[int, ...]]:
    """Vertex orbits under the full automorphism group (small graphs)."""
    n = graph.n
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for mapping in all_automorphisms(graph):
        for v in range(n):
            union(v, mapping[v])
    groups: Dict[int, List[int]] = {}
    for v in range(n):
        groups.setdefault(find(v), []).append(v)
    return [tuple(sorted(g)) for g in
            sorted(groups.values(), key=lambda g: g[0])]
