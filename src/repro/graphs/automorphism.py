"""Automorphism search: the honest prover's toolbox for Sym.

The paper's honest prover for Protocols 1 and 2 must *find* a
non-trivial automorphism of the network graph (the prover is
computationally unbounded; we pay with a backtracking search that is
fast at the sizes our simulator runs).

Implementation: classic color-refinement (1-WL) to split vertices into
equivalence classes, then backtracking over color-respecting partial
maps with incremental adjacency consistency checks.  This is exact —
refinement only *prunes*, the backtracking decides.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .graph import Graph


def refine_colors(graph: Graph,
                  initial: Optional[Sequence[int]] = None,
                  max_rounds: Optional[int] = None) -> Tuple[int, ...]:
    """Stable coloring via 1-dimensional Weisfeiler–Leman refinement.

    Starting from ``initial`` (default: all vertices one color), each
    round recolors every vertex by (its color, multiset of neighbor
    colors) until a fixed point.  Colors are renumbered each round by
    *sorted signature*, which makes the numbering labeling-invariant:
    isomorphic graphs get identical color histograms with matching
    color identities.  (First-appearance numbering would not — it
    depends on the vertex labeling — and the isomorphism search below
    matches candidate targets by color id across two graphs.)

    Two vertices that can be exchanged by an automorphism always end up
    with the same color, so refinement classes are sound pruning sets.
    """
    n = graph.n
    colors: List[int] = list(initial) if initial is not None else [0] * n
    if len(colors) != n:
        raise ValueError("initial coloring has wrong length")
    rounds = 0
    while True:
        signatures = []
        for v in range(n):
            neighbor_colors = sorted(colors[u] for u in graph.neighbors(v))
            signatures.append((colors[v], tuple(neighbor_colors)))
        palette = {sig: rank
                   for rank, sig in enumerate(sorted(set(signatures)))}
        new_colors = [palette[sig] for sig in signatures]
        rounds += 1
        if new_colors == colors or (max_rounds is not None
                                    and rounds >= max_rounds):
            return tuple(new_colors)
        colors = new_colors


#: Above this size the search switches from the historical
#: most-constrained-first ordering (whose candidate lists are O(n) per
#: vertex on vertex-transitive graphs) to a BFS-guided ordering whose
#: candidate sets are neighbor lists of already-placed images.  The
#: small-n ordering is kept bit-for-bit so enumeration order — and
#: therefore every committed witness and golden transcript — is
#: unchanged where it was ever observed.
_DENSE_LIMIT = 256


def _guided_order(g1: Graph, forced: Dict[int, int]
                  ) -> Tuple[List[int], List[Optional[int]]]:
    """BFS placement order from the forced seeds, with anchors.

    Returns ``(order, anchor)`` where ``anchor[v]`` is a neighbor of
    ``v`` placed earlier in ``order`` (None for seeds and new-component
    starts).  Anchors shrink each vertex's candidate set from a whole
    color class to the image's neighbor list.
    """
    n = g1.n
    order = list(forced.keys())
    seen = 0
    for v in order:
        seen |= 1 << v
    anchor: List[Optional[int]] = [None] * n
    queue = list(order)
    cursor = 0
    next_start = 0
    while len(order) < n:
        if cursor >= len(queue):
            while seen >> next_start & 1:
                next_start += 1
            seen |= 1 << next_start
            order.append(next_start)
            queue.append(next_start)
            continue
        v = queue[cursor]
        cursor += 1
        mask = g1.row_mask(v) & ~seen
        while mask:
            low = mask & -mask
            u = low.bit_length() - 1
            mask ^= low
            seen |= low
            anchor[u] = v
            order.append(u)
            queue.append(u)
    return order, anchor


def _search_isomorphisms(g1: Graph, g2: Graph,
                         forced: Optional[Dict[int, int]] = None
                         ) -> Iterator[Tuple[int, ...]]:
    """Yield every isomorphism ``g1 -> g2`` extending ``forced``.

    ``forced`` is a partial map {vertex of g1: vertex of g2}.  Yields
    mappings as tuples (``mapping[v]`` = image of v).  Exact algorithm;
    refinement colors prune candidate targets.

    The engine is an explicit-stack DFS (no recursion limit at large
    n) whose adjacency-consistency check is O(deg) per placement: the
    forward scan checks placed neighbors of ``v``, the reverse scan —
    via the maintained inverse map — checks placed preimages of the
    neighbors of ``w``, and together they cover exactly the mismatches
    a full O(n) scan over placed vertices would find.
    """
    if g1.n != g2.n or g1.num_edges != g2.num_edges:
        return
    n = g1.n
    colors1 = refine_colors(g1)
    colors2 = refine_colors(g2)
    if sorted(colors1) != sorted(colors2):
        return

    # Candidate targets per source vertex: same refinement color.
    by_color: Dict[int, List[int]] = {}
    for v in range(n):
        by_color.setdefault(colors2[v], []).append(v)

    forced = dict(forced or {})
    for src, dst in forced.items():
        if dst not in by_color.get(colors1[src], ()):
            return

    mapping: List[Optional[int]] = [None] * n
    rmapping: List[Optional[int]] = [None] * n

    if n <= _DENSE_LIMIT:
        # Historical order: forced vertices first, then
        # most-constrained (fewest candidates, highest degree).
        candidates = [by_color.get(colors1[v], []) for v in range(n)]
        free = [v for v in range(n) if v not in forced]
        free.sort(key=lambda v: (len(candidates[v]), -g1.degree(v)))
        order = list(forced.keys()) + free

        def targets_for(v: int) -> Sequence[int]:
            return (forced[v],) if v in forced else candidates[v]
    else:
        order, anchor = _guided_order(g1, forced)

        def targets_for(v: int) -> Sequence[int]:
            if v in forced:
                return (forced[v],)
            a = anchor[v]
            if a is None:
                return by_color.get(colors1[v], ())
            base = mapping[a]
            cv = colors1[v]
            return tuple(w for w in g2.neighbors(base)
                         if colors2[w] == cv)

    def consistent(v: int, w: int) -> bool:
        """Does mapping v -> w respect adjacency with placed vertices?"""
        for u in g1.neighbors(v):
            mu = mapping[u]
            if mu is not None and not g2.has_edge(w, mu):
                return False
        for x in g2.neighbors(w):
            rx = rmapping[x]
            if rx is not None and not g1.has_edge(v, rx):
                return False
        return True

    if n == 0:
        yield ()
        return

    iters = [iter(targets_for(order[0]))]
    while iters:
        depth = len(iters) - 1
        v = order[depth]
        descended = False
        for w in iters[-1]:
            if rmapping[w] is not None or not consistent(v, w):
                continue
            mapping[v] = w
            rmapping[w] = v
            if depth + 1 == n:
                yield tuple(mapping)  # type: ignore[arg-type]
                mapping[v] = None
                rmapping[w] = None
                continue
            iters.append(iter(targets_for(order[depth + 1])))
            descended = True
            break
        if not descended:
            iters.pop()
            if iters:
                pv = order[len(iters) - 1]
                pw = mapping[pv]
                mapping[pv] = None
                rmapping[pw] = None  # type: ignore[index]


def all_automorphisms(graph: Graph) -> Iterator[Tuple[int, ...]]:
    """Yield every automorphism of ``graph`` (including the identity).

    Intended for small graphs; the number of automorphisms can be n!.
    """
    yield from _search_isomorphisms(graph, graph)


def automorphism_group_order(graph: Graph) -> int:
    """|Aut(graph)| by exhaustive enumeration (small graphs)."""
    return sum(1 for _ in all_automorphisms(graph))


def find_nontrivial_automorphism(graph: Graph) -> Optional[Tuple[int, ...]]:
    """A non-trivial automorphism of ``graph``, or None if it is asymmetric.

    This is the honest prover's first move in Protocols 1 and 2.  The
    search forces some vertex off itself, trying color-mates in
    refinement order, so it terminates quickly on asymmetric graphs
    (refinement usually discretizes the coloring).
    """
    n = graph.n
    colors = refine_colors(graph)
    by_color: Dict[int, List[int]] = {}
    for v in range(n):
        by_color.setdefault(colors[v], []).append(v)
    # A nontrivial automorphism must move some vertex to a distinct
    # color-mate; try each (v, w) pair with v < w as a forced move.
    for group in by_color.values():
        for v, w in itertools.combinations(group, 2):
            for mapping in _search_isomorphisms(graph, graph,
                                                forced={v: w}):
                return mapping
    return None


def is_symmetric(graph: Graph) -> bool:
    """Whether the graph has a non-trivial automorphism (``G ∈ Sym``)."""
    return find_nontrivial_automorphism(graph) is not None


def is_asymmetric(graph: Graph) -> bool:
    """Whether the graph is rigid (only the identity automorphism)."""
    return find_nontrivial_automorphism(graph) is None


def is_automorphism(graph: Graph, mapping: Sequence[int]) -> bool:
    """Check that ``mapping`` is an automorphism of ``graph``.

    Verifies that ``mapping`` is a permutation and that
    ``{u, v} ∈ E  iff  {mapping[u], mapping[v]} ∈ E``.
    """
    n = graph.n
    if len(mapping) != n or sorted(mapping) != list(range(n)):
        return False
    # A permutation maps edges injectively, so "every edge maps to an
    # edge" already implies the image edge set IS the edge set.
    return all(graph.has_edge(mapping[u], mapping[v])
               for u, v in graph.edges)


def orbits(graph: Graph) -> List[Tuple[int, ...]]:
    """Vertex orbits under the full automorphism group (small graphs)."""
    n = graph.n
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for mapping in all_automorphisms(graph):
        for v in range(n):
            union(v, mapping[v])
    groups: Dict[int, List[int]] = {}
    for v in range(n):
        groups.setdefault(find(v), []).append(v)
    return [tuple(sorted(g)) for g in
            sorted(groups.values(), key=lambda g: g[0])]
