"""Immutable undirected graphs on vertex set ``{0, ..., n-1}``.

This is the foundational graph type for the whole library.  It is
deliberately small and dependency-free: protocols, provers and the
lower-bound machinery all need a *hashable*, *canonical-ready* graph
value they can put in sets and dictionaries, which rules out mutable
adjacency structures.

Design notes
------------
* Vertices are always ``0..n-1``.  Named or sparse vertex sets are
  handled one level up (``repro.network.topology`` maps simulator node
  identifiers onto these indices).
* Edges are stored both as a frozenset of sorted pairs (for equality,
  hashing and iteration) and as per-vertex adjacency bitmasks (for the
  O(1) adjacency queries the verifiers' decision functions make in hot
  loops).
* Following Section 3.1.1 of the paper, protocols work with *closed*
  neighborhoods ("with self-loops for all vertices"): ``N(v)`` includes
  ``v`` itself.  :meth:`Graph.closed_neighborhood` and
  :meth:`Graph.closed_row` expose that convention; the plain
  :meth:`Graph.neighbors` never includes ``v``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


def _normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


def bits_of_mask(mask: int) -> Tuple[int, ...]:
    """Set bit positions of ``mask``, ascending.

    The sparse decode of an adjacency bitmask: O(popcount) instead of
    an O(n) scan, which is what keeps neighborhood iteration usable at
    n in the tens of thousands.
    """
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


class Graph:
    """An immutable, hashable, simple undirected graph on ``{0..n-1}``.

    Parameters
    ----------
    n:
        Number of vertices.  Must be non-negative.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and
        ``u != v``.  Duplicates (in either orientation) are collapsed.

    Raises
    ------
    ValueError
        If an endpoint is out of range or an edge is a self-loop.
    """

    __slots__ = ("_n", "_edges", "_adj_masks", "_hash")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        normalized = set()
        masks = [0] * n
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop ({u}, {v}) not allowed; closed "
                                 "neighborhoods add implicit self-loops")
            normalized.add(_normalize_edge(u, v))
            masks[u] |= 1 << v
            masks[v] |= 1 << u
        self._n = n
        self._edges: FrozenSet[Edge] = frozenset(normalized)
        self._adj_masks: Tuple[int, ...] = tuple(masks)
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return len(self._edges)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The edge set, each edge as a sorted pair."""
        return self._edges

    @property
    def vertices(self) -> range:
        """The vertex set as a range object."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge.  ``has_edge(v, v)`` is False."""
        self._check_vertex(u)
        self._check_vertex(v)
        return bool(self._adj_masks[u] >> v & 1)

    def degree(self, v: int) -> int:
        """Number of neighbors of ``v`` (self excluded)."""
        self._check_vertex(v)
        return bin(self._adj_masks[v]).count("1")

    def degree_sequence(self) -> Tuple[int, ...]:
        """Sorted (ascending) degree sequence — an isomorphism invariant."""
        return tuple(sorted(self.degree(v) for v in self.vertices))

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Open neighborhood of ``v`` (sorted, excludes ``v``)."""
        self._check_vertex(v)
        return bits_of_mask(self._adj_masks[v])

    def closed_neighborhood(self, v: int) -> Tuple[int, ...]:
        """Closed neighborhood ``N(v)`` in the paper's convention.

        Includes ``v`` itself (Section 3.1.1: "with self-loops for all
        vertices").
        """
        self._check_vertex(v)
        return bits_of_mask(self._adj_masks[v] | (1 << v))

    def row_mask(self, v: int) -> int:
        """Open neighborhood of ``v`` as an integer bitmask."""
        self._check_vertex(v)
        return self._adj_masks[v]

    def closed_row(self, v: int) -> int:
        """Closed-neighborhood row of ``v`` as a bitmask (bit u = adjacency).

        This is the row ``N(v) ∈ {0,1}^V`` of the self-looped adjacency
        matrix that Protocols 1 and 2 hash.
        """
        self._check_vertex(v)
        return self._adj_masks[v] | (1 << v)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as connected)."""
        if self._n <= 1:
            return True
        seen = 1  # bitmask of visited vertices, start from vertex 0
        frontier = [0]
        while frontier:
            v = frontier.pop()
            mask = self._adj_masks[v] & ~seen
            while mask:
                low = mask & -mask
                u = low.bit_length() - 1
                seen |= low
                mask ^= low
                frontier.append(u)
        return seen == (1 << self._n) - 1

    def connected_components(self) -> List[Tuple[int, ...]]:
        """Connected components, each as a sorted vertex tuple."""
        unvisited = set(self.vertices)
        components = []
        while unvisited:
            start = min(unvisited)
            stack = [start]
            comp = {start}
            while stack:
                v = stack.pop()
                for u in self.neighbors(v):
                    if u not in comp:
                        comp.add(u)
                        stack.append(u)
            unvisited -= comp
            components.append(tuple(sorted(comp)))
        return components

    def bfs_tree(self, root: int) -> Dict[int, int]:
        """BFS parent map from ``root``: ``{child: parent}``, root absent.

        Only vertices reachable from ``root`` appear as keys.
        """
        self._check_vertex(root)
        parent: Dict[int, int] = {}
        seen = {root}
        queue = [root]
        while queue:
            next_queue = []
            for v in queue:
                for u in self.neighbors(v):
                    if u not in seen:
                        seen.add(u)
                        parent[u] = v
                        next_queue.append(u)
            queue = next_queue
        return parent

    def distances_from(self, root: int) -> Dict[int, int]:
        """BFS distances from ``root`` for reachable vertices."""
        self._check_vertex(root)
        dist = {root: 0}
        queue = [root]
        while queue:
            next_queue = []
            for v in queue:
                for u in self.neighbors(v):
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        next_queue.append(u)
            queue = next_queue
        return dist

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def relabel(self, mapping: Sequence[int]) -> "Graph":
        """Apply a vertex permutation: vertex ``v`` becomes ``mapping[v]``.

        ``mapping`` must be a permutation of ``0..n-1``.  The result has
        an edge ``{mapping[u], mapping[v]}`` for every edge ``{u, v}``.
        """
        if sorted(mapping) != list(range(self._n)):
            raise ValueError("mapping is not a permutation of the vertex set")
        return Graph(self._n,
                     ((mapping[u], mapping[v]) for u, v in self._edges))

    def induced_subgraph(self, vertices: Sequence[int]) -> "Graph":
        """Induced subgraph on ``vertices``, relabeled to ``0..k-1``.

        ``vertices[i]`` becomes vertex ``i`` of the result; order matters.
        """
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise ValueError("duplicate vertices in induced_subgraph")
        for v in vertices:
            self._check_vertex(v)
        sub_edges = [(index[u], index[v]) for u, v in self._edges
                     if u in index and v in index]
        return Graph(len(vertices), sub_edges)

    def complement(self) -> "Graph":
        """The complement graph (no self-loops)."""
        edges = [(u, v) for u, v in itertools.combinations(range(self._n), 2)
                 if not self.has_edge(u, v)]
        return Graph(self._n, edges)

    def with_edges(self, extra: Iterable[Edge]) -> "Graph":
        """A new graph with ``extra`` edges added."""
        return Graph(self._n, itertools.chain(self._edges, extra))

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Disjoint union; ``other``'s vertices are shifted by ``self.n``."""
        shifted = ((u + self._n, v + self._n) for u, v in other.edges)
        return Graph(self._n + other.n,
                     itertools.chain(self._edges, shifted))

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def adjacency_bits(self) -> int:
        """The self-looped adjacency matrix packed as an n²-bit integer.

        Bit ``u*n + v`` is the ``(u, v)`` entry of the matrix whose rows
        are the closed neighborhoods.  This is the canonical encoding of
        a graph as an element of ``{0,1}^{n²}``, used as hash input by
        the GNI protocol.
        """
        n = self._n
        bits = 0
        for u in range(n):
            bits |= self.closed_row(u) << (u * n)
        return bits

    def open_adjacency_bits(self) -> int:
        """Adjacency matrix without self-loops, packed as an n²-bit int."""
        n = self._n
        bits = 0
        for u in range(n):
            bits |= self._adj_masks[u] << (u * n)
        return bits

    @classmethod
    def from_adjacency_bits(cls, n: int, bits: int,
                            closed: bool = True) -> "Graph":
        """Inverse of :meth:`adjacency_bits` / :meth:`open_adjacency_bits`.

        Off-diagonal asymmetry is rejected (the encoding must describe an
        undirected graph); with ``closed=True`` the diagonal must be all
        ones, otherwise all zeros.
        """
        edges = []
        for u in range(n):
            row = (bits >> (u * n)) & ((1 << n) - 1)
            diag = row >> u & 1
            if closed and not diag:
                raise ValueError(f"closed encoding missing self-loop at {u}")
            if not closed and diag:
                raise ValueError(f"open encoding has self-loop at {u}")
            for v in range(u + 1, n):
                if row >> v & 1:
                    edges.append((u, v))
        graph = cls(n, edges)
        if (graph.adjacency_bits() if closed
                else graph.open_adjacency_bits()) != bits:
            raise ValueError("adjacency bits do not describe an undirected graph")
        return graph

    @classmethod
    def from_edge_list(cls, edges: Iterable[Edge], n: Optional[int] = None) -> "Graph":
        """Build a graph from edges, inferring ``n`` as 1 + max endpoint."""
        edge_list = list(edges)
        if n is None:
            n = 1 + max((max(e) for e in edge_list), default=-1)
        return cls(n, edge_list)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._n, self._edges))
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, edges={sorted(self._edges)})"

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise ValueError(f"vertex {v} out of range for n={self._n}")
