"""The sweep runner: execute experiment specs, record cells, resume.

One **cell** is the atom of lab work: a (size, prover, trials, seed)
point of a spec.  The runner executes cells with the deterministic
``seed + trial_index`` streams of :func:`repro.core.runner.run_trials`
(so worker count never changes a measurement), normalizes each record
through a JSON round-trip (so fresh and replayed records compare
bit-for-bit), and appends them to the result store.  Cells already in
the store are skipped — re-running a partially recorded sweep only
pays for the missing cells.

``workers > 1`` fans the *cells* of a grid over a fork-based process
pool (every spec kind parallelizes, not just the trial sweeps).  Each
worker wraps its cell in an observability buffer
(:func:`repro.obs.session.collecting`) and ships the buffer back with
the record; the parent merges buffers in grid order — the same
protocol the core runner uses for trial batches — so ``lab run
--workers N`` traces and records are byte-identical to a serial run.
"""

from __future__ import annotations

import json
import random
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.model import Instance, Protocol, Prover
from ..core.report import execution_cost
# _fork_pool_context is the core runner's "fork, or None where
# unsupported" probe — the lab pool must degrade on the same platforms.
from ..core.runner import _fork_pool_context, run_protocol, run_trials
from ..obs.session import (Collected, active, collecting,
                           export_collected, merge_collected)
from .spec import (ExperimentSpec, GRAPHS, KIND_COLLISION, KIND_EDGECHECK,
                   KIND_LEDGER, KIND_NETSIM_EQUIV, KIND_NETSIM_FAULTS,
                   KIND_PACKING, KIND_SWEEP, PROTOCOLS, PROVERS)
from .store import ResultStore, cell_key

#: Planted-deviation node for the E10 edge-equality harness.
_EDGECHECK_NODES = 10
_EDGECHECK_DEVIANT = 4
#: Vector length of the E7 collision-law family (the Theorem 3.2 "m").
_COLLISION_M = 8


#: Fleet provenance: which shard is recording cells in this process.
#: Serial runs (and fleet supervisors) are shard 0; fleet workers call
#: :func:`set_shard` after forking.  Like wall/workers, shard and host
#: are instrumentation — never part of the deterministic field set.
_SHARD = 0


def set_shard(shard: int) -> None:
    """Mark every record produced by this process as ``shard``."""
    global _SHARD
    _SHARD = shard


def current_shard() -> int:
    return _SHARD


def _hostname() -> str:
    import socket
    return socket.gethostname()


@dataclass
class CellResult:
    """One cell's outcome: its (normalized) record, and whether it was
    replayed from the store instead of executed."""

    spec_name: str
    key: str
    record: Dict[str, Any]
    skipped: bool


def _normalize(record: Dict[str, Any]) -> Dict[str, Any]:
    """JSON round-trip so in-memory and store-loaded records carry
    identical types (tuples become lists, keys become strings)."""
    return json.loads(json.dumps(record, sort_keys=True, default=str))


def _base_record(spec: ExperimentSpec, n: int, size: int, prover: str,
                 trials: int) -> Dict[str, Any]:
    return {
        "kind": spec.kind, "spec": spec.name, "spec_hash": spec.hash,
        "n": n, "size": size, "prover": prover,
        "trials": trials, "seed": spec.seed,
        "accepted": 0, "bits": 0, "round_bits": [], "extra": {},
        "wall": 0.0, "workers": 1,
        "shard": _SHARD, "host": _hostname(),
    }


def _round_bits(protocol: Protocol, instance: Instance,
                result) -> List[int]:
    """Per-round bits at node 0 — the 'bits per phase' provenance of a
    cell, via the shared recompute all cost gates use."""
    return list(execution_cost(protocol, instance, result).round_bits)


def _sweep_cell(spec: ExperimentSpec, n: int, prover_key: str,
                trials: int, workers: int,
                engine: str = "python") -> Dict[str, Any]:
    start = time.perf_counter()
    protocol = PROTOCOLS[spec.protocol](n)
    instance = GRAPHS[spec.graph](n)
    prover: Prover = PROVERS[prover_key](protocol)
    from ..core.context import InstanceContext
    context = InstanceContext(instance, protocol)
    cost_run = run_protocol(protocol, instance, prover,
                            random.Random(spec.seed), context=context)
    estimate = run_trials(protocol, instance, prover, trials, spec.seed,
                          workers=workers, context=context, engine=engine)
    record = _base_record(spec, n, instance.n, prover_key, trials)
    record.update(
        accepted=estimate.accepted,
        bits=cost_run.max_cost_bits,
        round_bits=_round_bits(protocol, instance, cost_run),
        wall=round(time.perf_counter() - start, 6),
        workers=estimate.workers,
        # provenance, like wall/workers: the engine that actually ran
        # (estimate.engine reports the fallback when numpy is absent).
        engine=estimate.engine,
    )
    return record


def _packing_cell(spec: ExperimentSpec, n: int) -> Dict[str, Any]:
    from ..lowerbound import lower_bound_table
    start = time.perf_counter()
    row = lower_bound_table([n])[0]
    record = _base_record(spec, n, n, "analytic", 0)
    record.update(
        bits=row.min_simple_length,
        extra={"log2_family_size": round(row.log2_family_size, 6),
               "loglog_n": round(row.loglog_n, 6)},
        wall=round(time.perf_counter() - start, 6),
    )
    return record


def _collision_cell(spec: ExperimentSpec, n: int,
                    pairs: int) -> Dict[str, Any]:
    """Exact collision-seed counts (brute force over all seeds) for
    ``pairs`` random vector pairs at the prime ≥ ``n``."""
    from ..hashing import LinearHashFamily, collision_seed_count, next_prime
    start = time.perf_counter()
    p = next_prime(n)
    family = LinearHashFamily(m=_COLLISION_M, p=p)
    rng = random.Random(spec.seed + n)
    worst = 0
    for _ in range(pairs):
        a = [rng.randrange(p) for _ in range(_COLLISION_M)]
        b = [rng.randrange(p) for _ in range(_COLLISION_M)]
        if a == b:
            continue
        worst = max(worst, collision_seed_count(family, a, b))
    record = _base_record(spec, n, n, "exact", pairs)
    record.update(
        bits=worst,
        extra={"p": p, "m": _COLLISION_M},
        wall=round(time.perf_counter() - start, 6),
    )
    return record


def _edgecheck_cell(spec: ExperimentSpec, k: int,
                    trials: int) -> Dict[str, Any]:
    """E10's RPLS baseline: hashed vs deterministic edge equality at
    value width ``k``, with one planted deviation."""
    from ..graphs import cycle_graph
    from ..network import (DeterministicEquality, HashedEquality,
                           detection_probability)
    start = time.perf_counter()
    graph = cycle_graph(_EDGECHECK_NODES)
    det = DeterministicEquality(k)
    hashed = HashedEquality(k)
    values = {v: (1 << (k - 1)) | 3 for v in graph.vertices}
    values[_EDGECHECK_DEVIANT] ^= 1
    det_trials = min(10, trials)
    det_rate = detection_probability(graph, values, det, det_trials,
                                     random.Random(k))
    hash_rate = detection_probability(graph, values, hashed, trials,
                                      random.Random(k))
    # ``size`` is the scaling parameter of this experiment — the value
    # width k, not the (fixed) node count — so the fitter sees k.
    record = _base_record(spec, k, k, "hashed", trials)
    record.update(
        accepted=round(hash_rate * trials),
        bits=hashed.message_bits,
        extra={"nodes": _EDGECHECK_NODES,
               "det_bits": det.message_bits,
               "det_detections": round(det_rate * det_trials),
               "det_trials": det_trials},
        wall=round(time.perf_counter() - start, 6),
    )
    return record


def _netsim_equiv_cell(spec: ExperimentSpec, n: int, prover_key: str,
                       trials: int) -> Dict[str, Any]:
    """E13's equivalence cell: ``trials`` paired executions (abstract
    runner vs faults-off netsim) on identically-seeded rngs; the
    record counts equivalent trials and carries the substrate's
    overhead counters."""
    from ..core import execution_to_jsonable
    from ..netsim import run_netsim
    start = time.perf_counter()
    protocol = PROTOCOLS[spec.protocol](n)
    instance = GRAPHS[spec.graph](n)
    from ..core.context import InstanceContext
    context = InstanceContext(instance, protocol)
    accepted = equivalent = 0
    bits = overhead = crosscheck = 0
    for t in range(trials):
        prover = PROVERS[prover_key](protocol)
        abstract = run_protocol(protocol, instance, prover,
                                random.Random(spec.seed + t),
                                context=context)
        prover = PROVERS[prover_key](protocol)
        net = run_netsim(protocol, instance, prover,
                         random.Random(spec.seed + t),
                         net_seed=spec.seed + t, context=context,
                         trace=False)
        accepted += net.accepted
        same = (net.accepted == abstract.accepted
                and net.node_cost_bits == abstract.node_cost_bits
                and json.dumps(execution_to_jsonable(
                    protocol, instance, net), sort_keys=True)
                == json.dumps(execution_to_jsonable(
                    protocol, instance, abstract), sort_keys=True))
        equivalent += same
        if t == 0:
            bits = net.max_cost_bits
            overhead = net.overhead_bits
            crosscheck = net.crosscheck_bits
    record = _base_record(spec, n, instance.n, prover_key, trials)
    record.update(
        accepted=accepted,
        bits=bits,
        extra={"equivalent": equivalent,
               "overhead_bits": overhead,
               "crosscheck_bits": crosscheck},
        wall=round(time.perf_counter() - start, 6),
    )
    return record


def _netsim_faults_cell(spec: ExperimentSpec, n: int, prover_key: str,
                        trials: int) -> Dict[str, Any]:
    """E13's fault-matrix cell: acceptance/detection rates per fault
    configuration, with the hashed-equality analytic bound."""
    from ..netsim.harness import fault_matrix
    start = time.perf_counter()
    matrix = fault_matrix(spec.seed, trials=trials, n=n)
    baseline = matrix["rows"][0]
    record = _base_record(spec, n, n, prover_key, trials)
    record.update(
        accepted=round(baseline["accept_rate"] * trials),
        bits=sum(row["ok"] for row in matrix["rows"]),
        extra={"rows": [{k: v for k, v in row.items()}
                        for row in matrix["rows"]],
               "all_ok": matrix["all_ok"]},
        wall=round(time.perf_counter() - start, 6),
    )
    return record


def _ledger_cell(spec: ExperimentSpec, n: int) -> Dict[str, Any]:
    """E14's cell: re-run the symbolic ledger check over the committed
    store and record its verdict — passing series, checked cells, the
    fitted headline constants.  The ledger reads only the *other*
    specs' cells (its own kind is not a checked kind), so the record
    is a pure function of code + committed store."""
    from ..ledger.evaluate import default_check
    start = time.perf_counter()
    report = default_check()
    constants: Dict[str, Any] = {}
    required = set(report["expected_bounds"]["required"])
    series_ok = 0
    cells = 0
    for entry in report["specs"]:
        for series in entry["series"]:
            series_ok += bool(series["ok"])
            cells += series["cells"]
            if entry["spec"] in required and series["series"] == "total":
                constants[entry["spec"]] = (
                    series["c_fit"] if series["c_fit"] is not None
                    else "absolute")
    record = _base_record(spec, n, n, "ledger", 0)
    record.update(
        accepted=series_ok,
        bits=cells,
        extra={
            "ok": report["ok"],
            "violations": len(report["violations"]),
            "missing_declarations": report["missing_declarations"],
            "declarations": report["declarations"],
            "headline_required": len(required),
            "headline_checked": len(
                report["expected_bounds"]["checked"]),
            "constants": constants,
        },
        wall=round(time.perf_counter() - start, 6),
    )
    return record


def compute_cell(spec: ExperimentSpec, n: int, prover_key: str,
                 trials: int, workers: int = 1,
                 engine: str = "python") -> Dict[str, Any]:
    """Execute one cell and return its normalized record.

    ``engine`` selects the trial engine for sweep cells (the other
    kinds run analytic or netsim code where it does not apply).  The
    engines are byte-equivalent, so records differ only in the
    ``engine`` provenance field.
    """
    if spec.kind == KIND_SWEEP:
        record = _sweep_cell(spec, n, prover_key, trials, workers,
                             engine)
    elif spec.kind == KIND_PACKING:
        record = _packing_cell(spec, n)
    elif spec.kind == KIND_COLLISION:
        record = _collision_cell(spec, n, trials)
    elif spec.kind == KIND_EDGECHECK:
        record = _edgecheck_cell(spec, n, trials)
    elif spec.kind == KIND_NETSIM_EQUIV:
        record = _netsim_equiv_cell(spec, n, prover_key, trials)
    elif spec.kind == KIND_NETSIM_FAULTS:
        record = _netsim_faults_cell(spec, n, prover_key, trials)
    elif spec.kind == KIND_LEDGER:
        record = _ledger_cell(spec, n)
    else:  # pragma: no cover - ExperimentSpec validates kinds
        raise ValueError(f"unknown spec kind {spec.kind!r}")
    return _normalize(record)


def guard_record_bounds(spec: ExperimentSpec,
                        record: Dict[str, Any]) -> None:
    """Pre-commit bound guard: refuse to append a fresh fit-prover
    sweep cell whose per-phase bits violate the declaration's absolute
    phase bounds.

    This is the ``ledger check --live`` probe folded into the write
    path — a newly added grid size is bound-checked *before* its cell
    ever reaches the store, so a mis-declared protocol cannot commit a
    baseline the ledger would then have to reject.  Records the ledger
    does not cover (non-sweep kinds, adversary provers, undeclared
    protocols) pass through untouched; the store-wide ``ledger check``
    owns those verdicts.
    """
    from ..ledger.evaluate import check_record_bounds
    verdict = check_record_bounds(spec, record)
    if verdict is not None and not verdict["ok"]:
        bad = [f"{p['phase']}: {p['measured']} > {p['allowed']}"
               for p in verdict["phases"] if not p["ok"]]
        detail = "; ".join(bad) or verdict.get("error", "bound check failed")
        raise ValueError(
            f"{spec.name} n={record['size']} violates its declared "
            f"absolute phase bounds before commit ({detail}); fix the "
            f"declaration or the protocol before recording this cell")


def spec_cells(spec: ExperimentSpec,
               quick: bool) -> List[Tuple[int, str, int]]:
    """The (n, prover, trials) cells a grid expands to."""
    trials = spec.cell_trials(quick)
    return [(n, prover, trials)
            for n in spec.sizes(quick)
            for prover in spec.provers]


def _collected_cell(spec: ExperimentSpec, n: int, prover_key: str,
                    trials: int,
                    engine: str = "python",
                    ctx: Optional[Dict[str, Any]] = None
                    ) -> Tuple[Dict[str, Any], Collected]:
    """One cell under an observability buffer: the ``lab.cell`` span
    (and everything the engines record beneath it) lands in the buffer,
    which travels back with the record so the parent can merge it in
    grid order.  Serial and pooled execution share this path — ``ctx``
    (the ``lab.run_spec`` span's trace context) is threaded through
    both, landing only in span ``meta`` — so their deterministic
    traces are byte-identical by construction."""
    with collecting(ctx) as buf:
        with (nullcontext() if buf is None else
              buf.span("lab.cell", spec=spec.name, n=n,
                       prover=prover_key, trials=trials)):
            record = compute_cell(spec, n, prover_key, trials,
                                  engine=engine)
        collected = export_collected(buf)
    return record, collected


#: Fork-inherited (spec, engine, trace ctx) for pool workers — set by
#: :func:`_run_cells` immediately before forking (specs can carry
#: non-picklable graph factories; the fork pool sidesteps pickling
#: entirely, exactly as the core runner's trial pool does).
_CELL_STATE: Optional[Tuple[ExperimentSpec, str,
                            Optional[Dict[str, Any]]]] = None


def _cell_worker(task: Tuple[int, str, int]
                 ) -> Tuple[Dict[str, Any], Collected]:
    assert _CELL_STATE is not None
    spec, engine, ctx = _CELL_STATE
    n, prover_key, trials = task
    return _collected_cell(spec, n, prover_key, trials, engine, ctx)


def _run_cells(spec: ExperimentSpec, tasks: List[Tuple[int, str, int]],
               workers: int,
               engine: str = "python",
               ctx: Optional[Dict[str, Any]] = None
               ) -> List[Tuple[Dict[str, Any], Collected]]:
    """Execute ``tasks`` (in order), fanning them over a fork pool when
    ``workers > 1``.  ``chunksize=1`` keeps the slowest cells from
    serializing behind each other; ``pool.map`` returns results in task
    order regardless of completion order."""
    if not tasks:
        return []
    workers = min(workers, len(tasks))
    pool_ctx = _fork_pool_context() if workers > 1 else None
    if pool_ctx is None:
        return [_collected_cell(spec, n, prover_key, trials, engine, ctx)
                for n, prover_key, trials in tasks]
    global _CELL_STATE
    _CELL_STATE = (spec, engine, ctx)
    try:
        with pool_ctx.Pool(processes=workers) as pool:
            return pool.map(_cell_worker, tasks, chunksize=1)
    finally:
        _CELL_STATE = None


def run_spec(spec: ExperimentSpec, store: Optional[ResultStore] = None, *,
             quick: bool = False, workers: int = 1,
             resume: bool = True,
             engine: str = "python") -> List[CellResult]:
    """Execute one spec's grid, recording cells into ``store``.

    With a store and ``resume`` (the default), cells whose key is
    already recorded are returned as ``skipped`` replays instead of
    re-executing.  With ``store=None`` every cell is computed fresh
    and nothing is written — the regression gate's comparison mode.

    ``workers > 1`` computes the grid's missing cells on a fork-based
    process pool, one cell per task.  Records, store contents, result
    order and observability output are all independent of the worker
    count (see the module docstring).
    """
    stored = store.load_cells(spec) if (store and resume) else {}
    sess = active()
    outer = nullcontext() if sess is None else sess.span(
        "lab.run_spec", spec=spec.name, kind=spec.kind, seed=spec.seed,
        quick=quick)
    results: List[CellResult] = []
    with outer as span:
        cells = spec_cells(spec, quick)
        keys = [cell_key(n, prover_key, trials, spec.seed)
                for n, prover_key, trials in cells]
        queued = set()
        pending = [(key, cell) for key, cell in zip(keys, cells)
                   if key not in stored
                   and not (key in queued or queued.add(key))]
        ctx = None if sess is None else sess.trace_context()
        computed = _run_cells(spec, [cell for _, cell in pending],
                              workers, engine, ctx)
        fresh: Dict[str, Dict[str, Any]] = {}
        for (key, _), (record, collected) in zip(pending, computed):
            merge_collected(sess, collected)
            if key not in fresh:
                fresh[key] = record
                if store is not None:
                    guard_record_bounds(spec, record)
                    store.append_cell(spec, record)
        for key in keys:
            if key in stored:
                results.append(CellResult(spec.name, key, stored[key],
                                          True))
            else:
                results.append(CellResult(spec.name, key, fresh[key],
                                          False))
        ran = sum(not r.skipped for r in results)
        if span is not None:
            span.set(cells=len(results), ran=ran,
                     skipped=len(results) - ran)
        if sess is not None and sess.metrics_enabled:
            metrics = sess.metrics
            metrics.counter("lab/cells/ran").inc(ran)
            metrics.counter("lab/cells/skipped").inc(len(results) - ran)
    return results


def run_specs(specs, store: Optional[ResultStore] = None, *,
              quick: bool = False, full: bool = True,
              workers: int = 1, resume: bool = True,
              engine: str = "python") -> Dict[str, Any]:
    """Run many specs; by default both the quick grid (the CI
    comparison cells) and the full grid (the fitter's curve) so one
    ``lab run`` produces a complete baseline.  ``resume=False``
    re-executes and re-appends every cell (last record wins) — the
    ``lab run --refresh`` path for re-recording cells whose inputs
    changed out from under them (e.g. the E14 ledger cell after the
    committed store grows).  Returns a summary."""
    summary: Dict[str, Any] = {"specs": [], "ran": 0, "skipped": 0,
                               "wall": 0.0}
    for spec in specs:
        start = time.perf_counter()
        results: List[CellResult] = []
        results.extend(run_spec(spec, store, quick=True, workers=workers,
                                resume=resume, engine=engine))
        if full and not quick:
            results.extend(run_spec(spec, store, quick=False,
                                    workers=workers, resume=resume,
                                    engine=engine))
        seen = set()
        deduped = [r for r in results
                   if not (r.key in seen or seen.add(r.key))]
        ran = sum(not r.skipped for r in deduped)
        skipped = sum(r.skipped for r in deduped)
        summary["specs"].append({
            "spec": spec.name, "hash": spec.hash,
            "cells": len(deduped), "ran": ran, "skipped": skipped,
            "wall": round(time.perf_counter() - start, 3),
        })
        summary["ran"] += ran
        summary["skipped"] += skipped
        summary["wall"] += time.perf_counter() - start
    summary["wall"] = round(summary["wall"], 3)
    sess = active()
    if sess is not None and sess.metrics_enabled:
        sess.metrics.timer("lab/seconds/specs").inc(summary["wall"])
    return summary


def fit_points(spec: ExperimentSpec,
               cells: Dict[str, Dict[str, Any]]
               ) -> List[Tuple[int, int]]:
    """The (size, bits) curve of a spec's fit series: full-grid cells
    of ``fit_prover`` at the full trial count, in size order."""
    points = []
    for n in spec.grid:
        key = cell_key(n, spec.fit_prover, spec.trials, spec.seed)
        record = cells.get(key)
        if record is not None:
            points.append((record["size"], record["bits"]))
    return points
