"""Scaling-law fitting: turn measured cost curves into verdicts.

The paper's theorems are *asymptotic* claims — O(log n) per node for
Protocol 1, O(n log n) for Protocol 2, the Ω(n²) LCP baseline.  The
experiment tables used to verify those shapes by eye ("the normalized
column is flat").  This module does it mechanically: least-squares fit
of a measured cost curve against a panel of candidate one-parameter
models ``c·f(n)``, ranked by residual, with a verdict that only passes
when the expected model wins *and* wins clearly (the runner-up's
residual exceeds the winner's by a configurable ratio).

The fit is through the origin on purpose: the claims are about growth
rates, and a free intercept would let every model absorb the small-n
constants that the theorems ignore.  The candidate panel is small and
fixed per experiment (log n, n, n log n, n² by default; log log n is
opt-in for the Theorem-1.4 packing curve) — discrimination between
*these* shapes is the reproduction target, not general model selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

#: Candidate one-parameter models ``y ≈ c · f(n)``, keyed by the name
#: verdicts report.
MODELS: Dict[str, object] = {
    "log n": lambda n: math.log2(n),
    "log log n": lambda n: math.log2(math.log2(n)),
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log2(n),
    "n^2": lambda n: float(n) * float(n),
}

#: The default candidate panel (the four shapes the theorems compare).
DEFAULT_MODELS: Tuple[str, ...] = ("log n", "n", "n log n", "n^2")


@dataclass(frozen=True)
class ModelFit:
    """One candidate's least-squares fit ``y ≈ coefficient · f(n)``."""

    model: str
    coefficient: float
    rms: float


@dataclass(frozen=True)
class FitVerdict:
    """Ranked fits plus the pass/fail decision for an expected shape."""

    points: Tuple[Tuple[float, float], ...]
    fits: Tuple[ModelFit, ...]  # sorted best (lowest rms) first
    expected: Optional[str]
    min_ratio: float

    @property
    def best(self) -> ModelFit:
        return self.fits[0]

    @property
    def runner_up(self) -> ModelFit:
        return self.fits[1]

    @property
    def ratio(self) -> float:
        """Runner-up rms over best rms (∞ for an exact best fit)."""
        if self.best.rms == 0.0:
            return math.inf
        return self.runner_up.rms / self.best.rms

    @property
    def passes(self) -> bool:
        """True when no shape was expected, or the expected shape won
        with at least ``min_ratio`` separation from the runner-up."""
        if self.expected is None:
            return True
        return (self.best.model == self.expected
                and self.ratio >= self.min_ratio)

    def summary(self) -> str:
        line = (f"best={self.best.model} (c={self.best.coefficient:.4f}, "
                f"rms={self.best.rms:.3f}), runner-up={self.runner_up.model} "
                f"(rms={self.runner_up.rms:.3f}), ratio={self.ratio:.2f}")
        if self.expected is not None:
            line += (f", expected={self.expected} "
                     f"=> {'PASS' if self.passes else 'FAIL'}")
        return line


def fit_model(points: Sequence[Tuple[float, float]], model: str) -> ModelFit:
    """Least-squares-through-origin fit of one candidate model."""
    f = MODELS[model]
    num = sum(y * f(n) for n, y in points)
    den = sum(f(n) ** 2 for n, y in points)
    if den == 0.0:
        raise ValueError(f"model {model!r} is degenerate on these points")
    c = num / den
    rss = sum((y - c * f(n)) ** 2 for n, y in points)
    return ModelFit(model=model, coefficient=c,
                    rms=math.sqrt(rss / len(points)))


def fit_scaling(points: Sequence[Tuple[float, float]], *,
                models: Sequence[str] = DEFAULT_MODELS,
                expected: Optional[str] = None,
                min_ratio: float = 1.5) -> FitVerdict:
    """Fit a cost curve against candidate models and rank them.

    ``points`` are ``(n, cost)`` pairs; at least three distinct sizes
    are required (two points cannot separate one-parameter growth
    rates).  ``expected`` names the model the theorem claims; when
    given, the verdict only passes if that model has the lowest
    residual and the runner-up's rms is ≥ ``min_ratio`` times larger.
    """
    pts = tuple((float(n), float(y)) for n, y in points)
    if len({n for n, _ in pts}) < 3:
        raise ValueError("need at least 3 distinct sizes to fit a "
                         f"scaling law (got {len(pts)} points)")
    if any(n <= 1 for n, _ in pts):
        raise ValueError("sizes must exceed 1 (log-based models)")
    if len(models) < 2:
        raise ValueError("need at least 2 candidate models to rank")
    if expected is not None and expected not in models:
        raise ValueError(f"expected model {expected!r} not among "
                         f"candidates {tuple(models)}")
    fits = sorted((fit_model(pts, name) for name in models),
                  key=lambda fit: (fit.rms, fit.model))
    return FitVerdict(points=pts, fits=tuple(fits), expected=expected,
                      min_ratio=min_ratio)
