"""Append-only, content-addressed JSONL result store.

Every number a lab experiment produces lands here as one JSON record
per line under ``benchmarks/lab_store/``:

* **cell records** — one file per spec, named
  ``<spec-name>-<spec-hash>.jsonl``; each line is one executed cell
  (size × prover × trials × seed) with its deterministic measurements
  (bits/node, per-round bits, accepted counts) plus wall-clock
  instrumentation.  Files are append-only; on replays the *last*
  record for a cell key wins.  Because the file name carries the
  spec's identity hash, editing a spec's identity retires its old
  records automatically.
* **table records** — ``bench_tables.jsonl``, the machine-readable
  mirror of every table the pytest-benchmark suite prints (the same
  payload that historically went only to ``BENCH_runner.json``).

The store is the single writer for both channels, so ``lab run`` and
``pytest benchmarks/`` produce one consistent record format in one
place.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .spec import ExperimentSpec

#: Fields of a cell record that must be bit-identical across replays
#: (the regression gate's hard-fail set).  Wall-clock and worker count
#: are instrumentation and excluded on purpose.
DETERMINISTIC_FIELDS = ("spec", "spec_hash", "n", "size", "prover",
                        "trials", "seed", "accepted", "bits",
                        "round_bits", "extra")

TABLES_FILE = "bench_tables.jsonl"


def default_store_root() -> Path:
    """``benchmarks/lab_store`` next to the source tree when running
    from a checkout, else under the current working directory."""
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "lab_store"
    return Path.cwd() / "benchmarks" / "lab_store"


def cell_key(n: int, prover: str, trials: int, seed: int) -> str:
    """The cell's identity inside a spec's store file."""
    return f"n={n}/prover={prover}/trials={trials}/seed={seed}"


def record_key(record: Dict[str, Any]) -> str:
    return cell_key(record["n"], record["prover"], record["trials"],
                    record["seed"])


class ResultStore:
    """Reader/writer for the lab's JSONL record files."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    # -- cell records ---------------------------------------------------

    def spec_path(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.name}-{spec.hash}.jsonl"

    def load_cells(self, spec: ExperimentSpec) -> Dict[str, Dict[str, Any]]:
        """All recorded cells of a spec, keyed by cell key (last record
        for a key wins — the append-only replay rule)."""
        path = self.spec_path(spec)
        cells: Dict[str, Dict[str, Any]] = {}
        if not path.exists():
            return cells
        with path.open("r", encoding="ascii") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                cells[record_key(record)] = record
        return cells

    def has_cell(self, spec: ExperimentSpec, key: str) -> bool:
        return key in self.load_cells(spec)

    def append_cell(self, spec: ExperimentSpec,
                    record: Dict[str, Any]) -> None:
        if record.get("spec") != spec.name \
                or record.get("spec_hash") != spec.hash:
            raise ValueError("record does not belong to this spec")
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with self.spec_path(spec).open("a", encoding="ascii") as handle:
            handle.write(line + "\n")

    # -- table records --------------------------------------------------

    @property
    def tables_path(self) -> Path:
        return self.root / TABLES_FILE

    def write_tables(self, source: str,
                     tables: Sequence[Dict[str, Any]]) -> None:
        """Replace the benchmark-table channel with this session's
        tables (tables are session artifacts, not regression cells)."""
        self.root.mkdir(parents=True, exist_ok=True)
        with self.tables_path.open("w", encoding="ascii") as handle:
            for table in tables:
                record = {"kind": "table", "source": source, **table}
                handle.write(json.dumps(record, sort_keys=True,
                                        default=str) + "\n")

    def load_tables(self) -> List[Dict[str, Any]]:
        if not self.tables_path.exists():
            return []
        with self.tables_path.open("r", encoding="ascii") as handle:
            return [json.loads(line) for line in handle if line.strip()]


class TableRecorder:
    """Collects result tables during a benchmark session and flushes
    them to the store (plus the legacy ``BENCH_runner.json`` mirror).

    This is the engine behind ``benchmarks/conftest.py``'s
    ``report_table`` — lifted into the library so pytest-benchmark
    sessions and ``lab run`` share one recorder and one record format.
    """

    def __init__(self, json_path: Optional[Path] = None,
                 store: Optional[ResultStore] = None,
                 source: str = "benchmarks/conftest.py") -> None:
        self.json_path = Path(json_path) if json_path else None
        self.store = store if store is not None else ResultStore()
        self.source = source
        self.tables: List[Dict[str, Any]] = []

    def report(self, benchmark: Any, title: str,
               header: Iterable[Any], rows: Iterable[Iterable[Any]]) -> str:
        """Record one table, attach it to the benchmark (when given),
        and return the printable rendering."""
        header = list(header)
        rows = [list(row) for row in rows]
        self.tables.append({"title": title, "header": header,
                            "rows": rows})
        if benchmark is not None:
            benchmark.extra_info["table"] = {
                "title": title, "header": header, "rows": rows}
        width = max(len(str(c)) for row in rows + [header] for c in row) + 2
        lines = [f"\n=== {title} ===",
                 "".join(str(c).ljust(width) for c in header)]
        lines.extend("".join(str(c).ljust(width) for c in row)
                     for row in rows)
        return "\n".join(lines)

    def flush(self) -> None:
        """Write the session's tables to the store and the JSON mirror
        (no-op when nothing was recorded)."""
        if not self.tables:
            return
        self.store.write_tables(self.source, self.tables)
        if self.json_path is not None:
            payload = {"source": self.source, "tables": self.tables}
            self.json_path.write_text(
                json.dumps(payload, indent=2, default=str) + "\n")
