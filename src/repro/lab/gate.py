"""The regression gate: ``lab check`` semantics.

Re-executes a grid fresh (the quick grid by default — CI's budget),
compares every fresh cell against the committed baseline store, and
renders the scaling-law verdicts from the stored full-grid curves:

* a **deterministic drift** — different bits, accepted counts,
  per-round layout, or extra payload for the same cell key — is a
  hard failure: the protocol's measured behavior changed;
* a **missing baseline cell** is a hard failure with a remediation
  hint (run ``lab run`` and commit the store);
* a **wall-clock drift** (a fresh cell 5× slower than its recorded
  baseline, beyond a 250 ms grace) is a *warning* only — timings are
  machine-dependent instrumentation, not reproduction targets;
* every spec with an ``expect_model`` must have its full-grid curve
  in the store, and the fitter's verdict on it must pass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .fitter import fit_scaling
from .runner import fit_points, run_spec
from .spec import ExperimentSpec
from .store import DETERMINISTIC_FIELDS, ResultStore

#: Instrumentation comparison: fresh wall may exceed stored wall by
#: this factor (plus the absolute grace) before a warning is raised.
WALL_DRIFT_FACTOR = 5.0
WALL_DRIFT_GRACE = 0.25  # seconds

#: Cell-record fields whose mismatch is a hard failure.
_COMPARE = tuple(f for f in DETERMINISTIC_FIELDS
                 if f not in ("spec", "spec_hash"))


def _fit_report(spec: ExperimentSpec,
                stored: Dict[str, Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The spec's scaling verdict from its stored full-grid curve, or
    a 'missing-cells' failure when the baseline lacks the curve."""
    if spec.expect_model is None:
        return None
    points = fit_points(spec, stored)
    if len(points) < len(spec.grid):
        return {"status": "missing-cells", "ok": False,
                "points": len(points), "needed": len(spec.grid),
                "hint": "run `python -m repro lab run` and commit "
                        "benchmarks/lab_store/"}
    verdict = fit_scaling(points, models=spec.fit_models,
                          expected=spec.expect_model,
                          min_ratio=spec.min_ratio)
    return {
        "status": "pass" if verdict.passes else "fail",
        "ok": verdict.passes,
        "expected": spec.expect_model,
        "best": verdict.best.model,
        "runner_up": verdict.runner_up.model,
        "coefficient": round(verdict.best.coefficient, 4),
        "best_rms": round(verdict.best.rms, 4),
        "runner_up_rms": round(verdict.runner_up.rms, 4),
        "ratio": (None if verdict.ratio == float("inf")
                  else round(verdict.ratio, 3)),
        "min_ratio": spec.min_ratio,
        "points": [[n, y] for n, y in verdict.points],
    }


def check_spec(spec: ExperimentSpec, store: ResultStore, *,
               quick: bool = True, workers: int = 1) -> Dict[str, Any]:
    """Fresh-run one spec's grid and compare against the store."""
    stored = store.load_cells(spec)
    fresh = run_spec(spec, store=None, quick=quick, workers=workers)
    cells: List[Dict[str, Any]] = []
    warnings: List[str] = []
    ok = True
    for result in fresh:
        baseline = stored.get(result.key)
        entry: Dict[str, Any] = {"cell": result.key}
        if baseline is None:
            entry["status"] = "missing"
            entry["hint"] = ("no baseline record; run `python -m repro "
                            "lab run` and commit benchmarks/lab_store/")
            ok = False
        else:
            drifted = [name for name in _COMPARE
                       if baseline.get(name) != result.record.get(name)]
            if drifted:
                entry["status"] = "drift"
                entry["fields"] = drifted
                entry["stored"] = {name: baseline.get(name)
                                   for name in drifted}
                entry["fresh"] = {name: result.record.get(name)
                                  for name in drifted}
                ok = False
            else:
                entry["status"] = "ok"
                base_wall = float(baseline.get("wall", 0.0))
                fresh_wall = float(result.record.get("wall", 0.0))
                if fresh_wall > WALL_DRIFT_FACTOR * base_wall \
                        + WALL_DRIFT_GRACE:
                    warnings.append(
                        f"{spec.name} {result.key}: wall {fresh_wall:.3f}s "
                        f"vs baseline {base_wall:.3f}s")
        cells.append(entry)
    fit = _fit_report(spec, stored)
    if fit is not None and not fit["ok"]:
        ok = False
    return {"spec": spec.name, "hash": spec.hash, "ok": ok,
            "cells": cells, "warnings": warnings, "fit": fit}


def check_specs(specs: Sequence[ExperimentSpec], store: ResultStore, *,
                quick: bool = True, workers: int = 1) -> Dict[str, Any]:
    """The full gate: every spec checked, one overall verdict."""
    reports = [check_spec(spec, store, quick=quick, workers=workers)
               for spec in specs]
    return {
        "ok": all(report["ok"] for report in reports),
        "store": str(store.root),
        "grid": "quick" if quick else "full",
        "specs": reports,
        "warnings": [w for report in reports
                     for w in report["warnings"]],
    }


def render_check(report: Dict[str, Any]) -> List[str]:
    """Human-readable rendering of a :func:`check_specs` report."""
    lines = [f"lab check ({report['grid']} grid) against "
             f"{report['store']}"]
    for spec_report in report["specs"]:
        flag = "PASS" if spec_report["ok"] else "FAIL"
        counts: Dict[str, int] = {}
        for cell in spec_report["cells"]:
            counts[cell["status"]] = counts.get(cell["status"], 0) + 1
        detail = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        line = f"  [{flag}] {spec_report['spec']}: {detail}"
        fit = spec_report["fit"]
        if fit is not None:
            if fit["status"] == "missing-cells":
                line += (f"; fit: missing baseline curve "
                         f"({fit['points']}/{fit['needed']} points)")
            else:
                ratio = fit["ratio"]
                line += (f"; fit: {fit['best']} "
                         f"(expected {fit['expected']}, "
                         f"ratio {'inf' if ratio is None else ratio} "
                         f">= {fit['min_ratio']}) "
                         f"{'PASS' if fit['ok'] else 'FAIL'}")
        lines.append(line)
        for cell in spec_report["cells"]:
            if cell["status"] == "drift":
                lines.append(f"    drift {cell['cell']}: "
                             f"{cell['fields']} stored={cell['stored']} "
                             f"fresh={cell['fresh']}")
            elif cell["status"] == "missing":
                lines.append(f"    missing {cell['cell']}")
    for warning in report["warnings"]:
        lines.append(f"  warn: {warning}")
    lines.append(f"overall: {'OK' if report['ok'] else 'FAIL'}")
    return lines
